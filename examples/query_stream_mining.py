"""Attribute mining from a search query stream (the Table 3 scenario).

Generates a scaled Google/AOL-style query stream, runs the paper's
pattern set ("what is the A of E", "the A of E", "E's A") with
filtering rules and credibility thresholds, and prints the per-class
results — including the Hotel class, whose navigational queries yield
no credible attributes (the paper's N/A row).

Run:  python examples/query_stream_mining.py
"""

from repro.extract.querystream import QueryStreamExtractor
from repro.synth.querylog import QueryLogConfig, generate_query_log
from repro.synth.world import GroundTruthWorld


def main() -> None:
    world = GroundTruthWorld()
    log = generate_query_log(world, QueryLogConfig(scale=0.005))
    print(f"Generated {len(log):,} query records; samples:")
    for record in log[:6]:
        print(f"  {record.text!r}")

    extractor = QueryStreamExtractor(world.entity_index())
    output, stats = extractor.extract(log)

    print(f"\n{'Class':<12} {'relevant':>9} {'candidates':>11} "
          f"{'credible':>9}")
    for class_name in world.classes():
        credible = stats.credible_attributes.get(class_name, 0)
        print(
            f"{class_name:<12} "
            f"{stats.relevant_records.get(class_name, 0):>9} "
            f"{stats.candidate_attributes.get(class_name, 0):>11} "
            f"{credible if credible else 'N/A':>9}"
        )

    print("\nTop credible attributes by evidence:")
    for class_name in ("Book", "Country"):
        records = sorted(
            output.attributes.get(class_name, {}).values(),
            key=lambda record: -record.support,
        )
        names = [
            f"{record.name} (x{record.support})" for record in records[:6]
        ]
        print(f"  {class_name:<12} " + ", ".join(names))

    print(
        "\nHotel queries in the stream are transactional "
        "('cheap deals', 'book online'), so no attribute survives the "
        "credibility thresholds — reproducing the paper's N/A."
    )


if __name__ == "__main__":
    main()
