"""Serving example: a crash-riddled stream converges to the batch truth.

Spins up a :class:`repro.serving.server.KBServer` over a seeded claim
world, then streams the rest of the corpus at it as deltas while
injecting every failure mode the serving layer is built for:

* a **transient apply crash** (retried with deterministic backoff),
* a **post-commit crash** (the event is redelivered and the dedup
  fence skips it),
* a **duplicate publish** (the producer "retried"; same content id,
  skipped),
* a **poison delta** (parked in the dead-letter hold; serving keeps
  answering, degraded, from the last good version; then re-enqueued
  and applied exactly once).

At the end the demo asserts the served verdicts are **byte-identical**
to a straight batch run — one ``KnowledgeFusion.fuse`` over the whole
corpus with no stream, no faults, no retries — and prints the version
history and a few reads.

Usage::

    PYTHONPATH=src python examples/serving_demo.py
"""

from repro.faults import FaultPlan, InjectedFault
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.incremental import canonical_claims
from repro.mapreduce.engine import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.rdf.store import TripleStore
from repro.serving.server import KBServer
from repro.serving.stream import EventLog
from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.deltas import (
    DeltaStreamConfig,
    generate_delta_stream,
    scored_from_claims,
)


def build_world():
    world = generate_claim_world(
        ClaimWorldConfig(seed=23, n_items=12, n_sources=5)
    )
    scored = scored_from_claims(world.claims)
    # retract_fraction=0: the stream *partitions* the corpus, so the
    # fully-drained server must equal a batch fusion over all of it.
    base, deltas = generate_delta_stream(
        scored,
        DeltaStreamConfig(seed=23, parts=4, retract_fraction=0.0),
    )
    return scored, base, deltas


def main() -> int:
    scored, base, deltas = build_world()
    store = TripleStore()
    store.add_all(base)
    engine = KnowledgeFusion(
        tolerance=0.0, max_iterations=8
    ).begin_incremental(store)

    sleeps = []
    plan = (
        FaultPlan(seed=23)
        # Offset 0: crashes once inside the apply, then succeeds.
        .crash("stream:apply", index=0, attempts=1)
        # Offset 1: crashes after the version commit, before the
        # offset ack -> redelivered -> fence-skipped.
        .crash("stream:post-commit", index=1)
        # Offset 3: permanently poisoned (until requeued later).
        .crash("stream:apply", index=3, attempts=0)
    )
    metrics = MetricsRegistry()
    server = KBServer(
        engine,
        EventLog(capacity=64, metrics=metrics),
        retry=RetryPolicy(
            max_attempts=3, backoff_base=0.25, sleep=sleeps.append
        ),
        fault_plan=plan,
        metrics=metrics,
    )

    print(f"primed: {server.versions.current.describe()}")
    for delta in deltas:
        server.publish(delta)
    server.publish(deltas[2])  # producer retry: duplicate content id
    print(f"published {server.log.head} events ({len(deltas)} distinct)")

    outcomes = []
    while True:
        try:
            outcome = server.step()
        except InjectedFault as fault:
            print(f"  consumer crashed: {fault} -- restarting")
            continue
        if outcome is None:
            break
        outcomes.append(outcome)
        print(
            f"  offset {outcome.offset}: {outcome.action} "
            f"(attempts={outcome.attempts}, "
            f"version={outcome.version_id})"
        )
    print(f"retry backoffs taken: {sleeps}")

    status = server.status()
    print(
        f"degraded={status.degraded} poisoned={status.poisoned} "
        f"held={status.quarantined_held} lag={status.lag_events}"
    )
    assert status.degraded and status.quarantined_held == 1

    # The poison cause is gone: drain the dead-letter hold, reapply.
    server.fault_plan = None
    requeued = server.requeue_quarantined()
    print(f"requeued {len(requeued)} dead-letter delta(s)")
    for outcome in server.drain():
        print(
            f"  offset {outcome.offset}: {outcome.action} "
            f"(version={outcome.version_id})"
        )
    assert not server.status().degraded

    # The ground truth: one batch fusion over the whole corpus.
    batch_store = TripleStore()
    batch_store.add_all(scored)
    batch = KnowledgeFusion(tolerance=0.0, max_iterations=8).fuse(
        canonical_claims(batch_store)
    )
    served = server.versions.current
    assert served.canonical_bytes() == batch.canonical_bytes(), (
        "served state diverged from the batch run"
    )
    print(
        f"\nfinal version {served.version_id} "
        f"(sequence {served.sequence}) is byte-identical to the "
        "fault-free batch fusion"
    )

    reader = server.reader()
    print("top entities:")
    for subject, score in reader.top_entities(3):
        print(f"  {subject}: {score:.3f}")
        for view in reader.scan_subject(subject)[:2]:
            print(f"    {view.predicate} = {view.best()}")
    applied = metrics.counter("stream_events_applied_total").value
    skipped = metrics.counter("stream_duplicates_skipped_total").value
    print(f"applied={applied:.0f} duplicate-skipped={skipped:.0f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
