"""Quickstart: run the whole KB-construction framework in one call.

Builds a seeded synthetic world (the gold standard), runs both phases
of the paper's framework — knowledge extraction from existing KBs, a
query stream, DOM trees and Web texts, then knowledge fusion — and
prints what came out.

Run:  python examples/quickstart.py
"""

from repro import KnowledgeBaseConstructionPipeline, PipelineConfig
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig
from repro.synth.world import WorldConfig


def main() -> None:
    config = PipelineConfig(
        world=WorldConfig(seed=7),
        querylog=QueryLogConfig(scale=0.002),
        websites=WebsiteConfig(sites_per_class=3, pages_per_site=15),
    )
    pipeline = KnowledgeBaseConstructionPipeline(config)
    report = pipeline.run()

    print("== Pipeline stages ==")
    for timing in report.timings:
        print(f"  {timing.stage:<22} {timing.seconds:6.2f}s  {timing.detail}")

    print("\n== Seed sets (KBs + query stream) ==")
    for class_name, size in report.seed_sizes.items():
        print(f"  {class_name:<12} {size} seed attributes")

    print("\n== Extractor yield ==")
    for extractor_id, count in report.triple_counts.items():
        attributes = sum(report.attribute_counts[extractor_id].values())
        print(f"  {extractor_id:<12} {count:>6} claims, "
              f"{attributes:>5} attributes")

    fusion = report.fusion_report
    print("\n== Fused knowledge vs. gold standard ==")
    print(f"  items     : {fusion.items}")
    print(f"  precision : {fusion.precision:.3f}")
    print(f"  recall    : {fusion.recall:.3f}")
    print(f"  F1        : {fusion.f1:.3f}")

    augmentation = report.augmentation
    print("\n== Freebase augmentation ==")
    print(f"  new facts            : {augmentation.new_facts}")
    print(f"  confirmed facts      : {augmentation.confirmed_facts}")
    print(f"  new schema attributes: {augmentation.total_new_attributes()}")


if __name__ == "__main__":
    main()
