"""Knowledge fusion on conflicting claims (the Sec. 3.2 scenario).

Builds claim worlds exhibiting the three hazards the paper targets —
copier cliques, hierarchical value spaces, multi-truth items — and
compares the adapted baselines (VOTE/ACCU/POPACCU) against the
combined KnowledgeFusion method.

Run:  python examples/truth_discovery.py
"""

from repro.fusion.accu import Accu, PopAccu
from repro.fusion.hierarchy import HierarchicalFusion
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.fusion.multitruth import MultiTruth
from repro.fusion.vote import Vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


def show(world, label, methods) -> None:
    print(f"\n== {label} ==")
    for name, method in methods:
        result = method.fuse(world.claims)
        precision = world.precision_of(result.truths)
        recall = world.recall_of(result.truths)
        print(f"  {name:<22} precision {precision:.3f}  recall {recall:.3f}")


def main() -> None:
    copier_world = generate_claim_world(
        ClaimWorldConfig(seed=2, n_items=120, n_sources=8, copier_cliques=2)
    )
    show(
        copier_world,
        "Copier cliques (8 honest sources + 2 cliques of copiers)",
        [
            ("vote", Vote()),
            ("accu", Accu()),
            ("popaccu", PopAccu()),
            ("multitruth (no corr.)", MultiTruth()),
            ("knowledge-fusion", KnowledgeFusion()),
        ],
    )

    hier_world = generate_claim_world(
        ClaimWorldConfig(
            seed=3, n_items=100, n_sources=8, hierarchical=True,
            generalization_rate=0.4,
        )
    )
    show(
        hier_world,
        "Hierarchical values (sources report city OR its region/country)",
        [
            ("accu (flat)", Accu()),
            ("hier(accu)", HierarchicalFusion(Accu(), hier_world.hierarchy)),
            (
                "knowledge-fusion",
                KnowledgeFusion(hierarchy=hier_world.hierarchy),
            ),
        ],
    )

    multi_world = generate_claim_world(
        ClaimWorldConfig(
            seed=5, n_items=100, n_sources=10, truths_per_item=2,
            source_accuracies=[0.85] * 10,
        )
    )
    show(
        multi_world,
        "Non-functional attributes (two true values per item)",
        [
            ("vote (single-truth)", Vote()),
            ("accu (single-truth)", Accu()),
            ("multitruth", MultiTruth()),
            ("knowledge-fusion", KnowledgeFusion()),
        ],
    )
    print(
        "\nSingle-truth methods cap recall at ~0.5 on two-truth items; "
        "the two-sided multi-truth model recovers both values, and the "
        "combined method keeps that recall while staying robust to the "
        "other two hazards."
    )


if __name__ == "__main__":
    main()
