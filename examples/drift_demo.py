"""Moving-truth example: drifting and copying worlds through serving.

Part 1 — **drift**: builds a seeded
:class:`~repro.synth.drift.DriftingWorld` whose ground truth mutates
over epochs (value changes, entity births/deaths, attribute renames)
and drives its epoch-delta stream through the pipeline's serving
layer with :meth:`run_drift`.  The per-epoch freshness table
separates *fusion quality* (f1 against the truth of the served epoch)
from *staleness* (what the served verdicts get wrong only because the
world moved on).

Part 2 — **a consumer that falls behind**: replays the same stream
but drains lazily, crashing the commit of epoch 3 — the served KB
pins to the last committed version and the freshness report states
the real lag instead of pretending to be current.

Part 3 — **copying**: builds a
:class:`~repro.synth.copying.CopyingWorld` where copier sources
replicate a victim's claims, errors included, and fuses it with
source correlations off and on.  The eval table shows the
correlation-aware mode suppressing the copied errors the blind
vote-count mode is fooled by.

Usage::

    PYTHONPATH=src python examples/drift_demo.py
"""

from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.evalx.freshness import freshness_report
from repro.faults import FaultPlan, InjectedFault
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.rdf.store import TripleStore
from repro.serving.server import KBServer
from repro.serving.stream import EventLog
from repro.synth.copying import CopyingConfig
from repro.synth.drift import DriftConfig, DriftingWorld

DRIFT = DriftConfig(seed=7, n_items=30, n_sources=6, epochs=5)
COPYING = CopyingConfig(seed=0, n_items=60, lag=1)


def drift_through_pipeline() -> None:
    pipeline = KnowledgeBaseConstructionPipeline(
        PipelineConfig(drift=DRIFT, copying=COPYING)
    )
    report = pipeline.run_drift()
    print(report.table())
    total_changes = sum(row.value_changes for row in report.rows)
    print(
        f"{report.epochs} epochs over {report.base_claims} base claims: "
        f"{sum(r.births for r in report.rows)} births, "
        f"{sum(r.deaths for r in report.rows)} deaths, "
        f"{sum(r.renames for r in report.rows)} renames, "
        f"{total_changes} value changes"
    )
    assert report.final_version == DRIFT.epochs

    copying = pipeline.run_copying()
    print()
    print(copying.table())
    aware = copying.mode("correlation-aware")
    blind = copying.mode("correlation-blind")
    assert aware.suppressed > blind.suppressed, (
        "correlation-aware fusion should suppress more copied errors"
    )
    print(
        f"correlations on suppresses {aware.suppressed}/"
        f"{copying.copied_errors} copied errors "
        f"(vote counting alone: {blind.suppressed})"
    )


def falling_behind() -> None:
    world = DriftingWorld(DRIFT)
    store = TripleStore()
    store.add_all(world.base)
    engine = KnowledgeFusion(
        tolerance=0.0, max_iterations=8
    ).begin_incremental(store)
    server = KBServer(
        engine,
        EventLog(256),
        fault_plan=FaultPlan(seed=1).crash("stream:commit", index=2),
    )
    for epoch in world.epochs:
        server.publish(epoch.delta)
    try:
        server.drain()
    except InjectedFault:
        print("ingest crashed committing epoch 3")

    version = server.versions.current
    fresh = freshness_report(
        version.result.truths,
        served_epoch=version.version_id,
        current_epoch=world.current_epoch,
        served_truth=world.truth_at(version.version_id),
        current_truth=world.truth_at(world.current_epoch),
    )
    print(
        f"serving stays on committed epoch {version.version_id} "
        f"(published head: epoch {world.current_epoch})"
    )
    print(
        f"honest staleness: lag={fresh.lag_epochs} epochs, "
        f"{fresh.stale_items} stale items, "
        f"f1 {fresh.vs_served.f1:.3f} vs its own epoch but "
        f"{fresh.vs_current.f1:.3f} vs the world as it is now"
    )
    assert fresh.lag_epochs == world.current_epoch - version.version_id

    server.fault_plan = None  # the crash was transient infrastructure
    server.drain()
    print(
        f"healed: serving caught up to epoch "
        f"{server.versions.current.version_id}, lag 0"
    )
    assert server.versions.current.version_id == world.current_epoch


def main() -> int:
    drift_through_pipeline()
    print()
    falling_behind()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
