"""Algorithm 1 walk-through: DOM-tree attribute extraction.

Runs the paper's algorithm on a tiny hand-written website first —
showing induced tag-path patterns, newly recognised attributes and
harvested values — then on the full generated corpus with quality
numbers.

Run:  python examples/dom_wrapper_induction.py
"""

from repro.evalx.metrics import attribute_discovery_metrics, triple_precision
from repro.extract.dom import DomExtractorConfig, DomTreeExtractor
from repro.extract.kb import KbExtractor, combine_kb_outputs
from repro.extract.seeds import SeedSet, build_seed_sets
from repro.rdf.ontology import Entity
from repro.synth.kb_snapshots import build_kb_pair
from repro.synth.websites import WebPage, Website, generate_websites
from repro.synth.world import GroundTruthWorld


def hand_written_demo() -> None:
    page_html = """
    <html><body>
      <nav><a href="/">movies-db.example</a></nav>
      <h1 class="title">Midnight Harbor</h1>
      <table class="infobox">
        <tr><th>Director</th><td>Ava Lindqvist</td></tr>
        <tr><th>Release Date</th><td>2013-06-21</td></tr>
        <tr><th>Running Time</th><td>128</td></tr>
        <tr><th>Cinematographer</th><td>Noah Petrov</td></tr>
      </table>
    </body></html>
    """
    site = Website(
        "movies-db.example", "Film", "table",
        [WebPage("movies-db.example/p1", page_html, "film/demo",
                 "Midnight Harbor", ())],
    )
    index = {
        "midnight harbor": Entity("film/demo", "Midnight Harbor", "Film")
    }
    seeds = {"Film": SeedSet("Film", ["director"])}  # one seed only
    extractor = DomTreeExtractor(
        index, seeds, DomExtractorConfig(min_attribute_support=1)
    )
    output = extractor.extract([site])

    print("Hand-written page, seed set = {'director'}")
    print("  recognised attributes:",
          sorted(output.attribute_names("Film")))
    print("  harvested facts:")
    for scored in output.triples:
        triple = scored.triple
        print(f"    ({triple.subject}, {triple.predicate}, "
              f"{triple.obj.lexical})")
    print("  -> 'cinematographer' was never a seed; its label node sits "
          "on the same tag path as the seed's, so Algorithm 1 adopts it.")


def generated_corpus_demo() -> None:
    world = GroundTruthWorld()
    freebase, dbpedia = build_kb_pair(world)
    kb_output = combine_kb_outputs(
        [KbExtractor(freebase).extract(), KbExtractor(dbpedia).extract()]
    )
    seeds = build_seed_sets([kb_output], world.classes())
    corpus = generate_websites(world)
    output = DomTreeExtractor(world.entity_index(), seeds).extract(corpus)

    print("\nGenerated corpus "
          f"({len(corpus)} sites, {sum(len(s.pages) for s in corpus)} pages)")
    for class_name in world.classes():
        found = output.attribute_names(class_name)
        gold = set(world.attribute_names(class_name))
        metrics = attribute_discovery_metrics(found, gold)
        new = found - seeds[class_name].names()
        print(
            f"  {class_name:<12} {len(found):>4} attributes "
            f"({len(new)} new beyond seeds), "
            f"precision {metrics.precision:.3f}"
        )
    print(f"  value triples: {len(output.triples)}, "
          f"precision {triple_precision(world, output.triples):.3f}")


def main() -> None:
    hand_written_demo()
    generated_corpus_demo()


if __name__ == "__main__":
    main()
