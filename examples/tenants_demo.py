"""Multi-tenant serving example: isolated worlds, one shared runtime.

Part 1 — **a mixed fleet**: expands a
:class:`~repro.synth.tenants.TenantMixConfig` into one static, one
drifting and one copying tenant, hosts them on a single
:class:`~repro.serving.tenancy.TenantManager` (per-tenant metric
labels, fair-share drain) via :meth:`run_tenants`, and prints the
per-tenant eval table.  Running the mix twice proves the whole report
is deterministic: same config, same bytes.

Part 2 — **a noisy neighbor**: re-hosts the same fleet but injects a
permanent poison delta into tenant00's stream.  The victim degrades
(one delta parked in its dead-letter hold), while tenant01 finishes
byte-identical to its run in the healthy fleet — the isolation
contract the chaos suite pins.

Usage::

    PYTHONPATH=src python examples/tenants_demo.py
"""

import json

from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.faults import FaultPlan
from repro.serving.tenancy import TenantManager
from repro.synth.tenants import TenantMixConfig

MIX = TenantMixConfig(
    n_tenants=3, seed=11, n_items=12, n_sources=4, parts=2, epochs=2
)


def mixed_fleet() -> None:
    pipeline = KnowledgeBaseConstructionPipeline(
        PipelineConfig(tenants=MIX)
    )
    report = pipeline.run_tenants()
    print(report.table())
    again = KnowledgeBaseConstructionPipeline(
        PipelineConfig(tenants=MIX)
    ).run_tenants()
    first = json.dumps(report.to_json_dict(), sort_keys=True)
    second = json.dumps(again.to_json_dict(), sort_keys=True)
    assert first == second
    print(
        f"double run: {len(first)} report bytes, identical -> "
        "the mix is deterministic"
    )


def noisy_neighbor() -> None:
    healthy = TenantManager.from_mix(MIX)
    healthy.drain_fair()
    reference = healthy.tenant("tenant01").server.versions.current

    stormy = TenantManager.from_mix(
        MIX,
        fault_plans={
            "tenant00": FaultPlan(seed=5).crash(
                "stream:apply", index=0, attempts=0
            ),
        },
    )
    stormy.drain_fair()
    victim = stormy.tenant("tenant00").server.status()
    bystander = stormy.tenant("tenant01").server.versions.current
    print(
        f"tenant00 under poison: {victim.poisoned} delta parked, "
        f"version {victim.version_id} still serving"
    )
    assert victim.quarantined_held == 1
    assert bystander.canonical_bytes() == reference.canonical_bytes()
    print(
        "tenant01 next door: byte-identical to the healthy fleet -> "
        "the blast radius is one tenant"
    )


if __name__ == "__main__":
    mixed_fleet()
    print()
    noisy_neighbor()
