"""Consume the constructed KB: export, reload and query it.

Actionable knowledge must be queryable.  This example runs the
pipeline, exports the augmented Freebase snapshot to the claims TSV
format, reloads it, and answers conjunctive graph queries over the
fused knowledge — including facts that entered the KB only through
fusion.

Run:  python examples/kb_query_and_export.py
"""

import tempfile
from pathlib import Path

from repro import KnowledgeBaseConstructionPipeline, PipelineConfig
from repro.rdf.io import dump_claims_tsv, load_claims_tsv
from repro.rdf.query import GraphQuery, TriplePattern, Var
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig


def main() -> None:
    config = PipelineConfig(
        querylog=QueryLogConfig(scale=0.001),
        websites=WebsiteConfig(sites_per_class=3, pages_per_site=12),
    )
    pipeline = KnowledgeBaseConstructionPipeline(config)
    report = pipeline.run()
    print(
        f"Constructed KB: {len(pipeline.freebase.store)} claims "
        f"(+{report.augmentation.new_facts} from fusion)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "freebase.tsv"
        written = dump_claims_tsv(pipeline.freebase.store, path)
        print(f"Exported {written} claims to {path.name} "
              f"({path.stat().st_size // 1024} KiB)")
        store = load_claims_tsv(path)

    # Query 1: everything the KB knows about one university.
    university = pipeline.world.entities("University")[0]
    rows = GraphQuery(
        [TriplePattern(university.entity_id, Var("p"), Var("o"))]
    ).solve(store)
    print(f"\n{university.name} — {len(rows)} facts; first 8:")
    for row in sorted(rows, key=lambda r: r["p"])[:8]:
        print(f"  {row['p']:<28} {row['o']}")

    # Query 2: a join — subjects sharing a fused-in predicate value
    # with provenance from fusion itself.
    fused = [
        scored
        for scored in store.claims()
        if scored.provenance.extractor_id == "fusion"
    ]
    print(f"\nClaims attached by fusion: {len(fused)}; sample:")
    for scored in fused[:5]:
        triple = scored.triple
        print(
            f"  ({triple.subject}, {triple.predicate}, "
            f"{triple.obj.lexical})  belief={scored.confidence:.2f}"
        )

    # Query 3: conjunctive pattern with a filter.
    query = GraphQuery(
        [TriplePattern(Var("s"), Var("p"), Var("o"))],
        filters={"o": lambda value: value.isdigit() and len(value) >= 6},
    )
    big_numbers = query.solve(store)
    print(f"\nFacts with 6+ digit numeric values: {len(big_numbers)}")


if __name__ == "__main__":
    main()
