"""Observability example: metrics and a span trace from one run.

Runs the full pipeline on a small world with every instrumented layer
active at once — sharded fusion over the MapReduce engine (with a
retry policy and a seeded fault plan, so retry/quarantine counters are
non-zero), checkpointing to a temp directory, and the similarity cache
layer — then demonstrates the exported documents:

1. the **metric snapshot** (``PipelineReport.metrics``): counters,
   gauges and histograms covering the pipeline stages, the MapReduce
   engine, fusion kernels, the similarity caches, the quarantine and
   the checkpoint store;
2. the **span trace** (``PipelineReport.trace``): the nested
   wall-clock tree of the run;
3. the **deterministic subset**: the count-type metrics (everything
   not named ``*_seconds``), byte-identical across same-seed runs —
   the demo runs the pipeline twice and asserts it.

Usage::

    PYTHONPATH=src python examples/observability_demo.py \
        [--metrics-out FILE] [--trace-out FILE] [--deterministic-out FILE]
"""

import argparse
import json
import tempfile

from repro import (
    FaultPlan,
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
    RetryPolicy,
)
from repro.obs import validate_metrics, validate_trace
from repro.synth.querylog import QueryLogConfig, generate_query_log
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig
from repro.synth.world import WorldConfig

# Every instrumented layer must show up in the snapshot under one of
# these metric-name prefixes (the acceptance bar for the demo).
LAYER_PREFIXES = {
    "pipeline layer": "pipeline_",
    "mapreduce engine": "mapreduce_",
    "fusion kernels": "fusion_",
    "similarity caches": "simcache_",
    "quarantine": "quarantine_",
    "checkpoint store": "checkpoint_",
}


def small_config(checkpoint_dir: str, **overrides) -> PipelineConfig:
    return PipelineConfig(
        world=WorldConfig(
            entities_per_class={
                "Book": 15, "Film": 15, "Country": 12,
                "University": 12, "Hotel": 10,
            }
        ),
        querylog=QueryLogConfig(seed=17, scale=0.0005),
        websites=WebsiteConfig(sites_per_class=2, pages_per_site=6),
        webtext=WebTextConfig(sources_per_class=2, documents_per_source=6),
        checkpoint_dir=checkpoint_dir,
        fusion_parallelism=2,
        fusion_executor="serial",
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        **overrides,
    )


def build_fault_plan(config: PipelineConfig) -> FaultPlan:
    """Corrupt one noise query record and crash one fusion map task.

    The corrupted record contributes no claims and the crash is
    retried, so the output matches a fault-free run — but the
    quarantine and retry counters light up.
    """
    from repro.synth.world import GroundTruthWorld

    world = GroundTruthWorld(config.world)
    log = generate_query_log(world, config.querylog)
    noise_index = next(
        i for i, record in enumerate(log) if record.gold_class is None
    )
    return (
        FaultPlan(seed=11)
        .corrupt("records:querystream", index=noise_index)
        .crash("map", index=0, attempts=1)
    )


def run_once(checkpoint_dir: str):
    config = small_config(checkpoint_dir)
    pipeline = KnowledgeBaseConstructionPipeline(
        small_config(checkpoint_dir, fault_plan=build_fault_plan(config))
    )
    return pipeline.run()


def check_layer_coverage(metrics_doc: dict) -> None:
    names = set(metrics_doc["counters"]) | set(metrics_doc["gauges"]) | set(
        metrics_doc["histograms"]
    )
    for layer, prefix in LAYER_PREFIXES.items():
        covered = any(name.startswith(prefix) for name in names)
        assert covered, f"{layer}: no {prefix}* metric in the snapshot"


def summarize(report) -> None:
    counters = report.metrics.counters
    print(f"run wall: {report.wall_seconds:.2f}s "
          f"(cumulative stage time {report.cumulative_stage_seconds():.2f}s)")
    interesting = (
        "mapreduce_jobs_total",
        "mapreduce_attempts_total",
        "mapreduce_retries_total",
        "fusion_rounds_total",
        "fusion_claims_total",
        "quarantine_records_total",
        "checkpoint_saves_total{stage=extraction}",
        "checkpoint_saves_total{stage=claims}",
    )
    for key in interesting:
        print(f"  {key:<42} {counters.get(key, 0):g}")
    hits = sum(
        value for key, value in counters.items()
        if key.startswith("simcache_hits_total")
    )
    print(f"  {'simcache hits (all caches)':<42} {hits:g}")
    spans = report.trace["spans"]
    root = spans[0]
    print(f"trace: root span '{root['name']}' with "
          f"{len(root['children'])} direct children")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics-out", metavar="FILE")
    parser.add_argument("--trace-out", metavar="FILE")
    parser.add_argument(
        "--deterministic-out", metavar="FILE",
        help="write the deterministic (count-type) metric subset",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as first_dir:
        report = run_once(first_dir)
    metrics_doc = report.metrics.to_json_dict()
    trace_doc = report.trace

    problems = validate_metrics(metrics_doc) + validate_trace(trace_doc)
    assert not problems, f"schema violations: {problems}"
    check_layer_coverage(metrics_doc)
    print(f"layer coverage ok: {', '.join(sorted(LAYER_PREFIXES))}")
    summarize(report)

    # Same seeds, fresh checkpoint dir: the count-type metrics must be
    # byte-identical; only the *_seconds metrics may differ.
    with tempfile.TemporaryDirectory() as second_dir:
        second = run_once(second_dir)
    first_subset = report.metrics.deterministic_subset()
    second_subset = second.metrics.deterministic_subset()
    identical = json.dumps(first_subset, sort_keys=True) == json.dumps(
        second_subset, sort_keys=True
    )
    print(f"deterministic metric subset identical across runs: {identical}")
    assert identical, "count-type metrics must not vary across same-seed runs"

    for path, payload in (
        (args.metrics_out, metrics_doc),
        (args.trace_out, trace_doc),
        (args.deterministic_out, first_subset),
    ):
        if path:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
