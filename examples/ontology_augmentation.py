"""Ontology augmentation from existing KBs (the Table 2 scenario).

Freebase's University type ships 9 properties; DBpedia's 21.  The
paper's first result: mining both KBs' *instance data* and combining
the normalised attribute sets yields hundreds of attributes per class.
This example reproduces that per-class growth and shows which concrete
attributes each step contributed.

Run:  python examples/ontology_augmentation.py
"""

from repro.extract.kb import KbExtractor, combine_kb_outputs
from repro.synth.kb_snapshots import build_kb_pair
from repro.synth.world import GroundTruthWorld


def main() -> None:
    world = GroundTruthWorld()
    freebase, dbpedia = build_kb_pair(world)

    freebase_extractor = KbExtractor(freebase)
    dbpedia_extractor = KbExtractor(dbpedia)
    freebase_output = freebase_extractor.extract()
    dbpedia_output = dbpedia_extractor.extract()
    combined = combine_kb_outputs([freebase_output, dbpedia_output])

    print(f"{'Class':<12} {'DBp':>5} {'Ex(DBp)':>8} {'FB':>5} "
          f"{'Ex(FB)':>7} {'Combined':>9}")
    for class_name in world.classes():
        print(
            f"{class_name:<12} "
            f"{len(dbpedia_extractor.schema_attribute_names(class_name)):>5} "
            f"{dbpedia_output.attribute_count(class_name):>8} "
            f"{len(freebase_extractor.schema_attribute_names(class_name)):>5} "
            f"{freebase_output.attribute_count(class_name):>7} "
            f"{combined.attribute_count(class_name):>9}"
        )

    # Drill into University, the paper's flagship class (9 -> 518).
    class_name = "University"
    schema = freebase_extractor.schema_attribute_names(class_name)
    extracted = freebase_output.attribute_names(class_name)
    gained = sorted(extracted - schema)
    print(f"\nFreebase {class_name}: official schema ({len(schema)}):")
    print("  " + ", ".join(sorted(schema)))
    print(f"\nInstance mining added {len(gained)} more; first 15:")
    print("  " + ", ".join(gained[:15]))

    only_dbpedia = sorted(
        dbpedia_output.attribute_names(class_name)
        - freebase_output.attribute_names(class_name)
    )
    print(
        f"\nCombining with DBpedia contributed another "
        f"{len(only_dbpedia)} attributes Freebase never mentions; first 10:"
    )
    print("  " + ", ".join(only_dbpedia[:10]))


if __name__ == "__main__":
    main()
