"""Chaos example: run the pipeline under injected faults and survive.

Demonstrates the fault-tolerance layer end to end on a small world:

1. a **fault-free** baseline run;
2. a **chaos** run with a seeded :class:`repro.FaultPlan` injecting a
   transient crash into the sharded-fusion map phase and corrupting one
   query record — with retries and the quarantine enabled the run
   completes and its fused output is identical to the baseline;
3. a **degraded** run where the Web-text extractor dies permanently —
   the stage is marked degraded and fusion proceeds on the remaining
   three sources.

Usage::

    PYTHONPATH=src python examples/chaos_pipeline.py [--json]

``--json`` prints the chaos run's deterministic report fields (the
same subset CI diffs across two same-seed runs to prove determinism):
wall-clock timings are excluded, everything else is a pure function of
config + seeds.
"""

import argparse
import json

from repro import (
    FaultPlan,
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
    RetryPolicy,
)
from repro.synth.querylog import QueryLogConfig, generate_query_log
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig
from repro.synth.world import WorldConfig

DETERMINISTIC_FIELDS = (
    "seed_sizes",
    "attribute_counts",
    "triple_counts",
    "fused_items",
    "health",
)


def small_config(**overrides) -> PipelineConfig:
    return PipelineConfig(
        world=WorldConfig(
            entities_per_class={
                "Book": 15, "Film": 15, "Country": 12,
                "University": 12, "Hotel": 10,
            }
        ),
        querylog=QueryLogConfig(seed=17, scale=0.0005),
        websites=WebsiteConfig(sites_per_class=2, pages_per_site=6),
        webtext=WebTextConfig(sources_per_class=2, documents_per_source=6),
        **overrides,
    )


def fused_truths(report):
    return {
        item: sorted(values)
        for item, values in report.fusion_result.truths.items()
    }


def deterministic_subset(report) -> dict:
    payload = report.to_json_dict()
    return {key: payload[key] for key in DETERMINISTIC_FIELDS}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", action="store_true",
        help="print only the chaos run's deterministic report JSON",
    )
    args = parser.parse_args()
    quiet = args.json

    # 1. Fault-free baseline.
    baseline = KnowledgeBaseConstructionPipeline(small_config())
    baseline_report = baseline.run()
    if not quiet:
        print(f"baseline: {len(fused_truths(baseline_report))} fused items, "
              f"health {baseline_report.health.status}")

    # 2. Chaos run: find a noise query record (it contributes no
    # claims, so quarantining it must not change the output), corrupt
    # it, and crash the first fusion map task once.
    log = generate_query_log(baseline.world, small_config().querylog)
    noise_index = next(
        i for i, record in enumerate(log) if record.gold_class is None
    )
    plan = (
        FaultPlan(seed=11)
        .corrupt("records:querystream", index=noise_index)
        .crash("map", index=0, attempts=1)
    )
    chaos = KnowledgeBaseConstructionPipeline(
        small_config(
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fusion_parallelism=2,
            fusion_executor="serial",
        )
    )
    chaos_report = chaos.run()
    identical = fused_truths(chaos_report) == fused_truths(baseline_report)
    if not quiet:
        health = chaos_report.health
        print(f"chaos:    quarantined {health.quarantined['total']} "
              f"record(s), fusion retries {health.retry.get('retries', 0)}, "
              f"health {health.status}")
        print(f"chaos output identical to baseline: {identical}")
    assert identical, "fault tolerance must not change output"

    # 3. Permanent extractor failure: degrade, don't die.
    degraded = KnowledgeBaseConstructionPipeline(
        small_config(
            fault_plan=FaultPlan(seed=7).crash(
                "stage:webtext-extraction", attempts=0
            )
        )
    )
    degraded_report = degraded.run()
    if not quiet:
        health = degraded_report.health
        print(f"degraded: status {health.status}, "
              f"lost {sorted(health.degraded)}, "
              f"fused {len(fused_truths(degraded_report))} items from "
              f"{health.active_sources}")

    if args.json:
        print(json.dumps(deterministic_subset(chaos_report), indent=2,
                         sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
