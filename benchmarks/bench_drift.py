"""Drift serving — epoch-stream throughput and freshness lag report.

Builds a seeded :class:`~repro.synth.drift.DriftingWorld`, primes an
incremental engine on its base corpus, then publishes every epoch's
:class:`ClaimDelta` through a :class:`KBServer` event stream.  Two
regimes:

* **eager** — each epoch is drained as soon as it is published; this
  measures epochs/sec through the full publish→apply→commit serving
  path, and every served version is scored with
  :func:`~repro.evalx.freshness.freshness_report` (fault-free, so the
  lag must be zero throughout).
* **batched** — epochs are published continuously but only drained
  every ``DRAIN_EVERY`` epochs, the shape of a consumer that falls
  behind a moving world.  The freshness lag after every publish gives
  the lag distribution; its maximum is pinned at ``DRAIN_EVERY - 1``.

Acceptance: eager lag stays zero, the batched lag distribution tops
out exactly at ``DRAIN_EVERY - 1``, and the final served KB is
byte-identical across both regimes (the stream is the same stream,
however it is drained).

Results land in ``benchmarks/out/drift.txt`` (table) and
``benchmarks/out/BENCH_drift.json``.  Run standalone with
``python benchmarks/bench_drift.py [--quick]``; ``--quick`` shrinks
the world for CI smoke runs.
"""

import argparse
import json
import os
import pathlib
import sys
import time

from repro.evalx.freshness import freshness_report
from repro.evalx.tables import render_table
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.rdf.store import TripleStore
from repro.serving.server import KBServer
from repro.serving.stream import EventLog
from repro.synth.drift import DriftConfig, DriftingWorld

OUT_DIR = pathlib.Path(__file__).parent / "out"

DRAIN_EVERY = 3


def _config(quick: bool) -> DriftConfig:
    return DriftConfig(
        seed=42,
        n_items=24 if quick else 80,
        n_sources=5 if quick else 8,
        epochs=6 if quick else 18,
    )


def _server(world: DriftingWorld) -> KBServer:
    store = TripleStore()
    store.add_all(world.base)
    engine = KnowledgeFusion(
        tolerance=0.0, max_iterations=8
    ).begin_incremental(store)
    return KBServer(engine, EventLog(4096))


def _lag_of(server: KBServer, published: int) -> int:
    return published - server.versions.current.version_id


def run_eager(world: DriftingWorld) -> dict:
    server = _server(world)
    epochs = []
    started = time.perf_counter()
    for index, epoch in enumerate(world.epochs, start=1):
        epoch_started = time.perf_counter()
        server.publish(epoch.delta)
        server.drain()
        seconds = time.perf_counter() - epoch_started
        version = server.versions.current
        fresh = freshness_report(
            version.result.truths,
            served_epoch=version.version_id,
            current_epoch=index,
            served_truth=world.truth_at(version.version_id),
            current_truth=world.truth_at(index),
        )
        epochs.append(
            {
                "epoch": index,
                "delta_claims": (
                    len(epoch.delta.added) + len(epoch.delta.retracted)
                ),
                "seconds": round(seconds, 4),
                "lag_epochs": fresh.lag_epochs,
                "staleness": round(fresh.staleness, 4),
                "f1_vs_served": round(fresh.vs_served.f1, 4),
            }
        )
    total = time.perf_counter() - started
    return {
        "total_seconds": round(total, 4),
        "epochs_per_sec": round(world.current_epoch / total, 3),
        "final_bytes_sha": _digest(server),
        "epochs": epochs,
    }


def run_batched(world: DriftingWorld) -> dict:
    server = _server(world)
    lags = []
    started = time.perf_counter()
    for index, epoch in enumerate(world.epochs, start=1):
        server.publish(epoch.delta)
        if index % DRAIN_EVERY == 0 or index == world.current_epoch:
            server.drain()
        lags.append(_lag_of(server, index))
    total = time.perf_counter() - started
    distribution: dict[str, int] = {}
    for lag in lags:
        distribution[str(lag)] = distribution.get(str(lag), 0) + 1
    return {
        "drain_every": DRAIN_EVERY,
        "total_seconds": round(total, 4),
        "lag_max": max(lags),
        "lag_mean": round(sum(lags) / len(lags), 4),
        "lag_distribution": distribution,
        "final_bytes_sha": _digest(server),
    }


def _digest(server: KBServer) -> str:
    import hashlib

    return hashlib.sha256(
        server.versions.current.result.canonical_bytes()
    ).hexdigest()


def run_section(quick: bool) -> dict:
    cfg = _config(quick)
    world = DriftingWorld(cfg)
    started = time.perf_counter()
    _server(world)  # prime once, timed separately from the stream
    prime_seconds = time.perf_counter() - started
    return {
        "seed": cfg.seed,
        "items": cfg.n_items,
        "sources": cfg.n_sources,
        "epochs": cfg.epochs,
        "base_claims": len(world.base),
        "prime_seconds": round(prime_seconds, 4),
        "eager": run_eager(world),
        "batched": run_batched(world),
    }


def section_table(section: dict) -> str:
    eager = section["eager"]
    rows = [
        [
            record["epoch"],
            record["delta_claims"],
            f"{record['seconds'] * 1000:.1f}ms",
            record["lag_epochs"],
            f"{record['f1_vs_served']:.3f}",
        ]
        for record in eager["epochs"]
    ]
    throughput = render_table(
        ["epoch", "delta claims", "publish+drain", "lag", "f1@served"],
        rows,
        title=(
            f"Drift serving ({section['base_claims']} base claims, "
            f"prime {section['prime_seconds'] * 1000:.1f}ms, "
            f"{eager['epochs_per_sec']:.2f} epochs/sec)"
        ),
    )
    batched = section["batched"]
    lag_rows = [
        [lag, count]
        for lag, count in sorted(
            batched["lag_distribution"].items(), key=lambda kv: int(kv[0])
        )
    ]
    lags = render_table(
        ["lag (epochs)", "publishes"],
        lag_rows,
        title=(
            f"Freshness lag, drain every {batched['drain_every']} "
            f"(max {batched['lag_max']}, mean {batched['lag_mean']:.2f})"
        ),
    )
    return throughput + "\n\n" + lags


def run_all(quick: bool) -> tuple[dict, str]:
    section = run_section(quick)
    document = {
        "meta": {
            "quick": quick,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "drift": section,
    }
    return document, section_table(section)


def emit(document: dict, tables: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "drift.txt").write_text(tables + "\n")
    (OUT_DIR / "BENCH_drift.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )


def _check(document: dict) -> list[str]:
    failures = []
    section = document["drift"]
    for record in section["eager"]["epochs"]:
        if record["lag_epochs"] != 0:
            failures.append(
                f"eager drain lagged at epoch {record['epoch']}"
            )
    if section["batched"]["lag_max"] != DRAIN_EVERY - 1:
        failures.append(
            f"batched lag_max {section['batched']['lag_max']} != "
            f"{DRAIN_EVERY - 1}"
        )
    if (
        section["eager"]["final_bytes_sha"]
        != section["batched"]["final_bytes_sha"]
    ):
        failures.append(
            "eager and batched drains diverged on the final KB bytes"
        )
    if section["eager"]["epochs_per_sec"] <= 0:
        failures.append("non-positive epoch throughput")
    return failures


def test_drift_report():
    document, tables = run_all(quick=False)
    print()
    print(tables)
    emit(document, tables)
    assert not _check(document)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the world (CI smoke mode)",
    )
    options = parser.parse_args(argv)
    document, tables = run_all(quick=options.quick)
    print(tables)
    emit(document, tables)
    print(f"\nwrote {OUT_DIR / 'BENCH_drift.json'}")
    failures = _check(document)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
