"""Serving layer — read latency and throughput under live ingest.

Primes a :class:`~repro.serving.server.KBServer` over a synthetic
multi-world corpus, then measures three regimes:

* **steady** — read-only QPS and latency against one pinned reader
  (no ingest running);
* **concurrent** — the same read mix while a writer thread publishes
  and commits delta versions as fast as it can: the snapshot-isolation
  claim is that read latency barely moves;
* **degraded** — a poison delta parks in the dead-letter hold and the
  server keeps answering from the last good version; the section
  records the staleness the obs registry reports
  (``serving_degraded`` / ``serving_lag_events``) plus read health.

Reads are a fixed deterministic mix of point lookups, subject scans
and top-k queries.  The final served verdicts are verified
byte-identical to a cold full re-fusion of the post-stream store.

Results land in ``benchmarks/out/serving.txt`` (table) and
``benchmarks/out/BENCH_serving.json``.  Run standalone with
``python benchmarks/bench_serving.py [--quick]``.
"""

import argparse
import json
import os
import pathlib
import sys
import threading
import time

from repro.faults import FaultPlan
from repro.evalx.tables import render_table
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.incremental import canonical_claims
from repro.mapreduce.engine import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple
from repro.serving.server import KBServer
from repro.serving.stream import EventLog
from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.deltas import (
    DeltaStreamConfig,
    generate_delta_stream,
    scored_from_claims,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"


def _corpus(quick: bool):
    n_worlds = 6 if quick else 30
    n_items = 8 if quick else 12
    scored = []
    for index in range(n_worlds):
        world = generate_claim_world(
            ClaimWorldConfig(seed=400 + index, n_items=n_items, n_sources=5)
        )
        for one in scored_from_claims(world.claims):
            triple = one.triple
            scored.append(
                ScoredTriple(
                    Triple(
                        f"w{index:03d}/{triple.subject}",
                        triple.predicate,
                        triple.obj,
                    ),
                    Provenance(
                        f"w{index:03d}/{one.provenance.source_id}",
                        one.provenance.extractor_id,
                        one.provenance.locator,
                    ),
                    one.confidence,
                )
            )
    return scored


def _server(quick: bool, metrics: MetricsRegistry):
    scored = _corpus(quick)
    base, deltas = generate_delta_stream(
        scored,
        DeltaStreamConfig(seed=7, parts=4 if quick else 16),
    )
    store = TripleStore()
    store.add_all(base)
    engine = KnowledgeFusion(
        tolerance=0.0, max_iterations=8
    ).begin_incremental(store)
    server = KBServer(
        engine,
        EventLog(capacity=4096, metrics=metrics),
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        metrics=metrics,
    )
    return server, deltas


def _query_mix(reader, subjects, tick):
    """One deterministic read; returns its wall seconds."""
    kind = tick % 4
    subject = subjects[tick % len(subjects)]
    started = time.perf_counter()
    if kind in (0, 1):
        reader.lookup(subject, "capital")
    elif kind == 2:
        reader.scan_subject(subject)
    else:
        reader.top_entities(10)
    return time.perf_counter() - started


def _percentile(latencies, fraction):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _read_phase(server, subjects, n_reads, *, fresh_reader_every=64):
    """Run the read mix; re-pin periodically like a real client pool."""
    latencies = []
    reader = server.reader()
    started = time.perf_counter()
    for tick in range(n_reads):
        if tick % fresh_reader_every == 0:
            reader = server.reader()
        latencies.append(_query_mix(reader, subjects, tick))
    elapsed = time.perf_counter() - started
    return {
        "reads": n_reads,
        "qps": round(n_reads / elapsed, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 4),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 4),
        "wall_seconds": round(elapsed, 4),
    }


def run_sections(quick: bool) -> dict:
    metrics = MetricsRegistry()
    server, deltas = _server(quick, metrics)
    subjects = sorted(
        {one.triple.subject for one in server.engine.store.claims()}
    )
    n_reads = 2_000 if quick else 20_000

    # -- steady: no ingest ---------------------------------------------
    steady = _read_phase(server, subjects, n_reads)

    # -- concurrent: reads race live delta commits ---------------------
    ingest_deltas = deltas[:-1]  # hold one back for the degraded phase
    for delta in ingest_deltas:
        server.publish(delta)
    commits = {"count": 0}

    def ingest():
        while server.step() is not None:
            commits["count"] += 1

    writer = threading.Thread(target=ingest)
    writer.start()
    concurrent = _read_phase(server, subjects, n_reads)
    writer.join()
    concurrent["versions_committed_during_reads"] = commits["count"]
    assert server.status().lag_events == 0

    # -- degraded: poison delta, serving continues stale ---------------
    server.fault_plan = FaultPlan(seed=1).crash(
        "stream:apply", index=server.log.head, attempts=0
    )
    server.publish(deltas[-1])
    outcome = server.step()
    assert outcome.action == "poisoned"
    degraded_reads = _read_phase(server, subjects, max(500, n_reads // 4))
    status = server.status()
    degraded = {
        **degraded_reads,
        "degraded_gauge": metrics.gauge("serving_degraded").value,
        # Events published whose content is NOT in the served KB:
        # still-unconsumed backlog plus poison-parked deltas.
        "staleness_events": status.lag_events + status.poisoned,
        "poisoned": status.poisoned,
        "quarantined_held": status.quarantined_held,
    }

    # -- heal and verify byte-identity against a cold full re-fusion --
    server.fault_plan = None
    server.requeue_quarantined()
    server.drain()
    reference = KnowledgeFusion(tolerance=0.0, max_iterations=8).fuse(
        canonical_claims(server.engine.store.copy())
    )
    identical = (
        server.versions.current.canonical_bytes()
        == reference.canonical_bytes()
    )

    return {
        "claims_base": len(server.engine.store),
        "deltas": len(deltas),
        "final_version": server.versions.current.version_id,
        "identical_to_full_refusion": identical,
        "steady": steady,
        "concurrent": concurrent,
        "degraded": degraded,
    }


def section_table(section: dict) -> str:
    rows = []
    for name in ("steady", "concurrent", "degraded"):
        phase = section[name]
        rows.append(
            [
                name,
                phase["reads"],
                f"{phase['qps']:.0f}",
                f"{phase['p50_ms']:.3f}ms",
                f"{phase['p99_ms']:.3f}ms",
                phase.get("versions_committed_during_reads", "-"),
                phase.get("staleness_events", "-"),
            ]
        )
    return render_table(
        ["phase", "reads", "qps", "p50", "p99", "commits", "stale"],
        rows,
        title=(
            f"KB serving ({section['claims_base']} claims, "
            f"{section['deltas']} deltas, final version "
            f"{section['final_version']}, byte-identical="
            f"{'yes' if section['identical_to_full_refusion'] else 'NO'})"
        ),
    )


def run_all(quick: bool) -> tuple[dict, str]:
    section = run_sections(quick)
    document = {
        "meta": {
            "quick": quick,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "serving": section,
    }
    return document, section_table(section)


def emit(document: dict, tables: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "serving.txt").write_text(tables + "\n")
    (OUT_DIR / "BENCH_serving.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )


def _check(document: dict) -> list[str]:
    section = document["serving"]
    failures = []
    if not section["identical_to_full_refusion"]:
        failures.append(
            "served verdicts diverged from a cold full re-fusion"
        )
    for name in ("steady", "concurrent", "degraded"):
        if section[name]["qps"] <= 0:
            failures.append(f"{name} phase recorded no throughput")
    if section["degraded"]["degraded_gauge"] != 1.0:
        failures.append("degraded phase did not flag serving_degraded")
    if section["degraded"]["staleness_events"] < 1:
        failures.append("degraded phase reports no staleness")
    return failures


def test_serving_report():
    document, tables = run_all(quick=False)
    print()
    print(tables)
    emit(document, tables)
    assert not _check(document)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the corpus and read counts (CI smoke mode)",
    )
    options = parser.parse_args(argv)
    document, tables = run_all(quick=options.quick)
    print(tables)
    emit(document, tables)
    print(f"\nwrote {OUT_DIR / 'BENCH_serving.json'}")
    failures = _check(document)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
