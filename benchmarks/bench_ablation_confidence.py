"""Ablation — leveraging confidence scores (Sec. 3.2, bullet 4).

Claim sets whose confidences are *informative* (correct claims tend to
carry higher confidence, as the unified criterion produces in the real
pipeline).  Expected shape: confidence-aware fusion beats
confidence-blind fusion on mediocre sources, and the advantage shrinks
as confidences get noisier.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.tables import format_ratio, render_table
from repro.fusion.confidence_weighted import GeneralizedSums
from repro.fusion.multitruth import MultiTruth
from repro.synth.claims import ClaimWorldConfig, generate_claim_world

CONFIDENCE_NOISE = [0.05, 0.15, 0.3, 0.45]


@pytest.fixture(scope="module")
def sweep():
    rows = []
    gaps = []
    for noise in CONFIDENCE_NOISE:
        world = generate_claim_world(
            ClaimWorldConfig(
                seed=43, n_items=150, n_sources=8,
                source_accuracies=[0.6] * 8, false_pool=3,
                confidence_informative=True, confidence_noise=noise,
            )
        )
        blind = world.precision_of(
            MultiTruth(use_confidence=False).fuse(world.claims).truths
        )
        aware = world.precision_of(
            MultiTruth(use_confidence=True).fuse(world.claims).truths
        )
        sums_blind = world.precision_of(
            GeneralizedSums(use_confidence=False).fuse(world.claims).truths
        )
        sums_aware = world.precision_of(
            GeneralizedSums(use_confidence=True).fuse(world.claims).truths
        )
        rows.append(
            [
                noise,
                format_ratio(blind),
                format_ratio(aware),
                format_ratio(sums_blind),
                format_ratio(sums_aware),
            ]
        )
        gaps.append((noise, aware - blind, sums_aware - sums_blind))
    return rows, gaps


def test_ablation_confidence_report(sweep, benchmark):
    rows, gaps = sweep
    world = generate_claim_world(
        ClaimWorldConfig(
            seed=43, n_items=150, n_sources=8,
            source_accuracies=[0.6] * 8, false_pool=3,
            confidence_informative=True,
        )
    )
    method = MultiTruth(use_confidence=True)
    benchmark.pedantic(
        lambda: method.fuse(world.claims), rounds=3, iterations=1
    )
    table = render_table(
        [
            "confidence noise", "multitruth blind", "multitruth aware",
            "gensums blind", "gensums aware",
        ],
        rows,
        title="Ablation: leveraging extraction confidence scores",
    )
    emit_report("ablation_confidence", table)

    # Shape: with well-calibrated confidences, aware beats blind for
    # the generalized fact-finder; never materially worse elsewhere.
    assert gaps[0][2] > 0
    for _noise, mt_gap, sums_gap in gaps:
        assert mt_gap > -0.05
        assert sums_gap > -0.05
