"""Ablation — attribute resolution (misspellings/synonyms, Sec. 3).

Runs the full pipeline with attribute resolution on and off.  Expected
shape: resolution consolidates variant predicates (fewer distinct
predicates reach fusion) and does not hurt fused quality — variant
labels otherwise fragment an item's evidence across spellings.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.evalx.tables import format_ratio, render_table
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig


def _config(resolve: bool) -> PipelineConfig:
    return PipelineConfig(
        querylog=QueryLogConfig(seed=17, scale=0.001),
        # More label noise than default, to give resolution real work.
        websites=WebsiteConfig(
            seed=23, sites_per_class=3, pages_per_site=15,
            label_misspell_rate=0.08, label_synonym_rate=0.15,
        ),
        webtext=WebTextConfig(seed=29, sources_per_class=2,
                              documents_per_source=10),
        resolve_attributes=resolve,
    )


@pytest.fixture(scope="module")
def runs():
    results = {}
    for resolve in (False, True):
        pipeline = KnowledgeBaseConstructionPipeline(_config(resolve))
        report = pipeline.run()
        predicates = {claim.item[1] for claim in pipeline.claims}
        results[resolve] = (report, len(predicates))
    return results


def test_ablation_resolution_report(runs, benchmark):
    pipeline = KnowledgeBaseConstructionPipeline(_config(True))
    triples = None

    def build_and_resolve():
        report = pipeline.run()
        return report

    benchmark.pedantic(build_and_resolve, rounds=1, iterations=1)
    del triples

    rows = []
    for resolve in (False, True):
        report, predicate_count = runs[resolve]
        rows.append(
            [
                "on" if resolve else "off",
                predicate_count,
                format_ratio(report.fusion_report.precision),
                format_ratio(report.fusion_report.recall),
                format_ratio(report.fusion_report.f1),
            ]
        )
    table = render_table(
        ["resolution", "distinct predicates", "precision", "recall", "F1"],
        rows,
        title="Ablation: attribute misspelling/synonym resolution",
    )
    emit_report("ablation_resolution", table)

    report_off, predicates_off = runs[False]
    report_on, predicates_on = runs[True]
    # Shape: resolution consolidates predicates and preserves quality.
    assert predicates_on < predicates_off
    assert report_on.fusion_report.f1 >= report_off.fusion_report.f1 - 0.01
