"""Ablation — hierarchical value spaces (Sec. 3.2, bullet 2).

Claim sets where truths are leaves of value chains and sloppy sources
report generalisations.  Expected shape: hierarchy-aware fusion beats
its flat base on F1 (flat fusion treats chain values as conflicts), and
the gap grows with the generalisation rate.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.tables import format_ratio, render_table
from repro.fusion.accu import Accu
from repro.fusion.hierarchy import HierarchicalFusion
from repro.fusion.multitruth import MultiTruth
from repro.synth.claims import ClaimWorldConfig, generate_claim_world

GENERALIZATION_RATES = [0.0, 0.2, 0.4, 0.6]


def f1(world, truths):
    precision = world.precision_of(truths)
    recall = world.recall_of(truths)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


@pytest.fixture(scope="module")
def sweep():
    rows = []
    gaps = []
    for rate in GENERALIZATION_RATES:
        world = generate_claim_world(
            ClaimWorldConfig(
                seed=31, n_items=120, n_sources=8, hierarchical=True,
                generalization_rate=rate,
            )
        )
        flat_accu = f1(world, Accu().fuse(world.claims).truths)
        hier_accu = f1(
            world,
            HierarchicalFusion(Accu(), world.hierarchy)
            .fuse(world.claims)
            .truths,
        )
        flat_multi = f1(world, MultiTruth().fuse(world.claims).truths)
        hier_multi = f1(
            world,
            HierarchicalFusion(MultiTruth(), world.hierarchy)
            .fuse(world.claims)
            .truths,
        )
        rows.append(
            [
                rate,
                format_ratio(flat_accu),
                format_ratio(hier_accu),
                format_ratio(flat_multi),
                format_ratio(hier_multi),
            ]
        )
        gaps.append((rate, hier_accu - flat_accu))
    return rows, gaps


def test_ablation_hierarchy_report(sweep, benchmark):
    rows, gaps = sweep
    world = generate_claim_world(
        ClaimWorldConfig(seed=31, n_items=120, n_sources=8,
                         hierarchical=True)
    )
    method = HierarchicalFusion(Accu(), world.hierarchy)
    benchmark.pedantic(
        lambda: method.fuse(world.claims), rounds=3, iterations=1
    )
    table = render_table(
        [
            "generalisation rate", "accu F1", "hier(accu) F1",
            "multitruth F1", "hier(multitruth) F1",
        ],
        rows,
        title="Ablation: hierarchical value spaces",
    )
    emit_report("ablation_hierarchy", table)

    # Shape: hierarchy helps whenever generalised claims exist, and the
    # advantage grows with the generalisation rate.
    for rate, gap in gaps:
        if rate >= 0.2:
            assert gap > 0
    assert gaps[-1][1] > gaps[0][1]
