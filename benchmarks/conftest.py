"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation DESIGN.md calls out), prints the rows, and appends them to
``benchmarks/out/<name>.txt`` so results survive pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit_report(name: str, table: str) -> None:
    """Print a benchmark table and persist it under benchmarks/out/."""
    print()
    print(table)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(table + "\n")


@pytest.fixture(scope="session")
def paper_world():
    """A paper-scale world shared by benchmark modules."""
    from repro.synth.world import GroundTruthWorld

    return GroundTruthWorld()
