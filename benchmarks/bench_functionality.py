"""Functionality degree of attributes (Sec. 1's open problem).

Two results:

1. the unsupervised estimator recovers the schema's
   functional/non-functional split from raw claims on well-observed
   attributes;
2. feeding the estimated oracle into KnowledgeFusion approaches the
   quality of the schema oracle — and beats assuming everything is
   functional on multi-valued items.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.tables import format_ratio, render_table
from repro.fusion.base import ClaimSet
from repro.fusion.functionality import (
    FunctionalityEstimator,
    functional_oracle_from_claims,
)
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


@pytest.fixture(scope="module")
def schema_agreement(paper_world):
    from repro.extract.kb import KbExtractor, combine_kb_outputs
    from repro.synth.kb_snapshots import build_kb_pair

    freebase, dbpedia = build_kb_pair(paper_world)
    kb_output = combine_kb_outputs(
        [KbExtractor(freebase).extract(), KbExtractor(dbpedia).extract()]
    )
    claims = ClaimSet.from_scored_triples(kb_output.triples)
    estimate = FunctionalityEstimator(min_observations=8).estimate(claims)
    schema = {}
    for class_name in paper_world.classes():
        for spec in paper_world.catalogs[class_name].attributes:
            schema.setdefault(spec.name, spec.functional)
    checked = agreements = 0
    for predicate in estimate.degree:
        if predicate in schema:
            checked += 1
            agreements += (
                estimate.is_functional(predicate) == schema[predicate]
            )
    return checked, agreements, claims


@pytest.fixture(scope="module")
def fusion_rows():
    world = generate_claim_world(
        ClaimWorldConfig(
            seed=53, n_items=120, n_sources=9, truths_per_item=2,
            source_accuracies=[0.85] * 9,
        )
    )
    oracles = {
        "assume all functional": lambda p: True,
        "schema oracle": lambda p: False,  # generator attr is multi-valued
        "estimated from claims": functional_oracle_from_claims(world.claims),
    }
    rows = []
    recalls = {}
    for label, oracle in oracles.items():
        result = KnowledgeFusion(functional_of=oracle).fuse(world.claims)
        precision = world.precision_of(result.truths)
        recall = world.recall_of(result.truths)
        recalls[label] = recall
        rows.append([label, format_ratio(precision), format_ratio(recall)])
    return rows, recalls


def test_functionality_report(schema_agreement, fusion_rows, benchmark):
    checked, agreements, claims = schema_agreement
    estimator = FunctionalityEstimator(min_observations=8)
    benchmark.pedantic(
        lambda: estimator.estimate(claims), rounds=3, iterations=1
    )
    rows, recalls = fusion_rows
    agreement_table = render_table(
        ["well-observed attributes", "schema agreements", "rate"],
        [[checked, agreements, format_ratio(agreements / checked)]],
        title="Functionality degree: unsupervised estimate vs schema",
    )
    fusion_table = render_table(
        ["functionality oracle", "precision", "recall"],
        rows,
        title="KnowledgeFusion on two-truth items under each oracle",
    )
    emit_report(
        "functionality", agreement_table + "\n\n" + fusion_table
    )

    assert agreements / checked > 0.8
    # The estimated oracle recovers the multi-truth recall that the
    # everything-is-functional assumption forfeits.
    assert recalls["estimated from claims"] > (
        recalls["assume all functional"] + 0.2
    )
    assert recalls["estimated from claims"] == pytest.approx(
        recalls["schema oracle"], abs=0.05
    )
