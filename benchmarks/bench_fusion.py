"""Compiled fusion engine — speedup and equivalence report.

Measures the three strata of the fusion optimisation layer and
verifies, in the same breath, that none of them changes a single
decision:

1.  **Compiled inner loops** — every fixed-point method on the default
    synthetic scale, dict-based loops vs the flat-array kernels of
    :mod:`repro.fusion.compiled`; reported both end-to-end (compile
    included) and warm (one :func:`compile_claims` reused across
    calls, the steady-state of repeated fusion over one claim set).
    Decisions must be byte-identical on a canonical serialization.
2.  **Connected-component sharding** — a multi-component claim graph
    fused globally vs :func:`repro.fusion.sharding.fuse_sharded` at
    workers 1/2/4; merged output must be byte-identical at fixed
    iteration counts (``tolerance=0``), and the per-component stats
    are reported (on small hosts process overhead can dominate — the
    point of reporting every wall time).
3.  **Convergence early-exit** — rounds and wall time with the delta
    tolerance on vs off; decided truths must agree.

Results land in ``benchmarks/out/fusion.txt`` (tables) and
``benchmarks/out/BENCH_fusion.json`` (machine-readable).  Run
standalone with ``python benchmarks/bench_fusion.py [--quick]``;
``--quick`` shrinks every workload for CI smoke runs.
"""

import argparse
import json
import os
import pathlib
import sys
import time

from repro.evalx.tables import render_table
from repro.fusion.accu import Accu, PopAccu
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.compiled import (
    accu_fuse,
    compile_claims,
    gensums_fuse,
    investment_fuse,
    multitruth_fuse,
)
from repro.fusion.confidence_weighted import GeneralizedSums, Investment
from repro.fusion.multitruth import MultiTruth
from repro.fusion.sharding import fuse_sharded
from repro.synth.claims import ClaimWorldConfig, generate_claim_world

OUT_DIR = pathlib.Path(__file__).parent / "out"


# ----------------------------------------------------------------------
# Shared helpers.


def _canonical_fusion_bytes(result) -> bytes:
    """Canonical byte serialization of a fusion result's decisions."""
    return repr(
        (
            sorted(
                (item, sorted(values))
                for item, values in result.truths.items()
            ),
            sorted(result.belief.items()),
            sorted(result.source_quality.items()),
        )
    ).encode()


def _best_of(repeats: int, run):
    """Minimum wall time over ``repeats`` runs and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


# The benched methods: constructor (with compiled on/off) plus the
# matching compiled kernel called on a pre-built CompiledClaims (the
# warm path: no per-call compile).
def _kernel_accu(cc):
    return accu_fuse(cc, tolerance=0.0)


def _kernel_popaccu(cc):
    return accu_fuse(cc, tolerance=0.0, popularity=True, name="popaccu")


def _kernel_multitruth(cc):
    return multitruth_fuse(cc, tolerance=0.0)


def _kernel_gensums(cc):
    return gensums_fuse(cc, tolerance=0.0)


def _kernel_investment(cc):
    return investment_fuse(cc, tolerance=0.0)


METHODS = {
    "accu": (Accu, _kernel_accu),
    "popaccu": (PopAccu, _kernel_popaccu),
    "multitruth": (MultiTruth, _kernel_multitruth),
    "gensums": (GeneralizedSums, _kernel_gensums),
    "investment": (Investment, _kernel_investment),
}


# ----------------------------------------------------------------------
# Section 1: dict-based loops vs compiled kernels.


def run_compiled_section(quick: bool) -> dict:
    n_items = 150 if quick else 800
    repeats = 1 if quick else 3
    world = generate_claim_world(
        ClaimWorldConfig(seed=47, n_items=n_items, n_sources=20)
    )
    claims = world.claims
    compile_seconds, compiled = _best_of(
        repeats, lambda: compile_claims(claims)
    )
    records = []
    for name, (method_cls, kernel) in METHODS.items():
        # tolerance=0 pins the iteration count so both paths do the
        # same number of rounds.
        legacy_seconds, legacy = _best_of(
            repeats,
            lambda m=method_cls: m(tolerance=0.0, compiled=False)
            .fuse(claims),
        )
        total_seconds, total = _best_of(
            repeats,
            lambda m=method_cls: m(tolerance=0.0, compiled=True)
            .fuse(claims),
        )
        warm_seconds, warm = _best_of(
            repeats, lambda k=kernel: k(compiled)
        )
        reference = _canonical_fusion_bytes(legacy)
        records.append(
            {
                "method": name,
                "iterations": legacy.iterations,
                "legacy_seconds": round(legacy_seconds, 4),
                "compiled_seconds": round(total_seconds, 4),
                "warm_seconds": round(warm_seconds, 4),
                "speedup": round(legacy_seconds / total_seconds, 3),
                "warm_speedup": round(legacy_seconds / warm_seconds, 3),
                "identical": (
                    _canonical_fusion_bytes(total) == reference
                    and _canonical_fusion_bytes(warm) == reference
                ),
            }
        )
    return {
        "items": n_items,
        "sources": 20,
        "claims": len(claims),
        "compile_seconds": round(compile_seconds, 4),
        "repeats": repeats,
        "runs": records,
    }


def compiled_table(section: dict) -> str:
    rows = [
        [
            record["method"],
            record["iterations"],
            f"{record['legacy_seconds'] * 1000:.1f}ms",
            f"{record['compiled_seconds'] * 1000:.1f}ms",
            f"{record['warm_seconds'] * 1000:.1f}ms",
            f"{record['speedup']:.2f}x",
            f"{record['warm_speedup']:.2f}x",
            "yes" if record["identical"] else "NO",
        ]
        for record in section["runs"]
    ]
    return render_table(
        ["method", "rounds", "dict loops", "compiled", "warm kernel",
         "speedup", "warm speedup", "identical"],
        rows,
        title=(
            f"Compiled fusion kernels ({section['claims']} claims, "
            f"compile {section['compile_seconds'] * 1000:.1f}ms)"
        ),
    )


# ----------------------------------------------------------------------
# Section 2: connected-component sharding.


def _multi_component_claims(quick: bool) -> ClaimSet:
    n_worlds = 3 if quick else 4
    n_items = 40 if quick else 200
    merged = ClaimSet()
    for index in range(n_worlds):
        world = generate_claim_world(
            ClaimWorldConfig(
                seed=100 + index, n_items=n_items, n_sources=8
            )
        )
        for c in world.claims:
            merged.add(
                Claim(
                    item=(f"w{index}:{c.item[0]}", c.item[1]),
                    value=c.value,
                    lexical=c.lexical,
                    source_id=f"w{index}:{c.source_id}",
                    extractor_id=c.extractor_id,
                    confidence=c.confidence,
                )
            )
    return merged


def run_sharding_section(quick: bool) -> dict:
    claims = _multi_component_claims(quick)
    worker_grid = [(1, "serial"), (2, "process")]
    if not quick:
        worker_grid.append((4, "process"))
    records = []
    for name in ("accu", "multitruth"):
        method_cls, _kernel = METHODS[name]
        method = method_cls(tolerance=0.0)
        started = time.perf_counter()
        serial = method.fuse(claims)
        serial_seconds = time.perf_counter() - started
        reference = _canonical_fusion_bytes(serial)
        modes = []
        stats = None
        for workers, executor in worker_grid:
            started = time.perf_counter()
            sharded, stats = fuse_sharded(
                method, claims, workers=workers, executor=executor
            )
            seconds = time.perf_counter() - started
            modes.append(
                {
                    "workers": workers,
                    "executor": executor,
                    "seconds": round(seconds, 4),
                    "speedup": round(serial_seconds / seconds, 3),
                    "identical": (
                        _canonical_fusion_bytes(sharded) == reference
                    ),
                }
            )
        records.append(
            {
                "method": name,
                "global_seconds": round(serial_seconds, 4),
                "modes": modes,
                "components": stats.components,
                "component_claims": stats.component_claims,
                "largest_claims": stats.largest_claims,
            }
        )
    return {"claims": len(claims), "runs": records}


def sharding_table(section: dict) -> str:
    rows = []
    for record in section["runs"]:
        for mode in record["modes"]:
            rows.append(
                [
                    record["method"],
                    record["components"],
                    f"{record['global_seconds'] * 1000:.1f}ms",
                    f"{mode['workers']} ({mode['executor']})",
                    f"{mode['seconds'] * 1000:.1f}ms",
                    f"{mode['speedup']:.2f}x",
                    "yes" if mode["identical"] else "NO",
                ]
            )
    return render_table(
        ["method", "components", "global", "workers", "sharded",
         "speedup", "identical"],
        rows,
        title=(
            "Connected-component sharding "
            f"({section['claims']} claims, tolerance=0)"
        ),
    )


# ----------------------------------------------------------------------
# Section 3: convergence early-exit.

# Investment's trust contracts by only a few percent per round, so it
# demonstrates the early exit at a looser tolerance than the others.
EARLY_EXIT_TOLERANCES = {"investment": 1e-2}


def run_convergence_section(quick: bool) -> dict:
    n_items = 120 if quick else 400
    cap = 50
    world = generate_claim_world(
        ClaimWorldConfig(
            seed=29, n_items=n_items, n_sources=8,
            source_accuracies=[0.95, 0.92, 0.9, 0.88, 0.85, 0.85,
                               0.82, 0.8],
        )
    )
    claims = world.claims
    records = []
    for name, (method_cls, _kernel) in METHODS.items():
        kwargs = {}
        if name in EARLY_EXIT_TOLERANCES:
            kwargs["tolerance"] = EARLY_EXIT_TOLERANCES[name]
        started = time.perf_counter()
        early = method_cls(max_iterations=cap, **kwargs).fuse(claims)
        early_seconds = time.perf_counter() - started
        started = time.perf_counter()
        full = method_cls(max_iterations=cap, tolerance=0.0).fuse(claims)
        full_seconds = time.perf_counter() - started
        records.append(
            {
                "method": name,
                "converged_at": early.converged_at,
                "rounds_with_exit": early.iterations,
                "rounds_without": full.iterations,
                "seconds_with_exit": round(early_seconds, 4),
                "seconds_without": round(full_seconds, 4),
                "same_truths": early.truths == full.truths,
            }
        )
    return {
        "items": n_items,
        "claims": len(claims),
        "max_iterations": cap,
        "runs": records,
    }


def convergence_table(section: dict) -> str:
    rows = [
        [
            record["method"],
            record["converged_at"] or "-",
            f"{record['rounds_with_exit']}/{record['rounds_without']}",
            f"{record['seconds_with_exit'] * 1000:.1f}ms",
            f"{record['seconds_without'] * 1000:.1f}ms",
            "yes" if record["same_truths"] else "NO",
        ]
        for record in section["runs"]
    ]
    return render_table(
        ["method", "converged at", "rounds (exit/full)", "with exit",
         "without", "same truths"],
        rows,
        title=(
            "Convergence early-exit "
            f"({section['claims']} claims, cap {section['max_iterations']})"
        ),
    )


# ----------------------------------------------------------------------
# Harness.


def run_all(quick: bool) -> tuple[dict, str]:
    compiled = run_compiled_section(quick)
    sharding = run_sharding_section(quick)
    convergence = run_convergence_section(quick)
    document = {
        "meta": {
            "quick": quick,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "compiled": compiled,
        "sharding": sharding,
        "convergence": convergence,
    }
    tables = "\n\n".join(
        [
            compiled_table(compiled),
            sharding_table(sharding),
            convergence_table(convergence),
        ]
    )
    return document, tables


def emit(document: dict, tables: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "fusion.txt").write_text(tables + "\n")
    (OUT_DIR / "BENCH_fusion.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )


def _check(document: dict) -> list[str]:
    failures = []
    for record in document["compiled"]["runs"]:
        if not record["identical"]:
            failures.append(f"compiled {record['method']} diverged")
    for record in document["sharding"]["runs"]:
        for mode in record["modes"]:
            if not mode["identical"]:
                failures.append(
                    f"sharded {record['method']} diverged at "
                    f"{mode['workers']} {mode['executor']} workers"
                )
    for record in document["convergence"]["runs"]:
        if not record["same_truths"]:
            failures.append(
                f"early-exit {record['method']} changed truths"
            )
    if not document["meta"]["quick"]:
        # The acceptance bar: the warm compiled inner loop beats the
        # dict-based loop >= 2x on the Bayesian methods at the default
        # scale.  (gensums/investment spend most of their rounds in
        # dict-backed normalization, so their margin is thinner.)
        for record in document["compiled"]["runs"]:
            if record["method"] in ("accu", "multitruth"):
                if record["warm_speedup"] < 2.0:
                    failures.append(
                        f"warm {record['method']} speedup "
                        f"{record['warm_speedup']}x < 2x"
                    )
    return failures


def test_fusion_report():
    document, tables = run_all(quick=False)
    print()
    print(tables)
    emit(document, tables)
    assert not _check(document)
    for record in document["convergence"]["runs"]:
        assert record["converged_at"] is not None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink every workload (CI smoke mode)",
    )
    options = parser.parse_args(argv)
    document, tables = run_all(quick=options.quick)
    print(tables)
    emit(document, tables)
    print(f"\nwrote {OUT_DIR / 'BENCH_fusion.json'}")
    failures = _check(document)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
