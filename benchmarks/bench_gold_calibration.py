"""Ablation — gold-standard initial source quality.

Dong et al.'s improvement (adopted by the paper): seed the iterative
fusion with accuracies measured on a small labelled sample instead of a
flat default.  Scenario: a majority of bad sources (8 of 10 at 35%
accuracy), where unsupervised EM latches onto the bad majority.
Expected shape: calibrated initial accuracies lift single-round
precision far above the default and above what EM converges to without
them; the effect holds even with very few labels.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.tables import format_ratio, render_table
from repro.fusion.accu import Accu
from repro.fusion.calibration import calibrate_sources, claim_world_oracle
from repro.synth.claims import ClaimWorldConfig, generate_claim_world

LABEL_FRACTIONS = [0.05, 0.15, 0.3]


@pytest.fixture(scope="module")
def world():
    return generate_claim_world(
        ClaimWorldConfig(
            seed=21, n_items=200, n_sources=10,
            source_accuracies=[0.9, 0.9] + [0.35] * 8,
            false_pool=3, coverage=0.8,
        )
    )


@pytest.fixture(scope="module")
def sweep(world):
    oracle = claim_world_oracle(world)
    default_one = world.precision_of(
        Accu(max_iterations=1).fuse(world.claims).truths
    )
    default_converged = world.precision_of(Accu().fuse(world.claims).truths)
    rows = []
    gains = []
    for fraction in LABEL_FRACTIONS:
        calibration = calibrate_sources(
            world.claims, oracle, label_fraction=fraction
        )
        calibrated_one = world.precision_of(
            Accu(
                initial_accuracies=calibration.accuracy, max_iterations=1
            ).fuse(world.claims).truths
        )
        rows.append(
            [
                f"{fraction:.0%}",
                calibration.labeled_items,
                format_ratio(default_one),
                format_ratio(calibrated_one),
                format_ratio(default_converged),
            ]
        )
        gains.append(calibrated_one - default_one)
    return rows, gains, default_converged


def test_gold_calibration_report(world, sweep, benchmark):
    rows, gains, default_converged = sweep
    oracle = claim_world_oracle(world)
    benchmark.pedantic(
        lambda: calibrate_sources(world.claims, oracle, label_fraction=0.15),
        rounds=3,
        iterations=1,
    )
    table = render_table(
        [
            "labelled share", "labelled items", "default 1-round",
            "calibrated 1-round", "default converged",
        ],
        rows,
        title="Ablation: gold-standard initial source accuracies",
    )
    emit_report("gold_calibration", table)

    # Shape: calibration lifts one-round precision substantially at
    # every label budget, and beats what uncalibrated EM converges to.
    for gain in gains:
        assert gain > 0.1
    calibration = calibrate_sources(
        world.claims, oracle, label_fraction=0.15
    )
    calibrated_one = world.precision_of(
        Accu(initial_accuracies=calibration.accuracy, max_iterations=1)
        .fuse(world.claims)
        .truths
    )
    assert calibrated_one > default_converged
