"""Fusion method comparison (Sec. 3.2).

The paper promises its combined method improves on the adapted data-
fusion baselines.  This bench compares VOTE, ACCU, POPACCU, the
generalized fact-finders, multi-truth, and the full KnowledgeFusion on
three claim regimes: skewed source accuracy, copier cliques, and
multi-truth items.  Expected shape: KnowledgeFusion at or near the top
of every column; VOTE at the bottom of the skewed/copier columns.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.tables import format_ratio, render_table
from repro.fusion.accu import Accu, PopAccu
from repro.fusion.confidence_weighted import GeneralizedSums, Investment
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.fusion.multitruth import MultiTruth
from repro.fusion.vote import Vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world

SCENARIOS = {
    "skewed": ClaimWorldConfig(
        seed=21, n_items=150, n_sources=9,
        source_accuracies=[0.95, 0.9, 0.9, 0.5, 0.45, 0.45, 0.4, 0.4, 0.35],
        false_pool=4,
    ),
    "copiers": ClaimWorldConfig(
        seed=22, n_items=150, n_sources=8, copier_cliques=2,
    ),
    "multi-truth": ClaimWorldConfig(
        seed=23, n_items=120, n_sources=10, truths_per_item=2,
        source_accuracies=[0.85] * 10,
    ),
}


def methods():
    return [
        Vote(),
        Accu(),
        PopAccu(),
        GeneralizedSums(),
        Investment(),
        MultiTruth(),
        KnowledgeFusion(),
    ]


@pytest.fixture(scope="module")
def worlds():
    return {name: generate_claim_world(cfg) for name, cfg in SCENARIOS.items()}


@pytest.fixture(scope="module")
def scores(worlds):
    table = {}
    for scenario, world in worlds.items():
        for method in methods():
            result = method.fuse(world.claims)
            precision = world.precision_of(result.truths)
            recall = world.recall_of(result.truths)
            f1 = (
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )
            table[(scenario, method.name)] = (precision, recall, f1)
    return table


def test_fusion_methods_report(worlds, scores, benchmark):
    world = worlds["skewed"]
    benchmark.pedantic(
        lambda: KnowledgeFusion().fuse(world.claims), rounds=3, iterations=1
    )
    rows = []
    for method in methods():
        row = [method.name]
        for scenario in SCENARIOS:
            precision, recall, f1 = scores[(scenario, method.name)]
            row.append(
                f"{format_ratio(precision)}/{format_ratio(recall)}"
            )
        rows.append(row)
    table = render_table(
        ["method"] + [f"{s} (P/R)" for s in SCENARIOS],
        rows,
        title="Fusion methods across claim regimes",
    )
    emit_report("fusion_methods", table)

    kf = "knowledge-fusion"
    # Copiers: the combined method clearly beats VOTE and plain
    # multi-truth (who wins and by what factor — the paper's claim).
    assert scores[("copiers", kf)][0] > scores[("copiers", "vote")][0]
    assert scores[("copiers", kf)][0] > scores[("copiers", "multitruth")][0]
    # Skewed accuracy: accuracy-aware methods beat VOTE.
    assert scores[("skewed", "accu")][0] > scores[("skewed", "vote")][0]
    assert scores[("skewed", kf)][0] > scores[("skewed", "vote")][0]
    # Multi-truth items: multi-truth-capable methods dominate recall.
    assert scores[("multi-truth", kf)][1] > scores[("multi-truth", "vote")][1]
    assert (
        scores[("multi-truth", "multitruth")][1]
        > scores[("multi-truth", "accu")][1]
    )
