"""Multi-tenant serving — fleet throughput, tail latency, isolation cost.

Hosts fleets of 1, 4 and 16 static tenants on one
:class:`~repro.serving.tenancy.TenantManager` and drains each fleet
fair-share while timing every :meth:`TenantRuntime.pump` turn, then
fires a burst of pinned-reader point lookups spread round-robin over
the fleet.  Reported per fleet size:

* **ingest** — aggregate delta-claims/sec through publish→apply→commit
  and the p99 pump latency (one tenant's fair-share turn);
* **reads** — aggregate lookups/sec against pinned readers and their
  p99 latency;
* **isolation overhead** — wall-time ratio of the N isolated stacks
  against one *merged* world carrying the same total claim volume in a
  single stack (what you would run if tenants were willing to share a
  fence, a quarantine and a blast radius).

Acceptance: every fleet drains completely (nothing halted, zero lag),
throughput is positive everywhere, and p99 >= p50 per section.

Results land in ``benchmarks/out/tenants.txt`` (table) and
``benchmarks/out/BENCH_tenants.json``.  Run standalone with
``python benchmarks/bench_tenants.py [--quick]``; ``--quick`` shrinks
the per-tenant worlds for CI smoke runs.
"""

import argparse
import json
import os
import pathlib
import sys
import time

from repro.evalx.tables import render_table
from repro.serving.tenancy import TenantManager
from repro.synth.tenants import TenantMixConfig

OUT_DIR = pathlib.Path(__file__).parent / "out"

FLEET_SIZES = (1, 4, 16)
READS_PER_FLEET = 2000


def _mix(n_tenants: int, quick: bool) -> TenantMixConfig:
    return TenantMixConfig(
        n_tenants=n_tenants,
        seed=42,
        kinds=("static",),
        n_items=8 if quick else 24,
        n_sources=4,
        parts=2 if quick else 4,
    )


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _drain_timed(manager: TenantManager) -> tuple[float, list[float]]:
    """Fair-share drain with per-pump timing; returns (wall, latencies)."""
    latencies: list[float] = []
    started = time.perf_counter()
    while True:
        live = [
            name
            for name in manager.names()
            if not manager.tenant(name).finished
        ]
        if not live:
            break
        for name in live:
            pump_started = time.perf_counter()
            manager.tenant(name).pump()
            latencies.append(time.perf_counter() - pump_started)
    return time.perf_counter() - started, latencies


def _read_burst(manager: TenantManager) -> dict:
    """Round-robin pinned-reader lookups across the fleet."""
    targets = []
    for name in manager.names():
        reader = manager.tenant(name).server.reader()
        item = sorted(reader.version.result.truths)[0]
        targets.append((reader, item))
    latencies: list[float] = []
    started = time.perf_counter()
    for index in range(READS_PER_FLEET):
        reader, (subject, predicate) = targets[index % len(targets)]
        read_started = time.perf_counter()
        view = reader.lookup(subject, predicate)
        latencies.append(time.perf_counter() - read_started)
        assert view.values  # decided item: the read did real work
    total = time.perf_counter() - started
    return {
        "reads": READS_PER_FLEET,
        "reads_per_sec": round(READS_PER_FLEET / total, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 4),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 4),
    }


def _merged_seconds(mix: TenantMixConfig, quick: bool) -> float:
    """One stack carrying the whole fleet's claim volume."""
    merged = TenantMixConfig(
        n_tenants=1,
        seed=mix.seed,
        kinds=("static",),
        n_items=mix.n_items * mix.n_tenants,
        n_sources=mix.n_sources,
        parts=mix.parts,
    )
    manager = TenantManager.from_mix(merged)
    wall, _ = _drain_timed(manager)
    return wall


def run_fleet(n_tenants: int, quick: bool) -> dict:
    mix = _mix(n_tenants, quick)
    manager = TenantManager.from_mix(mix)
    total_claims = sum(
        len(delta.added) + len(delta.retracted)
        for runtime in manager.tenants.values()
        for delta in runtime.pending
    )
    wall, pump_latencies = _drain_timed(manager)
    for name in manager.names():
        runtime = manager.tenant(name)
        assert runtime.finished and runtime.halted is None
    merged = _merged_seconds(mix, quick)
    return {
        "tenants": n_tenants,
        "delta_claims": total_claims,
        "ingest": {
            "wall_seconds": round(wall, 4),
            "claims_per_sec": round(total_claims / wall, 1),
            "pumps": len(pump_latencies),
            "p50_ms": round(
                _percentile(pump_latencies, 0.50) * 1000, 4
            ),
            "p99_ms": round(
                _percentile(pump_latencies, 0.99) * 1000, 4
            ),
        },
        "reads": _read_burst(manager),
        "merged_wall_seconds": round(merged, 4),
        "isolation_overhead": round(wall / merged, 3),
    }


def run_all(quick: bool) -> tuple[dict, str]:
    fleets = [run_fleet(n, quick) for n in FLEET_SIZES]
    document = {
        "meta": {
            "quick": quick,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "fleets": fleets,
    }
    rows = [
        [
            fleet["tenants"],
            fleet["delta_claims"],
            f"{fleet['ingest']['claims_per_sec']:.0f}",
            f"{fleet['ingest']['p99_ms']:.2f}ms",
            f"{fleet['reads']['reads_per_sec']:.0f}",
            f"{fleet['reads']['p99_ms']:.3f}ms",
            f"{fleet['isolation_overhead']:.2f}x",
        ]
        for fleet in fleets
    ]
    tables = render_table(
        [
            "tenants", "claims", "ingest/s", "pump p99",
            "reads/s", "read p99", "vs merged",
        ],
        rows,
        title="Multi-tenant serving (fair-share drain, pinned reads)",
    )
    return document, tables


def emit(document: dict, tables: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "tenants.txt").write_text(tables + "\n")
    (OUT_DIR / "BENCH_tenants.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )


def _check(document: dict) -> list[str]:
    failures = []
    fleets = document["fleets"]
    if [fleet["tenants"] for fleet in fleets] != list(FLEET_SIZES):
        failures.append("missing a fleet size")
    for fleet in fleets:
        label = f"fleet of {fleet['tenants']}"
        if fleet["ingest"]["claims_per_sec"] <= 0:
            failures.append(f"{label}: non-positive ingest throughput")
        if fleet["reads"]["reads_per_sec"] <= 0:
            failures.append(f"{label}: non-positive read throughput")
        for section in ("ingest", "reads"):
            if fleet[section]["p99_ms"] < fleet[section]["p50_ms"]:
                failures.append(f"{label}: {section} p99 below p50")
        if fleet["isolation_overhead"] <= 0:
            failures.append(f"{label}: bad isolation overhead")
    return failures


def test_tenants_report():
    document, tables = run_all(quick=False)
    print()
    print(tables)
    emit(document, tables)
    assert not _check(document)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the per-tenant worlds (CI smoke mode)",
    )
    options = parser.parse_args(argv)
    document, tables = run_all(quick=options.quick)
    print(tables)
    emit(document, tables)
    print(f"\nwrote {OUT_DIR / 'BENCH_tenants.json'}")
    failures = _check(document)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
