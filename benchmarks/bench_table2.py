"""Table 2 — Statistics of Five Representative Classes.

Reproduces the paper's attribute-extraction-from-existing-KBs result:
per class, the DBpedia/Freebase *original* (official schema) counts,
the counts *extracted* from each KB's instance data, and the *combined*
count after normalisation and duplicate removal.  At default world
scale the reproduction matches the paper's numbers exactly.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.tables import render_table
from repro.extract.kb import KbExtractor, combine_kb_outputs
from repro.synth.kb_snapshots import PAPER_TABLE2, build_kb_pair


@pytest.fixture(scope="module")
def extraction(paper_world):
    freebase, dbpedia = build_kb_pair(paper_world)
    freebase_extractor = KbExtractor(freebase)
    dbpedia_extractor = KbExtractor(dbpedia)
    freebase_output = freebase_extractor.extract()
    dbpedia_output = dbpedia_extractor.extract()
    combined = combine_kb_outputs([freebase_output, dbpedia_output])
    return (
        freebase_extractor, dbpedia_extractor,
        freebase_output, dbpedia_output, combined,
    )


def test_table2_report(paper_world, extraction, benchmark):
    (
        freebase_extractor, dbpedia_extractor,
        freebase_output, dbpedia_output, combined,
    ) = extraction
    benchmark.pedantic(
        lambda: KbExtractor(freebase_extractor.snapshot).extract(),
        rounds=3,
        iterations=1,
    )
    rows = []
    for class_name, paper in PAPER_TABLE2.items():
        rows.append(
            [
                class_name,
                len(dbpedia_extractor.schema_attribute_names(class_name)),
                dbpedia_output.attribute_count(class_name),
                len(freebase_extractor.schema_attribute_names(class_name)),
                freebase_output.attribute_count(class_name),
                combined.attribute_count(class_name),
                f"(paper: {paper[0]}/{paper[1]}/{paper[2]}/{paper[3]}/{paper[4]})",
            ]
        )
    table = render_table(
        [
            "Class", "DBpedia", "Extrac.(DBpedia)", "Freebase",
            "Extrac.(Freebase)", "Combine", "paper",
        ],
        rows,
        title="Table 2: Statistics of Five Representative Classes",
    )
    emit_report("table2", table)

    # Shape: combined > each extraction >= each original, every class.
    for class_name in PAPER_TABLE2:
        db_orig = len(dbpedia_extractor.schema_attribute_names(class_name))
        fb_orig = len(freebase_extractor.schema_attribute_names(class_name))
        db_extr = dbpedia_output.attribute_count(class_name)
        fb_extr = freebase_output.attribute_count(class_name)
        comb = combined.attribute_count(class_name)
        assert db_extr >= db_orig
        assert fb_extr >= fb_orig
        assert comb >= max(db_extr, fb_extr)
        # At default scale the counts match the paper exactly.
        assert (db_orig, db_extr, fb_orig, fb_extr, comb) == PAPER_TABLE2[
            class_name
        ]
