"""Ablation — inter-source correlations (Sec. 3.2, bullet 3).

Claim sets with growing numbers of copier cliques.  Expected shape:
without correlation discounts precision degrades as cliques multiply;
with discounts the combined method stays flat near its clique-free
level.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.tables import format_ratio, render_table
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.fusion.vote import Vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world

CLIQUE_COUNTS = [0, 1, 2, 3]


@pytest.fixture(scope="module")
def sweep():
    rows = []
    series = {"off": [], "on": [], "vote": []}
    for cliques in CLIQUE_COUNTS:
        world = generate_claim_world(
            ClaimWorldConfig(
                seed=37, n_items=120, n_sources=8, copier_cliques=cliques
            )
        )
        off = KnowledgeFusion(
            use_source_correlations=False, use_extractor_correlations=False
        ).fuse(world.claims)
        on = KnowledgeFusion(
            use_source_correlations=True, use_extractor_correlations=False
        ).fuse(world.claims)
        vote = Vote().fuse(world.claims)
        precision_off = world.precision_of(off.truths)
        precision_on = world.precision_of(on.truths)
        precision_vote = world.precision_of(vote.truths)
        series["off"].append(precision_off)
        series["on"].append(precision_on)
        series["vote"].append(precision_vote)
        rows.append(
            [
                cliques,
                format_ratio(precision_vote),
                format_ratio(precision_off),
                format_ratio(precision_on),
            ]
        )
    return rows, series


def test_ablation_correlations_report(sweep, benchmark):
    rows, series = sweep
    world = generate_claim_world(
        ClaimWorldConfig(seed=37, n_items=120, n_sources=8, copier_cliques=2)
    )
    method = KnowledgeFusion()
    benchmark.pedantic(
        lambda: method.fuse(world.claims), rounds=3, iterations=1
    )
    table = render_table(
        [
            "copier cliques", "VOTE precision",
            "fusion, correlations OFF", "fusion, correlations ON",
        ],
        rows,
        title="Ablation: inter-source correlations (copy detection)",
    )
    emit_report("ablation_correlations", table)

    # Shape: with cliques present, correlations ON beats OFF and VOTE.
    for index, cliques in enumerate(CLIQUE_COUNTS):
        if cliques >= 1:
            assert series["on"][index] > series["off"][index]
            assert series["on"][index] > series["vote"][index]
    # Correlations ON stays within a few points of the clique-free run.
    assert series["on"][-1] > series["on"][0] - 0.08
