"""Incremental fusion — delta-apply vs full re-fusion report.

Builds a many-component claim corpus (disjoint synthetic claim worlds,
single shared extractor so extractor weights stay constant), primes an
:class:`~repro.incremental.engine.IncrementalFusion`, then applies
deltas that dirty 0.1% / 1% / 10% of the data items.  For every dirty
fraction it measures

* ``apply_delta`` wall time (journal + dirty-component re-fusion +
  merge), and
* a full re-fusion of the post-delta store through
  ``KnowledgeFusion.fuse(canonical_claims(store))``,

and verifies the two results are byte-identical
(:meth:`FusionResult.canonical_bytes`, tolerance=0).  The acceptance
bar (full mode): delta-apply beats full re-fusion at the 1%-dirty
point.

Results land in ``benchmarks/out/incremental.txt`` (table) and
``benchmarks/out/BENCH_incremental.json``.  Run standalone with
``python benchmarks/bench_incremental.py [--quick]``; ``--quick``
shrinks the corpus for CI smoke runs.
"""

import argparse
import json
import os
import pathlib
import sys
import time

from repro.evalx.tables import render_table
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.incremental import ClaimDelta, canonical_claims
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.deltas import scored_from_claims

OUT_DIR = pathlib.Path(__file__).parent / "out"

DIRTY_FRACTIONS = (0.001, 0.01, 0.1)


def _corpus(quick: bool) -> list[ScoredTriple]:
    """Disjoint claim worlds => one connected component per world."""
    n_worlds = 24 if quick else 120
    n_items = 8 if quick else 12
    scored: list[ScoredTriple] = []
    for index in range(n_worlds):
        world = generate_claim_world(
            ClaimWorldConfig(seed=200 + index, n_items=n_items, n_sources=6)
        )
        for one in scored_from_claims(world.claims):
            triple = one.triple
            scored.append(
                ScoredTriple(
                    Triple(
                        f"w{index:03d}/{triple.subject}",
                        triple.predicate,
                        triple.obj,
                    ),
                    Provenance(
                        f"w{index:03d}/{one.provenance.source_id}",
                        one.provenance.extractor_id,
                        one.provenance.locator,
                    ),
                    one.confidence,
                )
            )
    return scored


def _fusion() -> KnowledgeFusion:
    # tolerance=0 pins the iteration count — the byte-identity regime.
    return KnowledgeFusion(tolerance=0.0, max_iterations=10)


def _delta_for(store: TripleStore, fraction: float) -> ClaimDelta:
    """One new claim on each of ``fraction`` of the data items.

    Items are picked round-robin across distinct subjects (hence
    across distinct components), so the dirty-component count tracks
    the dirty-item count.
    """
    items = sorted(
        {scored.triple.item for scored in store.claims()}
    )
    wanted = max(1, round(fraction * len(items)))
    step = max(1, len(items) // wanted)
    picked = items[::step][:wanted]
    added = [
        ScoredTriple(
            Triple(subject, predicate, Value.string(f"delta-{fraction}")),
            Provenance(f"{subject.split('/', 1)[0]}/source00", "synthetic"),
            0.8,
        )
        for subject, predicate in picked
    ]
    return ClaimDelta(added=added, label=f"dirty-{fraction}")


def run_section(quick: bool) -> dict:
    scored = _corpus(quick)
    base_store = TripleStore()
    base_store.add_all(scored)
    items_total = len(
        {one.triple.item for one in base_store.claims()}
    )

    fusion = _fusion()
    started = time.perf_counter()
    engine = fusion.begin_incremental(base_store.copy())
    prime_seconds = time.perf_counter() - started

    records = []
    for fraction in DIRTY_FRACTIONS:
        delta = _delta_for(engine.store, fraction)

        started = time.perf_counter()
        outcome = fusion.apply_delta(delta)
        delta_seconds = time.perf_counter() - started

        # Full re-fusion of the identical post-delta store, cold.
        reference_claims = canonical_claims(engine.store)
        started = time.perf_counter()
        reference = _fusion().fuse(reference_claims)
        full_seconds = time.perf_counter() - started

        records.append(
            {
                "dirty_fraction": fraction,
                "dirty_items": len(delta.added),
                "dirty_components": outcome.dirty_components,
                "components": outcome.components,
                "reused_verdicts": outcome.reused_verdicts,
                "delta_seconds": round(delta_seconds, 4),
                "full_seconds": round(full_seconds, 4),
                "speedup": round(full_seconds / delta_seconds, 3),
                "identical": (
                    outcome.result.canonical_bytes()
                    == reference.canonical_bytes()
                ),
            }
        )
    return {
        "claims": len(scored),
        "items": items_total,
        "components": engine.components,
        "prime_seconds": round(prime_seconds, 4),
        "runs": records,
    }


def section_table(section: dict) -> str:
    rows = [
        [
            f"{record['dirty_fraction']:.1%}",
            record["dirty_items"],
            f"{record['dirty_components']}/{record['components']}",
            record["reused_verdicts"],
            f"{record['delta_seconds'] * 1000:.1f}ms",
            f"{record['full_seconds'] * 1000:.1f}ms",
            f"{record['speedup']:.2f}x",
            "yes" if record["identical"] else "NO",
        ]
        for record in section["runs"]
    ]
    return render_table(
        ["dirty", "items", "dirty comps", "reused verdicts",
         "delta-apply", "full re-fusion", "speedup", "identical"],
        rows,
        title=(
            f"Incremental fusion ({section['claims']} claims, "
            f"{section['components']} components, "
            f"prime {section['prime_seconds'] * 1000:.1f}ms, tolerance=0)"
        ),
    )


def run_all(quick: bool) -> tuple[dict, str]:
    section = run_section(quick)
    document = {
        "meta": {
            "quick": quick,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "incremental": section,
    }
    return document, section_table(section)


def emit(document: dict, tables: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "incremental.txt").write_text(tables + "\n")
    (OUT_DIR / "BENCH_incremental.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )


def _check(document: dict) -> list[str]:
    failures = []
    for record in document["incremental"]["runs"]:
        if not record["identical"]:
            failures.append(
                f"delta at {record['dirty_fraction']} diverged from "
                "full re-fusion"
            )
    if not document["meta"]["quick"]:
        # The acceptance bar: delta-apply beats a full re-fusion when
        # 1% of the items are dirty.
        for record in document["incremental"]["runs"]:
            if record["dirty_fraction"] == 0.01 and record["speedup"] <= 1.0:
                failures.append(
                    f"1%-dirty delta-apply speedup {record['speedup']}x "
                    "<= 1x"
                )
    return failures


def test_incremental_report():
    document, tables = run_all(quick=False)
    print()
    print(tables)
    emit(document, tables)
    assert not _check(document)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the corpus (CI smoke mode)",
    )
    options = parser.parse_args(argv)
    document, tables = run_all(quick=options.quick)
    print(tables)
    emit(document, tables)
    print(f"\nwrote {OUT_DIR / 'BENCH_incremental.json'}")
    failures = _check(document)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
