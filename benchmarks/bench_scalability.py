"""Scale-up — fusion as MapReduce jobs, plus the segment storage engine.

Two sections:

**mapreduce** (the original sweep): VOTE and ACCU both in memory and on
the local MapReduce engine over growing claim volumes.  Expected
shape: identical decisions at every size, near-linear growth of the
MapReduce wall time.

**storage** (the segment-backend engine):

* ``add_all`` micro-benchmark — batched ingestion vs a per-claim
  ``add`` loop on the memory backend (the batch defers per-claim index
  churn to one pass);
* memory ceiling — a corpus whose in-memory footprint is at least
  **2x a configured RSS headroom budget** is streamed into a
  :class:`~repro.rdf.segments.SegmentBackend` in a child process; the
  child's peak RSS must stay under the budget while a twin child
  holding the same corpus in a plain memory-backend store blows
  through it (this is the whole point of the LSM layout: the working
  set is the memtable, not the corpus);
* cold start — reopening the flushed segment directory (manifest read
  + mmap) vs re-ingesting the corpus from scratch; reopen must be at
  least 5x faster.

Results land in ``benchmarks/out/scalability.txt`` (tables) and
``benchmarks/out/BENCH_storage.json``; a ``storage_*`` metrics
snapshot — schema-validated in CI by ``python -m repro.obs.schema``
— lands in ``benchmarks/out/storage_metrics.json``.  Run standalone
with ``python benchmarks/bench_scalability.py [--quick]``.
"""

import argparse
import json
import os
import pathlib
import resource
import subprocess
import sys
import tempfile
import time

from repro.evalx.tables import format_ratio, render_table
from repro.fusion.accu import Accu
from repro.fusion.vote import Vote
from repro.mapreduce.jobs import mr_accu, mr_vote
from repro.obs import MetricsRegistry
from repro.rdf.backend import MemoryBackend
from repro.rdf.segments import SegmentBackend
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.claims import ClaimWorldConfig, generate_claim_world

OUT_DIR = pathlib.Path(__file__).parent / "out"

# Storage-section knobs: (n_claims, lexical padding, RSS headroom
# budget in MiB).  The corpus is sized so its in-memory footprint is
# >= 2x the budget (checked empirically against the memory-backend
# child, not assumed).
STORAGE_FULL = (200_000, 600, 96)
STORAGE_QUICK = (60_000, 300, 16)
MEMTABLE_LIMIT = 2000
COLD_START_MIN_SPEEDUP = 5.0


# ----------------------------------------------------------------------
# MapReduce sweep (the original scale-up section).
# ----------------------------------------------------------------------

def run_mapreduce_section(quick: bool) -> dict:
    records = []
    for n_items in [100, 400] if quick else [100, 400, 1600]:
        world = generate_claim_world(
            ClaimWorldConfig(seed=47, n_items=n_items, n_sources=10)
        )
        started = time.perf_counter()
        memory_vote = Vote().fuse(world.claims)
        memory_seconds = time.perf_counter() - started

        started = time.perf_counter()
        distributed_vote = mr_vote(world.claims, partitions=4)
        distributed_seconds = time.perf_counter() - started

        memory_accu = Accu(max_iterations=5).fuse(world.claims)
        distributed_accu = mr_accu(world.claims, rounds=5, partitions=4)
        accu_agreement = sum(
            1
            for item, truth in memory_accu.truths.items()
            if distributed_accu.truths.get(item) == truth
        ) / len(memory_accu.truths)

        records.append(
            {
                "items": n_items,
                "claims": len(world.claims),
                "memory_seconds": round(memory_seconds, 4),
                "mapreduce_seconds": round(distributed_seconds, 4),
                "vote_agrees": distributed_vote.truths == memory_vote.truths,
                "accu_agreement": round(accu_agreement, 4),
                "accu_precision": round(
                    world.precision_of(distributed_accu.truths), 4
                ),
            }
        )
    return {"runs": records}


def mapreduce_table(section: dict) -> str:
    rows = [
        [
            record["items"],
            record["claims"],
            f"{record['memory_seconds'] * 1000:.1f}ms",
            f"{record['mapreduce_seconds'] * 1000:.1f}ms",
            "yes" if record["vote_agrees"] else "NO",
            format_ratio(record["accu_agreement"]),
            format_ratio(record["accu_precision"]),
        ]
        for record in section["runs"]
    ]
    return render_table(
        ["items", "claims", "in-memory VOTE", "MR VOTE",
         "VOTE agrees", "ACCU agreement", "MR ACCU precision"],
        rows,
        title="Scale-up: fusion on the MapReduce engine",
    )


# ----------------------------------------------------------------------
# Storage section.
# ----------------------------------------------------------------------

def _stream_claims(n_claims: int, value_len: int):
    """A deterministic bulk-claim stream, one claim at a time.

    Every lexical is distinct (no dedup), values carry ``value_len``
    bytes of padding so per-claim footprint is dominated by data, not
    object headers, and subjects/sources repeat so the claim graph
    looks like a real corpus rather than n singletons.
    """
    pad = "x" * value_len
    n_subjects = max(1, n_claims // 4)
    for i in range(n_claims):
        yield ScoredTriple(
            Triple(
                f"item-{i % n_subjects:07d}",
                f"p{i % 5}",
                Value.string(f"{pad}-{i}"),
            ),
            Provenance(f"src-{i % 97}", "bulk"),
            0.5 + (i % 50) / 100,
        )


def _peak_rss_bytes() -> int:
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss * 1024 if sys.platform != "darwin" else rss


def _child(role: str, directory: str, n_claims: int, value_len: int) -> int:
    """Worker mode: ingest the corpus, print a JSON report, exit.

    ``probe`` imports everything and ingests nothing, measuring the
    interpreter baseline the budgets are relative to.
    """
    started = time.perf_counter()
    count = 0
    if role == "segment":
        backend = SegmentBackend(
            directory,
            memtable_limit=MEMTABLE_LIMIT,
            # Full compaction materializes the corpus; keep it out of
            # the bounded-ingest path (it has its own durability tests).
            compact_threshold=10**9,
        )
        store = TripleStore(backend)
        store.add_all(_stream_claims(n_claims, value_len))
        store.flush()
        count = len(store)
    elif role == "memory":
        store = TripleStore()
        store.add_all(_stream_claims(n_claims, value_len))
        count = len(store)
    print(
        json.dumps(
            {
                "role": role,
                "claims": count,
                "elapsed_seconds": round(time.perf_counter() - started, 4),
                "peak_rss_bytes": _peak_rss_bytes(),
            }
        )
    )
    return 0


def _spawn(role: str, directory: str, n_claims: int, value_len: int) -> dict:
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable, os.fspath(pathlib.Path(__file__).resolve()),
            "--child", role, "--dir", directory,
            "--claims", str(n_claims), "--value-len", str(value_len),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _bench_add_all(quick: bool) -> dict:
    import gc
    import statistics

    n_claims = 20_000 if quick else 60_000
    corpus = list(_stream_claims(n_claims, 40))
    loop_times, batch_times = [], []
    for _ in range(3 if quick else 5):
        gc.collect()
        gc.disable()
        batch_backend = MemoryBackend()
        started = time.perf_counter()
        batch_backend.add_all(corpus)
        batch_times.append(time.perf_counter() - started)
        gc.enable()
        gc.collect()
        gc.disable()
        loop_backend = MemoryBackend()
        add = loop_backend.add
        started = time.perf_counter()
        for scored in corpus:
            add(scored)
        loop_times.append(time.perf_counter() - started)
        gc.enable()
        assert list(batch_backend.iter_claims()) == list(
            loop_backend.iter_claims()
        )
    loop_seconds = statistics.median(loop_times)
    batch_seconds = statistics.median(batch_times)
    return {
        "claims": n_claims,
        "loop_seconds": round(loop_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(loop_seconds / batch_seconds, 3),
    }


def _bench_metrics_snapshot() -> dict:
    """A small instrumented segment workload; its snapshot is what CI
    schema-validates."""
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory() as scratch:
        backend = SegmentBackend(
            pathlib.Path(scratch) / "metrics",
            memtable_limit=64,
            compact_threshold=4,
            metrics=registry,
        )
        store = TripleStore(backend)
        store.add_all(_stream_claims(1000, 40))
        store.remove(next(_stream_claims(1, 40)).triple)
        store.flush()
        store.compact()
        store.close()
    return registry.snapshot().to_json_dict()


def run_storage_section(quick: bool) -> dict:
    n_claims, value_len, budget_mb = STORAGE_QUICK if quick else STORAGE_FULL
    section: dict = {
        "claims": n_claims,
        "value_len": value_len,
        "memtable_limit": MEMTABLE_LIMIT,
        "rss_budget_mb": budget_mb,
        "add_all": _bench_add_all(quick),
    }
    with tempfile.TemporaryDirectory() as scratch:
        seg_dir = str(pathlib.Path(scratch) / "segments")
        probe = _spawn("probe", seg_dir, 0, 0)
        segment = _spawn("segment", seg_dir, n_claims, value_len)
        memory = _spawn("memory", seg_dir, n_claims, value_len)

        baseline = probe["peak_rss_bytes"]
        budget = baseline + budget_mb * 1024 * 1024
        corpus_footprint = memory["peak_rss_bytes"] - baseline
        section["memory_ceiling"] = {
            "baseline_rss_bytes": baseline,
            "budget_bytes": budget,
            "corpus_footprint_bytes": corpus_footprint,
            "corpus_over_budget": round(
                corpus_footprint / (budget_mb * 1024 * 1024), 2
            ),
            "segment_peak_rss_bytes": segment["peak_rss_bytes"],
            "memory_peak_rss_bytes": memory["peak_rss_bytes"],
            "segment_under_budget": segment["peak_rss_bytes"] <= budget,
            "memory_over_budget": memory["peak_rss_bytes"] > budget,
            "segment_ingest_seconds": segment["elapsed_seconds"],
            "memory_ingest_seconds": memory["elapsed_seconds"],
        }

        # Cold start: reopen the flushed directory until first answer
        # (manifest read + mmap + a point lookup) vs the re-ingest the
        # reopen replaces.
        probe_triple = next(_stream_claims(1, value_len)).triple
        started = time.perf_counter()
        reopened = TripleStore(SegmentBackend(seg_dir))
        assert len(reopened) == segment["claims"]
        assert probe_triple in reopened
        reopen_seconds = time.perf_counter() - started
        reopened.close()
        section["cold_start"] = {
            "reopen_seconds": round(reopen_seconds, 4),
            "reingest_seconds": segment["elapsed_seconds"],
            "speedup": round(
                segment["elapsed_seconds"] / max(reopen_seconds, 1e-9), 1
            ),
        }
    return section


def storage_table(section: dict) -> str:
    ceiling = section["memory_ceiling"]
    cold = section["cold_start"]
    add_all = section["add_all"]
    mib = 1024 * 1024
    rows = [
        ["corpus", f"{section['claims']} claims",
         f"footprint {ceiling['corpus_footprint_bytes'] / mib:.0f}MiB "
         f"({ceiling['corpus_over_budget']:.1f}x budget)"],
        ["RSS budget", f"{section['rss_budget_mb']}MiB headroom",
         f"absolute {ceiling['budget_bytes'] / mib:.0f}MiB"],
        ["segment ingest",
         f"peak {ceiling['segment_peak_rss_bytes'] / mib:.0f}MiB",
         "under budget" if ceiling["segment_under_budget"]
         else "OVER BUDGET"],
        ["memory ingest",
         f"peak {ceiling['memory_peak_rss_bytes'] / mib:.0f}MiB",
         "over budget (expected)" if ceiling["memory_over_budget"]
         else "under budget (?)"],
        ["cold start", f"reopen {cold['reopen_seconds'] * 1000:.1f}ms",
         f"{cold['speedup']}x faster than re-ingest "
         f"({cold['reingest_seconds']:.2f}s)"],
        ["add_all batch", f"{add_all['batch_seconds'] * 1000:.1f}ms "
         f"for {add_all['claims']} claims",
         f"{add_all['speedup']}x vs per-claim add loop "
         f"({add_all['loop_seconds'] * 1000:.1f}ms)"],
    ]
    return render_table(
        ["measure", "value", "verdict"],
        rows,
        title=(
            f"Segment storage engine (memtable {section['memtable_limit']} "
            f"claims, {section['value_len']}B lexicals)"
        ),
    )


# ----------------------------------------------------------------------
# Driver.
# ----------------------------------------------------------------------

def run_all(quick: bool) -> tuple[dict, str]:
    mapreduce = run_mapreduce_section(quick)
    storage = run_storage_section(quick)
    document = {
        "meta": {
            "quick": quick,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "mapreduce": mapreduce,
        "storage": storage,
    }
    tables = mapreduce_table(mapreduce) + "\n\n" + storage_table(storage)
    return document, tables


def emit(document: dict, tables: str, metrics_out: pathlib.Path) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "scalability.txt").write_text(tables + "\n")
    (OUT_DIR / "BENCH_storage.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )
    metrics_out.parent.mkdir(parents=True, exist_ok=True)
    metrics_out.write_text(
        json.dumps(_bench_metrics_snapshot(), indent=2) + "\n"
    )


def _check(document: dict) -> list[str]:
    failures = []
    for record in document["mapreduce"]["runs"]:
        if not record["vote_agrees"]:
            failures.append(
                f"MR VOTE diverged at {record['items']} items"
            )
        if record["accu_agreement"] <= 0.95:
            failures.append(
                f"MR ACCU agreement {record['accu_agreement']} <= 0.95 "
                f"at {record['items']} items"
            )
    storage = document["storage"]
    ceiling = storage["memory_ceiling"]
    if not ceiling["segment_under_budget"]:
        failures.append(
            f"segment ingest peak RSS {ceiling['segment_peak_rss_bytes']} "
            f"over budget {ceiling['budget_bytes']}"
        )
    if not document["meta"]["quick"]:
        # Full-mode acceptance bars: the corpus really is >= 2x the
        # budget headroom, and reopening beats re-ingesting 5x.
        if ceiling["corpus_over_budget"] < 2.0:
            failures.append(
                f"corpus footprint only {ceiling['corpus_over_budget']}x "
                "the RSS budget (need >= 2x)"
            )
        if not ceiling["memory_over_budget"]:
            failures.append(
                "memory-backend ingest unexpectedly fit the budget — "
                "the ceiling comparison is vacuous"
            )
        if storage["cold_start"]["speedup"] < COLD_START_MIN_SPEEDUP:
            failures.append(
                f"cold start speedup {storage['cold_start']['speedup']}x "
                f"< {COLD_START_MIN_SPEEDUP}x"
            )
    return failures


def test_scalability_report():
    document, tables = run_all(quick=False)
    print()
    print(tables)
    emit(document, tables, OUT_DIR / "storage_metrics.json")
    assert not _check(document)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink the corpora (CI smoke mode)",
    )
    parser.add_argument(
        "--metrics-out",
        type=pathlib.Path,
        default=OUT_DIR / "storage_metrics.json",
        help="where to write the storage_* metrics snapshot",
    )
    parser.add_argument("--child", help=argparse.SUPPRESS)
    parser.add_argument("--dir", help=argparse.SUPPRESS)
    parser.add_argument("--claims", type=int, default=0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--value-len", type=int, default=0,
                        help=argparse.SUPPRESS)
    options = parser.parse_args(argv)
    if options.child:
        return _child(
            options.child, options.dir, options.claims, options.value_len
        )
    document, tables = run_all(quick=options.quick)
    print(tables)
    emit(document, tables, options.metrics_out)
    print(f"\nwrote {OUT_DIR / 'BENCH_storage.json'}")
    failures = _check(document)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
