"""Scale-up — fusion as MapReduce jobs (Sec. 3.1 / Dong et al. [13]).

Runs VOTE and ACCU both in memory and on the local MapReduce engine
over growing claim volumes.  Expected shape: identical decisions at
every size (the jobs are the same algorithm), near-linear growth of the
MapReduce wall time, and constant decision quality.
"""

import time

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.tables import format_ratio, render_table
from repro.fusion.accu import Accu
from repro.fusion.vote import Vote
from repro.mapreduce.jobs import mr_accu, mr_vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world

ITEM_COUNTS = [100, 400, 1600]


@pytest.fixture(scope="module")
def sweep():
    rows = []
    agreements = []
    for n_items in ITEM_COUNTS:
        world = generate_claim_world(
            ClaimWorldConfig(seed=47, n_items=n_items, n_sources=10)
        )
        started = time.perf_counter()
        memory_vote = Vote().fuse(world.claims)
        memory_seconds = time.perf_counter() - started

        started = time.perf_counter()
        distributed_vote = mr_vote(world.claims, partitions=4)
        distributed_seconds = time.perf_counter() - started

        vote_agree = distributed_vote.truths == memory_vote.truths

        memory_accu = Accu(max_iterations=5).fuse(world.claims)
        distributed_accu = mr_accu(world.claims, rounds=5, partitions=4)
        accu_agree = sum(
            1
            for item, truth in memory_accu.truths.items()
            if distributed_accu.truths.get(item) == truth
        ) / len(memory_accu.truths)

        agreements.append((vote_agree, accu_agree))
        rows.append(
            [
                n_items,
                len(world.claims),
                f"{memory_seconds * 1000:.1f}ms",
                f"{distributed_seconds * 1000:.1f}ms",
                "yes" if vote_agree else "NO",
                format_ratio(accu_agree),
                format_ratio(world.precision_of(distributed_accu.truths)),
            ]
        )
    return rows, agreements


def test_scalability_report(sweep, benchmark):
    rows, agreements = sweep
    world = generate_claim_world(
        ClaimWorldConfig(seed=47, n_items=400, n_sources=10)
    )
    benchmark.pedantic(
        lambda: mr_vote(world.claims, partitions=4), rounds=3, iterations=1
    )
    table = render_table(
        [
            "items", "claims", "in-memory VOTE", "MR VOTE",
            "VOTE agrees", "ACCU agreement", "MR ACCU precision",
        ],
        rows,
        title="Scale-up: fusion on the MapReduce engine",
    )
    emit_report("scalability", table)

    for vote_agree, accu_agree in agreements:
        assert vote_agree
        assert accu_agree > 0.95
