"""Figure 1 — the end-to-end KB-construction framework.

The paper's Figure 1 is the architecture diagram; this bench drives the
whole framework (four extractors → resolution → confidence → fusion →
augmentation) and reports per-stage timing, per-extractor yield, fused
quality against the gold standard, and what augmentation added to the
Freebase snapshot.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.evalx.tables import format_ratio, render_table
from repro.synth.querylog import QueryLogConfig


@pytest.fixture(scope="module")
def run():
    config = PipelineConfig(querylog=QueryLogConfig(seed=17, scale=0.002))
    pipeline = KnowledgeBaseConstructionPipeline(config)
    report = pipeline.run()
    return pipeline, report


def test_figure1_report(run, benchmark):
    pipeline, report = run

    # Time the fusion stage (the heart of phase 2) on the real claims.
    from repro.fusion.knowledge_fusion import KnowledgeFusion

    fusion = KnowledgeFusion(hierarchy=pipeline.world.hierarchy)
    benchmark.pedantic(
        lambda: fusion.fuse(pipeline.claims), rounds=3, iterations=1
    )

    stage_rows = [
        [timing.stage, f"{timing.seconds:.2f}s", timing.detail]
        for timing in report.timings
    ]
    stage_table = render_table(
        ["Stage", "time", "detail"],
        stage_rows,
        title="Figure 1: pipeline stages",
    )

    extractor_rows = [
        [
            extractor_id,
            report.triple_counts.get(extractor_id, 0),
            sum(report.attribute_counts.get(extractor_id, {}).values()),
        ]
        for extractor_id in ("kb", "querystream", "dom", "webtext")
    ]
    extractor_table = render_table(
        ["Extractor", "claims", "attributes (all classes)"],
        extractor_rows,
        title="Per-extractor yield",
    )

    fusion_table = render_table(
        ["items", "precision", "recall", "F1", "new facts", "new attrs"],
        [
            [
                report.fusion_report.items,
                format_ratio(report.fusion_report.precision),
                format_ratio(report.fusion_report.recall),
                format_ratio(report.fusion_report.f1),
                report.augmentation.new_facts,
                report.augmentation.total_new_attributes(),
            ]
        ],
        title="Fused knowledge vs. gold standard / KB augmentation",
    )
    emit_report(
        "figure1_pipeline",
        "\n\n".join([stage_table, extractor_table, fusion_table]),
    )

    # Shape assertions.
    assert report.fusion_report.precision > 0.85
    assert report.fusion_report.recall > 0.7
    assert report.augmentation.new_facts > 0
    assert report.augmentation.total_new_attributes() > 0
    assert all(report.triple_counts[e] > 0 for e in ("kb", "dom", "webtext"))
    # The query-stream extractor contributes attributes (which seed the
    # DOM/Web-text extractors), never claims: query records are
    # questions and carry no values.  See extract/querystream.py.
    assert report.triple_counts["querystream"] == 0
    assert sum(report.attribute_counts["querystream"].values()) > 0
