"""Algorithm 1 — DOM-tree attribute extraction.

The paper gives the algorithm without numbers; this bench reports its
behaviour on the generated website corpus: per class, the seed set
size, the attributes recognised, precision against the ground-truth
universe, how many were *new* (beyond the seeds), and triple precision
of the harvested values.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.metrics import attribute_discovery_metrics, triple_precision
from repro.evalx.tables import format_ratio, render_table
from repro.extract.dom import DomTreeExtractor
from repro.extract.kb import KbExtractor, combine_kb_outputs
from repro.extract.querystream import QueryStreamExtractor
from repro.extract.seeds import build_seed_sets
from repro.synth.kb_snapshots import build_kb_pair
from repro.synth.querylog import QueryLogConfig, generate_query_log
from repro.synth.websites import WebsiteConfig, generate_websites


@pytest.fixture(scope="module")
def corpus(paper_world):
    return generate_websites(
        paper_world, WebsiteConfig(seed=23, sites_per_class=4,
                                   pages_per_site=20)
    )


@pytest.fixture(scope="module")
def seeds(paper_world):
    freebase, dbpedia = build_kb_pair(paper_world)
    kb_output = combine_kb_outputs(
        [KbExtractor(freebase).extract(), KbExtractor(dbpedia).extract()]
    )
    log = generate_query_log(paper_world, QueryLogConfig(seed=17, scale=0.001))
    query_output, _ = QueryStreamExtractor(
        paper_world.entity_index()
    ).extract(log)
    return build_seed_sets([kb_output, query_output], paper_world.classes())


@pytest.fixture(scope="module")
def extraction(paper_world, seeds, corpus):
    extractor = DomTreeExtractor(paper_world.entity_index(), seeds)
    return extractor.extract(corpus)


def test_algorithm1_report(paper_world, seeds, corpus, extraction, benchmark):
    output = extraction
    one_class_sites = [s for s in corpus if s.class_name == "Book"]
    benchmark.pedantic(
        lambda: DomTreeExtractor(paper_world.entity_index(), seeds).extract(
            one_class_sites
        ),
        rounds=3,
        iterations=1,
    )
    rows = []
    for class_name in paper_world.classes():
        found = output.attribute_names(class_name)
        gold = set(paper_world.attribute_names(class_name))
        metrics = attribute_discovery_metrics(found, gold)
        new = found - seeds[class_name].names()
        rows.append(
            [
                class_name,
                len(seeds[class_name]),
                len(found),
                len(new),
                format_ratio(metrics.precision),
                format_ratio(metrics.recall),
            ]
        )
    class_triples = triple_precision(paper_world, output.triples)
    rows.append(["(all) triples", "-", len(output.triples), "-",
                 format_ratio(class_triples), "-"])
    table = render_table(
        ["Class", "seeds", "recognised attrs", "new attrs",
         "precision", "recall vs universe"],
        rows,
        title="Algorithm 1: DOM-tree attribute extraction",
    )
    emit_report("algorithm1_dom", table)

    # Shape: every class gains new attributes with high precision.
    for class_name in paper_world.classes():
        found = output.attribute_names(class_name)
        gold = set(paper_world.attribute_names(class_name))
        assert found - seeds[class_name].names()
        assert attribute_discovery_metrics(found, gold).precision > 0.7
    assert class_triples > 0.7
