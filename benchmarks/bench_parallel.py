"""Parallel execution layer — speedup and equivalence report.

Measures the three strata of the parallel layer and verifies, in the
same breath, that none of them changes a single output:

1.  **Multiprocess MapReduce** — VOTE and ACCU on the scalability
    workloads, serial vs ``executor="process"``; both wall times are
    reported (on small hosts process overhead can dominate — the point
    of reporting both numbers) and the fused decisions must be
    byte-identical on a canonical serialization.
2.  **Concurrent pipeline stages** — the end-to-end pipeline serial vs
    ``parallelism=2`` (thread and process stage executors); claims and
    quality metrics must be identical, and the report contrasts summed
    per-stage work time with the measured phase wall clock.
3.  **Similarity caching** — the attribute-resolution stage with
    caches off / cold / warm, plus hit rates of every similarity
    cache; resolved output must be identical in all three modes.

Results land in ``benchmarks/out/parallel.txt`` (tables) and
``benchmarks/out/BENCH_parallel.json`` (machine-readable).  Run
standalone with ``python benchmarks/bench_parallel.py [--quick]``;
``--quick`` shrinks every workload for CI smoke runs.
"""

import argparse
import json
import os
import pathlib
import sys
import time

from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.evalx.tables import format_ratio, render_table
from repro.mapreduce.engine import RetryPolicy
from repro.mapreduce.jobs import mr_accu, mr_vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig
from repro.synth.world import WorldConfig
from repro.textproc.memo import (
    clear_similarity_caches,
    configure_similarity_caches,
    similarity_cache_stats,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"
MR_WORKERS = 2


# ----------------------------------------------------------------------
# Shared helpers.


def _canonical_fusion_bytes(result) -> bytes:
    """Canonical byte serialization of a fusion result's decisions."""
    return repr(
        (
            sorted(
                (item, sorted(values))
                for item, values in result.truths.items()
            ),
            sorted(result.belief.items()),
            sorted(result.source_quality.items()),
        )
    ).encode()


def _claim_signature(pipeline):
    return sorted(
        (claim.item, claim.value, claim.source_id, claim.extractor_id,
         claim.confidence)
        for claim in pipeline.claims
    )


def _pipeline_config(quick: bool, **overrides) -> PipelineConfig:
    if quick:
        return PipelineConfig(
            world=WorldConfig(
                entities_per_class={
                    "Book": 15, "Film": 15, "Country": 12,
                    "University": 12, "Hotel": 10,
                }
            ),
            querylog=QueryLogConfig(seed=17, scale=0.0005),
            websites=WebsiteConfig(sites_per_class=2, pages_per_site=6),
            webtext=WebTextConfig(
                sources_per_class=2, documents_per_source=6
            ),
            **overrides,
        )
    return PipelineConfig(
        querylog=QueryLogConfig(seed=17, scale=0.002), **overrides
    )


# ----------------------------------------------------------------------
# Section 1: serial vs multiprocess MapReduce.


def run_mapreduce_section(quick: bool) -> dict:
    item_counts = [100, 400] if quick else [100, 400, 1600]
    rounds = 3 if quick else 5
    records = []
    for n_items in item_counts:
        world = generate_claim_world(
            ClaimWorldConfig(seed=47, n_items=n_items, n_sources=10)
        )
        for job_name, job in (
            ("VOTE", lambda claims, **kw: mr_vote(claims, **kw)),
            (
                "ACCU",
                lambda claims, **kw: mr_accu(claims, rounds=rounds, **kw),
            ),
        ):
            started = time.perf_counter()
            serial = job(world.claims, partitions=4)
            serial_seconds = time.perf_counter() - started

            started = time.perf_counter()
            parallel = job(
                world.claims,
                partitions=4,
                executor="process",
                max_workers=MR_WORKERS,
            )
            parallel_seconds = time.perf_counter() - started

            identical = _canonical_fusion_bytes(
                parallel
            ) == _canonical_fusion_bytes(serial)
            records.append(
                {
                    "job": job_name,
                    "items": n_items,
                    "claims": len(world.claims),
                    "serial_seconds": round(serial_seconds, 4),
                    "process_seconds": round(parallel_seconds, 4),
                    "speedup": round(serial_seconds / parallel_seconds, 3),
                    "identical": identical,
                }
            )
    return {
        "workers": MR_WORKERS,
        "partitions": 4,
        "accu_rounds": rounds,
        "runs": records,
    }


def mapreduce_table(section: dict) -> str:
    rows = [
        [
            record["job"],
            record["items"],
            record["claims"],
            f"{record['serial_seconds'] * 1000:.1f}ms",
            f"{record['process_seconds'] * 1000:.1f}ms",
            f"{record['speedup']:.2f}x",
            "yes" if record["identical"] else "NO",
        ]
        for record in section["runs"]
    ]
    return render_table(
        ["job", "items", "claims", "serial", f"process x{MR_WORKERS}",
         "speedup", "identical"],
        rows,
        title="MapReduce: serial vs process executor",
    )


# ----------------------------------------------------------------------
# Section 1b: retry-path overhead (guarded dispatch, zero faults).


def run_retry_section(quick: bool) -> dict:
    """Cost of the fault-tolerance layer when nothing fails.

    The guarded dispatch path (attempt bookkeeping, per-task duration
    measurement, wave loop) engages whenever a retry policy is set —
    this section runs the same jobs with retries disabled vs enabled
    and zero injected faults, so the delta is pure retry-path overhead.
    The ratio is reported, not asserted: it is noise-dominated on tiny
    workloads and that is fine — the contract is identical output.
    """
    n_items = 200 if quick else 800
    rounds = 3 if quick else 5
    world = generate_claim_world(
        ClaimWorldConfig(seed=47, n_items=n_items, n_sources=10)
    )
    policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
    records = []
    for job_name, job in (
        ("VOTE", lambda claims, **kw: mr_vote(claims, **kw)),
        ("ACCU", lambda claims, **kw: mr_accu(claims, rounds=rounds, **kw)),
    ):
        started = time.perf_counter()
        plain = job(world.claims, partitions=4)
        plain_seconds = time.perf_counter() - started

        started = time.perf_counter()
        guarded = job(world.claims, partitions=4, retry=policy)
        guarded_seconds = time.perf_counter() - started

        records.append(
            {
                "job": job_name,
                "claims": len(world.claims),
                "plain_seconds": round(plain_seconds, 4),
                "guarded_seconds": round(guarded_seconds, 4),
                "overhead_ratio": round(
                    guarded_seconds / plain_seconds, 3
                ),
                "identical": _canonical_fusion_bytes(guarded)
                == _canonical_fusion_bytes(plain),
            }
        )
    return {"items": n_items, "accu_rounds": rounds, "runs": records}


def retry_table(section: dict) -> str:
    rows = [
        [
            record["job"],
            record["claims"],
            f"{record['plain_seconds'] * 1000:.1f}ms",
            f"{record['guarded_seconds'] * 1000:.1f}ms",
            f"{record['overhead_ratio']:.2f}x",
            "yes" if record["identical"] else "NO",
        ]
        for record in section["runs"]
    ]
    return render_table(
        ["job", "claims", "retries off", "retries on (0 faults)",
         "overhead", "identical"],
        rows,
        title="Retry path: guarded dispatch overhead with zero faults",
    )


# ----------------------------------------------------------------------
# Section 2: serial vs concurrent pipeline stages.


def _run_pipeline(config):
    pipeline = KnowledgeBaseConstructionPipeline(config)
    started = time.perf_counter()
    report = pipeline.run()
    wall = time.perf_counter() - started
    return pipeline, report, wall


def _pipeline_record(report, wall: float) -> dict:
    return {
        "wall_seconds": round(wall, 3),
        "stage_seconds": {
            timing.stage: round(timing.seconds, 3)
            for timing in report.timings
        },
        "extraction_wall": {
            phase: round(seconds, 3)
            for phase, seconds in report.extraction_wall.items()
        },
    }


def run_pipeline_section(quick: bool) -> dict:
    executors = ["thread"] if quick else ["thread", "process"]
    # Every mode starts from cold similarity caches — otherwise the
    # serial run (which goes first) would warm them for the others.
    clear_similarity_caches()
    serial_pipeline, serial_report, serial_wall = _run_pipeline(
        _pipeline_config(quick)
    )
    extraction_cache_stats = {
        name: {
            "hit_rate": round(stats.hit_rate, 4),
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
        }
        for name, stats in similarity_cache_stats().items()
    }
    serial_signature = _claim_signature(serial_pipeline)
    modes = {"serial": _pipeline_record(serial_report, serial_wall)}
    equivalent = True
    for executor in executors:
        clear_similarity_caches()
        pipeline, report, wall = _run_pipeline(
            _pipeline_config(quick, parallelism=2, stage_executor=executor)
        )
        record = _pipeline_record(report, wall)
        record["speedup_vs_serial"] = round(serial_wall / wall, 3)
        record["identical_claims"] = (
            _claim_signature(pipeline) == serial_signature
        )
        record["identical_metrics"] = (
            report.fusion_report.precision,
            report.fusion_report.recall,
            report.fusion_report.f1,
        ) == (
            serial_report.fusion_report.precision,
            serial_report.fusion_report.recall,
            serial_report.fusion_report.f1,
        )
        equivalent = equivalent and record["identical_claims"]
        modes[executor] = record
    return {
        "claims": len(serial_pipeline.claims),
        "parallelism": 2,
        "modes": modes,
        "equivalent": equivalent,
        # Hit rates observed during the (serial) end-to-end run; the
        # tag-path cache's near-total hit rate is the DOM win.
        "extraction_cache_stats": extraction_cache_stats,
        # The serial run's count-type metrics (the deterministic
        # subset): reproducible run-to-run, so BENCH diffs stay clean.
        "metrics_snapshot": serial_report.metrics.deterministic_subset(),
        "serial_pipeline": serial_pipeline,  # reused by the cache section
    }


def pipeline_table(section: dict) -> str:
    rows = []
    for mode, record in section["modes"].items():
        rows.append(
            [
                mode,
                f"{record['wall_seconds']:.2f}s",
                f"{sum(record['stage_seconds'].values()):.2f}s",
                f"{record.get('speedup_vs_serial', 1.0):.2f}x",
                "yes" if record.get("identical_claims", True) else "NO",
            ]
        )
    mode_table = render_table(
        ["mode", "wall", "summed stage time", "speedup", "identical"],
        rows,
        title=(
            "Pipeline: serial vs concurrent extraction "
            f"({section['claims']} claims)"
        ),
    )
    stat_rows = [
        [name, format_ratio(stats["hit_rate"]), stats["hits"],
         stats["misses"], stats["evictions"]]
        for name, stats in sorted(section["extraction_cache_stats"].items())
        if stats["hits"] or stats["misses"]
    ]
    stats_table = render_table(
        ["cache", "hit rate", "hits", "misses", "evictions"],
        stat_rows,
        title="Cache hit rates during one end-to-end run",
    )
    return mode_table + "\n\n" + stats_table


# ----------------------------------------------------------------------
# Section 3: similarity caches on the attribute-resolution hot path.


def run_cache_section(serial_pipeline) -> dict:
    all_triples = [
        scored
        for output in serial_pipeline.outputs.values()
        for scored in output.triples
    ]

    def resolve_once():
        started = time.perf_counter()
        resolved = serial_pipeline._resolve_attributes(list(all_triples))
        return time.perf_counter() - started, sorted(
            repr(triple) for triple in resolved
        )

    configure_similarity_caches(enabled=False)
    off_seconds, off_output = resolve_once()
    clear_similarity_caches()
    configure_similarity_caches(enabled=True)
    cold_seconds, cold_output = resolve_once()
    warm_seconds, warm_output = resolve_once()

    hit_rates = {
        name: {
            "hit_rate": round(stats.hit_rate, 4),
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "size": stats.size,
        }
        for name, stats in similarity_cache_stats().items()
    }
    return {
        "input_claims": len(all_triples),
        "attribute_resolution_seconds": {
            "cache_off": round(off_seconds, 3),
            "cache_cold": round(cold_seconds, 3),
            "cache_warm": round(warm_seconds, 3),
        },
        "warm_speedup": round(off_seconds / warm_seconds, 3),
        "identical_output": off_output == cold_output == warm_output,
        "cache_stats": hit_rates,
    }


def cache_table(section: dict) -> str:
    seconds = section["attribute_resolution_seconds"]
    timing_table = render_table(
        ["cache off", "cache cold", "cache warm", "warm speedup",
         "identical"],
        [
            [
                f"{seconds['cache_off']:.2f}s",
                f"{seconds['cache_cold']:.2f}s",
                f"{seconds['cache_warm']:.2f}s",
                f"{section['warm_speedup']:.2f}x",
                "yes" if section["identical_output"] else "NO",
            ]
        ],
        title=(
            "Similarity caches: attribute resolution "
            f"({section['input_claims']} claims)"
        ),
    )
    stat_rows = [
        [name, format_ratio(stats["hit_rate"]), stats["hits"],
         stats["misses"], stats["evictions"], stats["size"]]
        for name, stats in sorted(section["cache_stats"].items())
    ]
    stats_table = render_table(
        ["cache", "hit rate", "hits", "misses", "evictions", "size"],
        stat_rows,
        title="Per-cache statistics (cumulative this run)",
    )
    return timing_table + "\n\n" + stats_table


# ----------------------------------------------------------------------
# Harness.


def run_all(quick: bool) -> tuple[dict, str]:
    mapreduce = run_mapreduce_section(quick)
    retry = run_retry_section(quick)
    pipeline = run_pipeline_section(quick)
    cache = run_cache_section(pipeline.pop("serial_pipeline"))
    document = {
        "meta": {
            "quick": quick,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "mapreduce": mapreduce,
        "retry_overhead": retry,
        "pipeline": pipeline,
        "similarity_cache": cache,
    }
    tables = "\n\n".join(
        [
            mapreduce_table(mapreduce),
            retry_table(retry),
            pipeline_table(pipeline),
            cache_table(cache),
        ]
    )
    return document, tables


def emit(document: dict, tables: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "parallel.txt").write_text(tables + "\n")
    (OUT_DIR / "BENCH_parallel.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )


def test_parallel_report():
    document, tables = run_all(quick=False)
    print()
    print(tables)
    emit(document, tables)

    for record in document["mapreduce"]["runs"]:
        assert record["identical"]
    for record in document["retry_overhead"]["runs"]:
        assert record["identical"]
        assert record["overhead_ratio"] > 0
    assert document["pipeline"]["equivalent"]
    for record in document["pipeline"]["modes"].values():
        assert record.get("identical_metrics", True)
    cache = document["similarity_cache"]
    assert cache["identical_output"]
    # The DOM tag-path cache is the headline win; the warm
    # attribute-resolution pass must also come out ahead.
    extraction_stats = document["pipeline"]["extraction_cache_stats"]
    assert extraction_stats["tagpath-relative"]["hit_rate"] > 0.5
    assert cache["warm_speedup"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink every workload (CI smoke mode)",
    )
    options = parser.parse_args(argv)
    document, tables = run_all(quick=options.quick)
    print(tables)
    emit(document, tables)
    print(f"\nwrote {OUT_DIR / 'BENCH_parallel.json'}")
    failures = []
    if not all(r["identical"] for r in document["mapreduce"]["runs"]):
        failures.append("mapreduce outputs diverged")
    if not all(r["identical"] for r in document["retry_overhead"]["runs"]):
        failures.append("guarded (retry) outputs diverged")
    if not document["pipeline"]["equivalent"]:
        failures.append("pipeline outputs diverged")
    if not document["similarity_cache"]["identical_output"]:
        failures.append("cached attribute resolution diverged")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
