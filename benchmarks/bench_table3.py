"""Table 3 — Query Stream Extraction Results.

Paper: relevant query records / credible attributes per class over a
29.3M-record stream (Book 259,556/96; Film 403,672/59; Country
393,244/182; University 24,633/20; Hotel 15,544/N-A).  We generate the
stream at 1% scale and reproduce the shape: per-class relevant-record
proportions match the paper, classes with attribute-intent queries
yield credible attributes, and Hotel yields none (N/A).
"""

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.tables import render_table
from repro.extract.querystream import QueryStreamExtractor
from repro.synth.querylog import (
    PAPER_TABLE3_RELEVANT,
    QueryLogConfig,
    generate_query_log,
)

SCALE = 0.01


@pytest.fixture(scope="module")
def stream(paper_world):
    return generate_query_log(
        paper_world, QueryLogConfig(seed=17, scale=SCALE)
    )


@pytest.fixture(scope="module")
def extraction(paper_world, stream):
    extractor = QueryStreamExtractor(paper_world.entity_index())
    return extractor.extract(stream)


def test_table3_report(paper_world, stream, extraction, benchmark):
    output, stats = extraction
    subset = stream[: max(1, len(stream) // 20)]
    extractor = QueryStreamExtractor(paper_world.entity_index())
    benchmark.pedantic(
        lambda: extractor.extract(subset), rounds=3, iterations=1
    )

    paper_credible = {
        "Book": "96", "Film": "59", "Country": "182",
        "University": "20", "Hotel": "N/A",
    }
    rows = []
    for class_name, paper_relevant in PAPER_TABLE3_RELEVANT.items():
        credible = stats.credible_attributes.get(class_name, 0)
        rows.append(
            [
                class_name,
                stats.relevant_records.get(class_name, 0),
                round(paper_relevant * SCALE),
                credible if credible else "N/A",
                paper_credible[class_name],
            ]
        )
    table = render_table(
        [
            "Class", "relevant records", "paper relevant (scaled)",
            "credible attributes", "paper credible",
        ],
        rows,
        title=(
            f"Table 3: Query Stream Extraction Results "
            f"(stream scaled x{SCALE}, {len(stream)} records)"
        ),
    )
    emit_report("table3", table)

    # Shape assertions.
    assert stats.credible_attributes.get("Hotel", 0) == 0  # the N/A row
    for class_name in ("Book", "Film", "Country", "University"):
        assert stats.credible_attributes.get(class_name, 0) > 0
    # Relevant-record ordering matches the paper.
    ours = {c: stats.relevant_records.get(c, 0) for c in PAPER_TABLE3_RELEVANT}
    assert sorted(ours, key=ours.get) == sorted(
        PAPER_TABLE3_RELEVANT, key=PAPER_TABLE3_RELEVANT.get
    )
    # Country finds the most credible attributes (as in the paper).
    credible = stats.credible_attributes
    assert credible["Country"] == max(credible.values())
