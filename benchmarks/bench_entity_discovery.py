"""New-entity creation (Sec. 3.1).

With Set_E covering only part of the world (60% Freebase / 50% DBpedia
snapshots), pages about uncovered entities flow through mention
harvesting and joint resolution.  Reported: how many mentions linked
vs. clustered, how many clusters name real (gold) entities, and the
fused quality with discovery on vs. off.  Expected shape: ≥90% of
clusters resolve to genuine world entities, and discovery adds fused
items without hurting precision.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.evalx.tables import format_ratio, render_table
from repro.synth.kb_snapshots import KbPairConfig
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig


def _config(discover: bool) -> PipelineConfig:
    return PipelineConfig(
        kb_pair=KbPairConfig(
            entity_ratio_freebase=0.6, entity_ratio_dbpedia=0.5
        ),
        querylog=QueryLogConfig(seed=17, scale=0.001),
        websites=WebsiteConfig(seed=23, sites_per_class=3,
                               pages_per_site=15),
        webtext=WebTextConfig(seed=29, sources_per_class=2,
                              documents_per_source=8),
        discover_new_entities=discover,
    )


@pytest.fixture(scope="module")
def runs():
    results = {}
    for discover in (False, True):
        pipeline = KnowledgeBaseConstructionPipeline(_config(discover))
        results[discover] = (pipeline, pipeline.run())
    return results


def test_entity_discovery_report(runs, benchmark):
    pipeline_on, report_on = runs[True]
    _pipeline_off, report_off = runs[False]

    from repro.entity.discovery import resolve_mention_triples
    from repro.entity.linking import EntityLinker
    from repro.entity.discovery import JointEntityResolver

    # Time the resolution step itself on the discovered mentions.
    dom_triples = pipeline_on.outputs["dom"].triples
    mention_classes = {}
    gold_index = pipeline_on.world.entity_index()
    for cluster in report_on.entity_resolution.clusters:
        for surface in cluster.surfaces:
            mention_classes[surface] = cluster.class_name
    resolver = JointEntityResolver(EntityLinker(pipeline_on._set_e_index()))
    benchmark.pedantic(
        lambda: resolve_mention_triples(dom_triples, mention_classes, resolver),
        rounds=3,
        iterations=1,
    )

    outcome = report_on.entity_resolution
    genuine = sum(
        1
        for cluster in outcome.clusters
        if any(s.lower() in gold_index for s in cluster.surfaces)
    )
    rows = [
        [
            len(outcome.linked),
            len(outcome.clusters),
            genuine,
            format_ratio(genuine / max(1, len(outcome.clusters))),
            report_on.augmentation.new_entities,
        ]
    ]
    discovery_table = render_table(
        [
            "mentions linked", "clusters (new entities)",
            "clusters naming gold entities", "cluster precision",
            "entities added to KB",
        ],
        rows,
        title="New-entity creation (Set_E at 60%/50% coverage)",
    )
    quality_table = render_table(
        ["discovery", "fused items", "precision", "recall"],
        [
            [
                "off",
                report_off.fusion_report.items,
                format_ratio(report_off.fusion_report.precision),
                format_ratio(report_off.fusion_report.recall),
            ],
            [
                "on",
                report_on.fusion_report.items,
                format_ratio(report_on.fusion_report.precision),
                format_ratio(report_on.fusion_report.recall),
            ],
        ],
        title="Fused knowledge with and without discovery",
    )
    emit_report(
        "entity_discovery", discovery_table + "\n\n" + quality_table
    )

    assert outcome.clusters
    assert genuine / len(outcome.clusters) >= 0.9
    assert report_on.fusion_report.items > report_off.fusion_report.items
    assert report_on.fusion_report.precision > (
        report_off.fusion_report.precision - 0.03
    )
