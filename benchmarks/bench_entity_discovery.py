"""New-entity creation (Sec. 3.1) and entity-matching scaling curve.

Part 1 (pytest report): with Set_E covering only part of the world
(60% Freebase / 50% DBpedia snapshots), pages about uncovered entities
flow through mention harvesting and joint resolution.  Reported: how
many mentions linked vs. clustered, how many clusters name real (gold)
entities, and the fused quality with discovery on vs. off.  Expected
shape: ≥90% of clusters resolve to genuine world entities, and
discovery adds fused items without hurting precision.

Part 2 (scaling curve): ``EntityLinker`` probe latency at 10k / 100k /
1M catalog entities, blocked (MinHash/LSH cascade) vs. brute force.
Brute force is only measured where it is affordable (≤ 100k); at every
size where it runs, blocked verdicts must be identical.  The catalog
vocabulary grows ~n^(1/3) so near-neighbour density stays realistic
instead of saturating.  Acceptance (full mode): ≥5× per-query speedup
at the 100k point, and blocked per-query time growing by well under
the size ratio across each 10× step (quadratic total work would track
the ratio; the blocked cascade's candidate sets grow ~n^(2/3)).

Results land in ``benchmarks/out/entity_scaling.txt`` and
``benchmarks/out/BENCH_entity.json``.  Run standalone with
``python benchmarks/bench_entity_discovery.py [--quick]``; ``--quick``
shrinks the curve for CI smoke runs.
"""

import argparse
import json
import os
import pathlib
import random
import sys
import time

import pytest

from benchmarks.conftest import emit_report
from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.entity.linking import EntityLinker
from repro.evalx.tables import format_ratio, render_table
from repro.rdf.ontology import Entity
from repro.synth.kb_snapshots import KbPairConfig
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig
from repro.textproc.memo import clear_similarity_caches

OUT_DIR = pathlib.Path(__file__).parent / "out"

# (catalog size, blocked queries, brute queries).  Brute force at 1M
# would be ~100M scorer calls per batch — measured only where it fits
# in a bench budget; identity is asserted wherever it runs.
FULL_SIZES = ((10_000, 100, 100), (100_000, 100, 30), (1_000_000, 100, 0))
QUICK_SIZES = ((2_000, 40, 40), (20_000, 40, 20))

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def _config(discover: bool) -> PipelineConfig:
    return PipelineConfig(
        kb_pair=KbPairConfig(
            entity_ratio_freebase=0.6, entity_ratio_dbpedia=0.5
        ),
        querylog=QueryLogConfig(seed=17, scale=0.001),
        websites=WebsiteConfig(seed=23, sites_per_class=3,
                               pages_per_site=15),
        webtext=WebTextConfig(seed=29, sources_per_class=2,
                              documents_per_source=8),
        discover_new_entities=discover,
    )


@pytest.fixture(scope="module")
def runs():
    results = {}
    for discover in (False, True):
        pipeline = KnowledgeBaseConstructionPipeline(_config(discover))
        results[discover] = (pipeline, pipeline.run())
    return results


def test_entity_discovery_report(runs, benchmark):
    pipeline_on, report_on = runs[True]
    _pipeline_off, report_off = runs[False]

    from repro.entity.discovery import resolve_mention_triples
    from repro.entity.linking import EntityLinker
    from repro.entity.discovery import JointEntityResolver

    # Time the resolution step itself on the discovered mentions.
    dom_triples = pipeline_on.outputs["dom"].triples
    mention_classes = {}
    gold_index = pipeline_on.world.entity_index()
    for cluster in report_on.entity_resolution.clusters:
        for surface in cluster.surfaces:
            mention_classes[surface] = cluster.class_name
    resolver = JointEntityResolver(EntityLinker(pipeline_on._set_e_index()))
    benchmark.pedantic(
        lambda: resolve_mention_triples(dom_triples, mention_classes, resolver),
        rounds=3,
        iterations=1,
    )

    outcome = report_on.entity_resolution
    genuine = sum(
        1
        for cluster in outcome.clusters
        if any(s.lower() in gold_index for s in cluster.surfaces)
    )
    rows = [
        [
            len(outcome.linked),
            len(outcome.clusters),
            genuine,
            format_ratio(genuine / max(1, len(outcome.clusters))),
            report_on.augmentation.new_entities,
        ]
    ]
    discovery_table = render_table(
        [
            "mentions linked", "clusters (new entities)",
            "clusters naming gold entities", "cluster precision",
            "entities added to KB",
        ],
        rows,
        title="New-entity creation (Set_E at 60%/50% coverage)",
    )
    quality_table = render_table(
        ["discovery", "fused items", "precision", "recall"],
        [
            [
                "off",
                report_off.fusion_report.items,
                format_ratio(report_off.fusion_report.precision),
                format_ratio(report_off.fusion_report.recall),
            ],
            [
                "on",
                report_on.fusion_report.items,
                format_ratio(report_on.fusion_report.precision),
                format_ratio(report_on.fusion_report.recall),
            ],
        ],
        title="Fused knowledge with and without discovery",
    )
    emit_report(
        "entity_discovery", discovery_table + "\n\n" + quality_table
    )

    assert outcome.clusters
    assert genuine / len(outcome.clusters) >= 0.9
    assert report_on.fusion_report.items > report_off.fusion_report.items
    assert report_on.fusion_report.precision > (
        report_off.fusion_report.precision - 0.03
    )


# ---------------------------------------------------------------------------
# Part 2: blocked vs. brute-force linker scaling curve.


def _scaled_catalog(rng: random.Random, size: int) -> dict[str, Entity]:
    """``size`` distinct 3-word names over an ~n^(1/3) vocabulary."""
    vocab_size = max(60, round(4 * size ** (1 / 3)))
    vocab = [
        "".join(rng.choice(_LETTERS) for _ in range(rng.randint(4, 9)))
        for _ in range(vocab_size)
    ]
    names: set[str] = set()
    while len(names) < size:
        names.add(" ".join(rng.choice(vocab) for _ in range(3)))
    return {
        name: Entity(f"e/{i}", name, "Thing")
        for i, name in enumerate(sorted(names))
    }


def _typo_probes(
    rng: random.Random, names: list[str], count: int
) -> list[str]:
    """Misspelled catalog names — the expensive fuzzy-match hot path."""
    probes = []
    for _ in range(count):
        words = rng.choice(names).split()
        index = rng.randrange(len(words))
        word = words[index]
        position = rng.randrange(len(word))
        words[index] = (
            word[:position] + rng.choice(_LETTERS) + word[position + 1:]
        )
        probes.append(" ".join(words))
    return probes


def _verdict(decision) -> tuple:
    entity_id = decision.entity.entity_id if decision.linked else None
    return (entity_id, decision.score if decision.linked else None)


def _measure_size(size: int, blocked_queries: int, brute_queries: int) -> dict:
    rng = random.Random(20_150_000 + size)
    catalog = _scaled_catalog(rng, size)
    names = list(catalog)
    probes = _typo_probes(rng, names, blocked_queries)

    started = time.perf_counter()
    blocked = EntityLinker(catalog, blocking=True)
    build_seconds = time.perf_counter() - started

    clear_similarity_caches()
    started = time.perf_counter()
    blocked_verdicts = [_verdict(blocked.link(probe)) for probe in probes]
    blocked_seconds = time.perf_counter() - started

    stats = blocked.blocking_stats
    record = {
        "entities": size,
        "vocab": max(60, round(4 * size ** (1 / 3))),
        "blocked_build_seconds": round(build_seconds, 4),
        "blocked_queries": blocked_queries,
        "blocked_query_seconds": round(blocked_seconds / blocked_queries, 6),
        "candidates_per_query": round(
            stats.tier2_candidates / max(1, stats.queries), 1
        ),
        "pruned_ratio": round(
            stats.pruned / max(1, stats.pruned + stats.tier2_candidates), 4
        ),
        "brute_queries": brute_queries,
        "brute_query_seconds": None,
        "speedup": None,
        "identical": None,
    }
    if brute_queries:
        brute = EntityLinker(catalog, blocking=False)
        clear_similarity_caches()
        started = time.perf_counter()
        brute_verdicts = [
            _verdict(brute.link(probe)) for probe in probes[:brute_queries]
        ]
        brute_seconds = time.perf_counter() - started
        record["brute_query_seconds"] = round(
            brute_seconds / brute_queries, 6
        )
        record["speedup"] = round(
            record["brute_query_seconds"] / record["blocked_query_seconds"], 2
        )
        record["identical"] = (
            brute_verdicts == blocked_verdicts[:brute_queries]
        )
    return record


def run_scaling(quick: bool) -> dict:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    return {
        "sizes": [
            _measure_size(size, blocked_queries, brute_queries)
            for size, blocked_queries, brute_queries in sizes
        ]
    }


def scaling_table(section: dict) -> str:
    def _ms(seconds):
        return "-" if seconds is None else f"{seconds * 1000:.2f}ms"

    rows = [
        [
            f"{record['entities']:,}",
            f"{record['blocked_build_seconds']:.2f}s",
            _ms(record["blocked_query_seconds"]),
            record["candidates_per_query"],
            f"{record['pruned_ratio']:.1%}",
            _ms(record["brute_query_seconds"]),
            "-" if record["speedup"] is None else f"{record['speedup']:.1f}x",
            {None: "-", True: "yes", False: "NO"}[record["identical"]],
        ]
        for record in section["sizes"]
    ]
    return render_table(
        ["entities", "index build", "blocked/query", "candidates",
         "pruned", "brute/query", "speedup", "identical"],
        rows,
        title="EntityLinker scaling: blocked cascade vs. brute force",
    )


def run_all(quick: bool) -> tuple[dict, str]:
    section = run_scaling(quick)
    document = {
        "meta": {
            "quick": quick,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "entity_scaling": section,
    }
    return document, scaling_table(section)


def emit(document: dict, tables: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "entity_scaling.txt").write_text(tables + "\n")
    (OUT_DIR / "BENCH_entity.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )


def _check(document: dict) -> list[str]:
    failures = []
    records = document["entity_scaling"]["sizes"]
    for record in records:
        if record["identical"] is False:
            failures.append(
                f"blocked verdicts diverged from brute force at "
                f"{record['entities']} entities"
            )
    if not document["meta"]["quick"]:
        for record in records:
            if record["entities"] == 100_000 and record["speedup"] < 5:
                failures.append(
                    f"speedup at 100k entities {record['speedup']}x < 5x"
                )
        # Sub-quadratic scaling: brute-force per-query latency tracks
        # the size ratio (quadratic total work).  Every step must grow
        # strictly slower than that ratio, and the full curve markedly
        # slower (candidate sets scale ~n^(2/3); bounded-memo-cache
        # thrash can inflate a single step, so the 0.7 margin applies
        # end-to-end rather than per step).
        for previous, current in zip(records, records[1:]):
            ratio = current["entities"] / previous["entities"]
            growth = (
                current["blocked_query_seconds"]
                / previous["blocked_query_seconds"]
            )
            if growth >= ratio:
                failures.append(
                    f"blocked per-query time grew {growth:.1f}x over a "
                    f"{ratio:.0f}x size step "
                    f"({previous['entities']} -> {current['entities']})"
                )
        first, last = records[0], records[-1]
        total_ratio = last["entities"] / first["entities"]
        total_growth = (
            last["blocked_query_seconds"] / first["blocked_query_seconds"]
        )
        if total_growth >= 0.7 * total_ratio:
            failures.append(
                f"blocked per-query time grew {total_growth:.1f}x over a "
                f"{total_ratio:.0f}x size range "
                f"({first['entities']} -> {last['entities']})"
            )
    return failures


def test_entity_scaling_report():
    document, tables = run_all(quick=False)
    print()
    print(tables)
    emit(document, tables)
    assert not _check(document)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the scaling curve (CI smoke mode)",
    )
    options = parser.parse_args(argv)
    document, tables = run_all(quick=options.quick)
    print(tables)
    emit(document, tables)
    print(f"\nwrote {OUT_DIR / 'BENCH_entity.json'}")
    failures = _check(document)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
