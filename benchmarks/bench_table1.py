"""Table 1 — Statistics of representative KBs.

Paper (absolute): YAGO 10M entities / 100 attributes; DBpedia 4M /
6000; Freebase 25M / 4000; NELL 0.3M / 500.  We generate the four
snapshots scaled so the largest KB covers the whole synthetic world and
report counts plus the paper-relative ratios; the *ordering* on both
axes is the reproduced shape.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.evalx.tables import render_table
from repro.synth.kb_snapshots import (
    PAPER_TABLE1,
    build_representative_snapshots,
)


@pytest.fixture(scope="module")
def snapshots(paper_world):
    return build_representative_snapshots(paper_world)


def test_table1_report(paper_world, snapshots, benchmark):
    benchmark.pedantic(
        lambda: build_representative_snapshots(paper_world),
        rounds=3,
        iterations=1,
    )
    max_entities = max(spec[0] for spec in PAPER_TABLE1.values())
    max_attributes = max(spec[1] for spec in PAPER_TABLE1.values())
    rows = []
    for kb_name, (entities_m, attributes) in PAPER_TABLE1.items():
        snapshot = snapshots[kb_name]
        rows.append(
            [
                kb_name,
                f"{entities_m}M",
                attributes,
                snapshot.entity_count(),
                snapshot.attribute_count(),
                f"{entities_m / max_entities:.3f}",
                f"{attributes / max_attributes:.3f}",
            ]
        )
    table = render_table(
        [
            "KB", "paper #entities", "paper #attrs",
            "ours #entities", "ours #attrs",
            "paper entity ratio", "paper attr ratio",
        ],
        rows,
        title="Table 1: Statistics of Representative KBs (scaled snapshots)",
    )
    emit_report("table1", table)

    # Shape assertions: both orderings must match the paper.
    ours_entities = {k: s.entity_count() for k, s in snapshots.items()}
    paper_entities = {k: spec[0] for k, spec in PAPER_TABLE1.items()}
    assert sorted(ours_entities, key=ours_entities.get) == sorted(
        paper_entities, key=paper_entities.get
    )
    ours_attrs = {k: s.attribute_count() for k, s in snapshots.items()}
    paper_attrs = {k: spec[1] for k, spec in PAPER_TABLE1.items()}
    assert sorted(ours_attrs, key=ours_attrs.get) == sorted(
        paper_attrs, key=paper_attrs.get
    )
