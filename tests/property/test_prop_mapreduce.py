"""Property-based tests for the MapReduce engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.engine import MapReduceJob

records = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9), st.integers()),
    max_size=60,
)


def sum_job(partitions, combiner=False):
    return MapReduceJob(
        lambda record: [(record[0], record[1])],
        lambda key, values: [(key, sum(values))],
        combiner=(lambda key, values: [sum(values)]) if combiner else None,
        partitions=partitions,
    )


class TestEngineInvariants:
    @given(records, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60)
    def test_partition_invariance(self, data, partitions):
        baseline = dict(sum_job(1).run(data))
        assert dict(sum_job(partitions).run(data)) == baseline

    @given(records, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60)
    def test_combiner_invariance(self, data, partitions):
        plain = dict(sum_job(partitions).run(data))
        combined = dict(sum_job(partitions, combiner=True).run(data))
        assert plain == combined

    @given(records)
    @settings(max_examples=60)
    def test_matches_direct_aggregation(self, data):
        expected = {}
        for key, value in data:
            expected[key] = expected.get(key, 0) + value
        assert dict(sum_job(3).run(data)) == expected

    @given(records)
    @settings(max_examples=60)
    def test_stats_accounting(self, data):
        job = sum_job(2)
        output = job.run(data)
        assert job.stats.input_records == len(data)
        assert job.stats.map_output_records == len(data)
        assert job.stats.output_records == len(output)
        assert job.stats.reduce_groups == len({key for key, _ in data})
