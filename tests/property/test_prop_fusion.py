"""Property-based tests for fusion invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.accu import Accu, PopAccu
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.confidence_weighted import GeneralizedSums
from repro.fusion.multitruth import MultiTruth
from repro.fusion.vote import Vote

items = st.tuples(
    st.sampled_from(["e1", "e2", "e3", "e4"]), st.sampled_from(["p", "q"])
)
values = st.sampled_from(["a", "b", "c", "d"])
sources = st.sampled_from(["s1", "s2", "s3", "s4", "s5"])


@st.composite
def claim_sets(draw):
    records = draw(
        st.lists(
            st.tuples(
                items, values, sources,
                st.floats(min_value=0.05, max_value=1.0),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return ClaimSet(
        Claim(item, value, value, source, "ex", confidence)
        for item, value, source, confidence in records
    )


METHODS = [Vote(), Accu(), PopAccu(), MultiTruth(), GeneralizedSums()]


class TestDecisionInvariants:
    @given(claim_sets())
    @settings(max_examples=40, deadline=None)
    def test_every_item_gets_a_decision(self, claims):
        for method in METHODS:
            result = method.fuse(claims)
            assert set(result.truths) == set(claims.items())

    @given(claim_sets())
    @settings(max_examples=40, deadline=None)
    def test_decided_values_were_claimed(self, claims):
        for method in METHODS:
            result = method.fuse(claims)
            for item, decided in result.truths.items():
                observed = set(claims.values_of(item))
                assert decided <= observed

    @given(claim_sets())
    @settings(max_examples=40, deadline=None)
    def test_decisions_nonempty(self, claims):
        for method in METHODS:
            result = method.fuse(claims)
            assert all(decided for decided in result.truths.values())

    @given(claim_sets())
    @settings(max_examples=40, deadline=None)
    def test_beliefs_in_unit_interval(self, claims):
        for method in METHODS:
            result = method.fuse(claims)
            assert all(0.0 <= b <= 1.0 + 1e-9 for b in result.belief.values())

    @given(claim_sets())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, claims):
        for method_factory in (Vote, Accu, MultiTruth):
            first = method_factory().fuse(claims)
            second = method_factory().fuse(claims)
            assert first.truths == second.truths


class TestUnanimity:
    @given(
        st.lists(sources, min_size=2, max_size=5, unique=True),
        values,
    )
    @settings(max_examples=40, deadline=None)
    def test_unanimous_value_always_wins(self, source_list, value):
        claims = ClaimSet(
            Claim(("e", "p"), value, value, source, "ex")
            for source in source_list
        )
        for method in METHODS:
            result = method.fuse(claims)
            assert result.truths[("e", "p")] == {value}
