"""Seeded replay property: delta-apply is byte-identical to full
re-fusion.

For each seed, a synthetic claim stream is split at random into a base
corpus plus a sequence of deltas (additions, retractions and re-adds,
all drawn by a seeded RNG in :mod:`repro.synth.deltas`).  An
:class:`IncrementalFusion` primed on the base then applies each delta;
after every step its merged result must be byte-identical — via
:meth:`FusionResult.canonical_bytes` at ``tolerance=0`` — to a fresh
full fusion of a reference store journalled with the same deltas.
"""

import pytest

from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.incremental import DeltaJournal, canonical_claims
from repro.rdf.store import TripleStore
from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.deltas import (
    DeltaStreamConfig,
    generate_delta_stream,
    scored_from_claims,
)


def _fusion():
    return KnowledgeFusion(tolerance=0.0, max_iterations=8)


def _stream(seed, parts=3):
    world = generate_claim_world(
        ClaimWorldConfig(seed=seed, n_items=10, n_sources=5)
    )
    scored = scored_from_claims(world.claims)
    return generate_delta_stream(
        scored,
        DeltaStreamConfig(seed=seed, parts=parts),
    )


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_replayed_splits_stay_byte_identical(seed):
    base, deltas = _stream(seed)
    assert len(deltas) == 3

    base_store = TripleStore()
    base_store.add_all(base)
    reference_store = base_store.copy()
    reference_journal = DeltaJournal(reference_store)

    engine = _fusion().begin_incremental(base_store)
    assert (
        engine.result.canonical_bytes()
        == _fusion().fuse(canonical_claims(reference_store)).canonical_bytes()
    )

    for index, delta in enumerate(deltas, start=1):
        outcome = engine.apply_delta(delta)
        reference_journal.apply(delta)
        reference = _fusion().fuse(canonical_claims(reference_store))
        assert outcome.sequence == index
        assert (
            outcome.result.canonical_bytes() == reference.canonical_bytes()
        ), f"seed {seed}: delta {index} diverged from full re-fusion"


@pytest.mark.parametrize("seed", [7, 19])
def test_split_position_is_irrelevant(seed):
    """Base/delta boundary placement never changes the final verdicts:
    every split of the same stream converges to the same bytes."""
    finals = []
    for base_fraction in (0.3, 0.7):
        world = generate_claim_world(
            ClaimWorldConfig(seed=seed, n_items=8, n_sources=4)
        )
        scored = scored_from_claims(world.claims)
        base, deltas = generate_delta_stream(
            scored,
            DeltaStreamConfig(
                seed=seed,
                parts=2,
                base_fraction=base_fraction,
                retract_fraction=0.0,  # keep the final claim set equal
            ),
        )
        store = TripleStore()
        store.add_all(base)
        engine = _fusion().begin_incremental(store)
        for delta in deltas:
            engine.apply_delta(delta)
        finals.append(engine.result.canonical_bytes())
    assert finals[0] == finals[1]


def test_stream_generator_is_deterministic():
    first = _stream(23)
    second = _stream(23)
    assert [s.triple for s in first[0]] == [s.triple for s in second[0]]
    for delta_a, delta_b in zip(first[1], second[1]):
        assert [s.triple for s in delta_a.added] == [
            s.triple for s in delta_b.added
        ]
        assert delta_a.retracted == delta_b.retracted
