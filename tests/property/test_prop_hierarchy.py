"""Property-based tests for value hierarchies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.hierarchy import ValueHierarchy


@st.composite
def forests(draw):
    """A random forest as a ValueHierarchy plus its node list."""
    size = draw(st.integers(min_value=2, max_value=30))
    nodes = [f"n{i}" for i in range(size)]
    hierarchy = ValueHierarchy()
    # Parent of node i is a strictly smaller index (or none): acyclic.
    for index in range(1, size):
        parent_index = draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=index - 1))
        )
        if parent_index is not None:
            hierarchy.add_edge(nodes[index], nodes[parent_index])
    return hierarchy, nodes


class TestHierarchyInvariants:
    @given(forests())
    @settings(max_examples=60)
    def test_ancestors_are_finite_and_acyclic(self, forest):
        hierarchy, nodes = forest
        for node in nodes:
            ancestors = hierarchy.ancestors(node)
            assert node not in ancestors
            assert len(ancestors) == len(set(ancestors))

    @given(forests())
    @settings(max_examples=60)
    def test_depth_equals_ancestor_count(self, forest):
        hierarchy, nodes = forest
        for node in nodes:
            assert hierarchy.depth(node) == len(hierarchy.ancestors(node))

    @given(forests())
    @settings(max_examples=60)
    def test_descendants_inverse_of_ancestors(self, forest):
        hierarchy, nodes = forest
        for node in nodes:
            for ancestor in hierarchy.ancestors(node):
                assert node in hierarchy.descendants(ancestor)

    @given(forests())
    @settings(max_examples=60)
    def test_related_is_symmetric(self, forest):
        hierarchy, nodes = forest
        for left in nodes[:10]:
            for right in nodes[:10]:
                assert hierarchy.related(left, right) == hierarchy.related(
                    right, left
                )

    @given(forests())
    @settings(max_examples=60)
    def test_support_bounds_and_direction(self, forest):
        hierarchy, nodes = forest
        for left in nodes[:10]:
            for right in nodes[:10]:
                support = hierarchy.support(left, right)
                assert 0.0 <= support <= 1.0
                # Upward support is total; downward is partial.
                if right in hierarchy.ancestors(left):
                    assert support == 1.0
                if left in hierarchy.ancestors(right):
                    assert 0.0 < support < 1.0

    @given(forests())
    @settings(max_examples=60)
    def test_lca_is_common_ancestor(self, forest):
        hierarchy, nodes = forest
        for left in nodes[:8]:
            for right in nodes[:8]:
                lca = hierarchy.lowest_common_ancestor(left, right)
                if lca is not None:
                    assert lca in hierarchy.chain(left)
                    assert lca in hierarchy.chain(right)

    @given(forests())
    @settings(max_examples=60)
    def test_roots_have_no_parent(self, forest):
        hierarchy, _nodes = forest
        for root in hierarchy.roots():
            assert hierarchy.parent(root) is None
