"""Property-based tests for store persistence (TSV round-trip)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.io import dump_claims_tsv, load_claims_tsv
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value, ValueKind

# Text that exercises escaping: tabs, newlines, backslashes, quotes.
gnarly = st.text(
    alphabet=st.sampled_from(list("ab\\\t\n\r\"' cé")), min_size=1,
    max_size=12,
).filter(lambda s: s.strip())

kinds = st.sampled_from(list(ValueKind))


@st.composite
def stores(draw):
    store = TripleStore()
    count = draw(st.integers(min_value=0, max_value=15))
    for index in range(count):
        store.add(
            ScoredTriple(
                Triple(
                    draw(gnarly),
                    draw(gnarly),
                    Value(draw(gnarly), draw(kinds)),
                ),
                Provenance(draw(gnarly), draw(gnarly), draw(gnarly)),
                draw(st.floats(min_value=0, max_value=1)),
            )
        )
    return store


class TestTsvRoundTrip:
    @given(store=stores())
    @settings(max_examples=60, deadline=None)
    def test_lossless(self, tmp_path_factory, store):
        path = tmp_path_factory.mktemp("io") / "claims.tsv"
        dump_claims_tsv(store, path)
        loaded = load_claims_tsv(path)
        original = {
            (c.triple, c.provenance, c.confidence) for c in store.claims()
        }
        restored = {
            (c.triple, c.provenance, c.confidence) for c in loaded.claims()
        }
        assert original == restored

    @given(store=stores())
    @settings(max_examples=30, deadline=None)
    def test_double_roundtrip_stable(self, tmp_path_factory, store):
        base = tmp_path_factory.mktemp("io")
        first = base / "a.tsv"
        second = base / "b.tsv"
        dump_claims_tsv(store, first)
        dump_claims_tsv(load_claims_tsv(first), second)
        assert first.read_text() == second.read_text()
