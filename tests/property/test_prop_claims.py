"""Property-based tests for the synthetic claim-world generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.claims import ClaimWorldConfig, generate_claim_world

configs = st.builds(
    ClaimWorldConfig,
    seed=st.integers(min_value=0, max_value=50),
    n_items=st.integers(min_value=1, max_value=40),
    n_sources=st.integers(min_value=1, max_value=8),
    coverage=st.floats(min_value=0.3, max_value=1.0),
    truths_per_item=st.integers(min_value=1, max_value=3),
    false_pool=st.integers(min_value=1, max_value=5),
    copier_cliques=st.integers(min_value=0, max_value=2),
    hierarchical=st.booleans(),
)


class TestGeneratorInvariants:
    @given(configs)
    @settings(max_examples=50, deadline=None)
    def test_every_item_has_truths(self, config):
        world = generate_claim_world(config)
        assert len(world.truths) == config.n_items
        assert all(
            len(values) == config.truths_per_item
            for values in world.truths.values()
        )

    @given(configs)
    @settings(max_examples=50, deadline=None)
    def test_claim_values_drawn_from_known_space(self, config):
        world = generate_claim_world(config)
        for claim in world.claims:
            gold = world.expanded_truths(claim.item)
            is_true = claim.value in gold
            is_false_pool = claim.value.startswith("false-")
            assert is_true or is_false_pool

    @given(configs)
    @settings(max_examples=50, deadline=None)
    def test_copiers_replicate_leader(self, config):
        world = generate_claim_world(config)
        votes = {}
        for claim in world.claims:
            votes.setdefault(claim.source_id, {}).setdefault(
                claim.item, set()
            ).add(claim.value)
        for copier, leader in world.copier_of.items():
            assert votes.get(copier) == votes.get(leader)

    @given(configs)
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, config):
        first = generate_claim_world(config)
        second = generate_claim_world(config)
        assert first.truths == second.truths
        assert len(first.claims) == len(second.claims)

    @given(configs)
    @settings(max_examples=50, deadline=None)
    def test_precision_of_gold_is_one(self, config):
        world = generate_claim_world(config)
        assert world.precision_of(world.truths) == 1.0
        assert world.recall_of(world.truths) == 1.0

    @given(configs)
    @settings(max_examples=50, deadline=None)
    def test_hierarchy_present_iff_configured(self, config):
        world = generate_claim_world(config)
        assert (world.hierarchy is not None) == config.hierarchical
