"""Property-based tests for the lexical-pattern engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textproc.patterns import LexicalPattern, induce_pattern
from repro.textproc.tokenize import detokenize, tokenize_words

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)
token_lists = st.lists(words, min_size=1, max_size=10)


class TestMatchingInvariants:
    @given(token_lists)
    @settings(max_examples=80)
    def test_single_slot_matches_any_single_token(self, tokens):
        pattern = LexicalPattern("<X>", max_slot_tokens=1)
        matches = pattern.match_tokens(tokens)
        assert len(matches) == len(tokens)
        assert [m.text("X") for m in matches] == tokens

    @given(token_lists)
    @settings(max_examples=80)
    def test_matches_are_ordered_and_disjoint(self, tokens):
        pattern = LexicalPattern("<X>", max_slot_tokens=2)
        matches = pattern.match_tokens(tokens)
        for before, after in zip(matches, matches[1:]):
            assert before.end <= after.start

    @given(token_lists, words)
    @settings(max_examples=80)
    def test_literal_matches_every_occurrence(self, tokens, needle):
        pattern = LexicalPattern(needle)
        matches = pattern.match_tokens(tokens)
        assert len(matches) == sum(
            1 for token in tokens if token.lower() == needle
        )

    @given(token_lists)
    @settings(max_examples=80)
    def test_bindings_within_span(self, tokens):
        pattern = LexicalPattern("<X> <Y>", max_slot_tokens=2)
        for match in pattern.match_tokens(tokens):
            bound = match.bindings["X"] + match.bindings["Y"]
            assert bound == list(tokens[match.start : match.end])


class TestInductionRoundTrip:
    @given(st.lists(words, min_size=3, max_size=8))
    @settings(max_examples=80)
    def test_induced_pattern_matches_source_sentence(self, tokens):
        # Abstract the middle token into a slot; the pattern must match
        # the original sentence and bind that token.
        middle = len(tokens) // 2
        pattern = induce_pattern(tokens, {"V": (middle, middle + 1)})
        assert pattern is not None
        matches = pattern.match_tokens(tokens, anchored=True)
        assert matches
        assert matches[0].bindings["V"] == [tokens[middle]]


class TestTokenizeDetokenize:
    @given(st.lists(words, min_size=1, max_size=8).map(" ".join))
    @settings(max_examples=80)
    def test_roundtrip_plain_words(self, text):
        assert detokenize(tokenize_words(text)) == text
