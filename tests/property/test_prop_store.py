"""Property-based tests for the triple store."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value

subjects = st.sampled_from(["s1", "s2", "s3"])
predicates = st.sampled_from(["p1", "p2"])
objects = st.sampled_from(["a", "b", "c"])
sources = st.sampled_from(["x", "y"])


@st.composite
def claims(draw):
    return ScoredTriple(
        Triple(draw(subjects), draw(predicates), Value(draw(objects))),
        Provenance(draw(sources), "ex"),
        draw(st.floats(min_value=0, max_value=1)),
    )


claim_lists = st.lists(claims(), min_size=0, max_size=40)


class TestStoreInvariants:
    @given(claim_lists)
    @settings(max_examples=80)
    def test_len_equals_distinct_claim_keys(self, batch):
        store = TripleStore()
        store.add_all(batch)
        distinct = {(c.triple, c.provenance) for c in batch}
        assert len(store) == len(distinct)

    @given(claim_lists)
    @settings(max_examples=80)
    def test_match_consistent_with_contains(self, batch):
        store = TripleStore()
        store.add_all(batch)
        for triple in store.match():
            assert triple in store

    @given(claim_lists)
    @settings(max_examples=80)
    def test_indexes_agree(self, batch):
        store = TripleStore()
        store.add_all(batch)
        for triple in store.match():
            assert triple in store.match(subject=triple.subject)
            assert triple in store.match(predicate=triple.predicate)
            assert triple in store.match(obj=triple.obj)

    @given(claim_lists)
    @settings(max_examples=80)
    def test_confidence_is_max_over_duplicates(self, batch):
        store = TripleStore()
        store.add_all(batch)
        best = {}
        for claim in batch:
            key = (claim.triple, claim.provenance)
            best[key] = max(best.get(key, 0.0), claim.confidence)
        for stored in store.claims():
            assert stored.confidence == best[(stored.triple, stored.provenance)]

    @given(claim_lists)
    @settings(max_examples=80)
    def test_remove_then_absent(self, batch):
        store = TripleStore()
        store.add_all(batch)
        for triple in list(store.match())[:3]:
            store.remove(triple)
            assert triple not in store
            assert not store.claims(triple)

    @given(claim_lists, claim_lists)
    @settings(max_examples=50)
    def test_merge_is_union(self, left_batch, right_batch):
        left = TripleStore()
        left.add_all(left_batch)
        right = TripleStore()
        right.add_all(right_batch)
        left.merge(right)
        for claim in right_batch:
            assert claim.triple in left
