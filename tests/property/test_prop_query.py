"""Property-based tests for the query engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.query import GraphQuery, TriplePattern, Var, select
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value

subjects = st.sampled_from(["s1", "s2", "s3", "s4"])
predicates = st.sampled_from(["p1", "p2", "p3"])
objects = st.sampled_from(["a", "b", "c"])


@st.composite
def stores(draw):
    store = TripleStore()
    for _ in range(draw(st.integers(min_value=0, max_value=25))):
        store.add(
            ScoredTriple(
                Triple(draw(subjects), draw(predicates), Value(draw(objects))),
                Provenance("src", "ex"),
            )
        )
    return store


class TestQueryInvariants:
    @given(stores())
    @settings(max_examples=60)
    def test_select_all_matches_store(self, store):
        rows = select(store)
        triples = {
            (row["s"], row["p"], row["o"]) for row in rows
        }
        expected = {
            (t.subject, t.predicate, t.obj.lexical) for t in store.match()
        }
        assert triples == expected

    @given(stores(), subjects)
    @settings(max_examples=60)
    def test_bound_subject_consistent_with_match(self, store, subject):
        rows = select(store, subject=subject)
        assert len(rows) == len(store.match(subject=subject))

    @given(stores())
    @settings(max_examples=60)
    def test_join_subset_of_cartesian(self, store):
        query = GraphQuery(
            [
                TriplePattern(Var("x"), "p1", Var("v")),
                TriplePattern(Var("x"), "p2", Var("w")),
            ]
        )
        rows = query.solve(store)
        lefts = {t.subject for t in store.match(predicate="p1")}
        rights = {t.subject for t in store.match(predicate="p2")}
        for row in rows:
            assert row["x"] in lefts & rights

    @given(stores())
    @settings(max_examples=60)
    def test_solutions_satisfy_patterns(self, store):
        query = GraphQuery(
            [TriplePattern(Var("s"), Var("p"), "a")]
        )
        for row in query.solve(store):
            assert Triple(row["s"], row["p"], Value("a")) in store

    @given(stores())
    @settings(max_examples=40)
    def test_join_order_invariance(self, store):
        patterns = [
            TriplePattern(Var("x"), "p1", Var("v")),
            TriplePattern(Var("x"), Var("q"), "b"),
        ]
        forward = GraphQuery(patterns).solve(store)
        backward = GraphQuery(list(reversed(patterns))).solve(store)
        canon = lambda rows: sorted(
            tuple(sorted(row.items())) for row in rows
        )
        assert canon(forward) == canon(backward)
