"""Property: a tenant inside a mix is byte-identical to its solo run.

The isolation contract of :class:`repro.serving.tenancy.TenantManager`
is *share the runtime, share nothing else* — so hosting a tenant next
to any neighbors, in any fleet size, must not change a single byte of
what that tenant serves.  We check three observables per tenant:

* canonical served bytes and version id of the final commit,
* the decided verdicts themselves (``result.truths``),
* the deterministic subset of its ``tenant=<name>``-labeled metrics.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serving.tenancy import TenantManager
from repro.synth.tenants import (
    TENANT_KINDS,
    TenantMixConfig,
    TenantSpec,
    build_tenant_workload,
)

MIX = TenantMixConfig(
    n_tenants=3, seed=43, n_items=10, n_sources=4, parts=2, epochs=2
)


def solo_run(spec: TenantSpec):
    """Drain one tenant hosted alone; return (runtime, registry)."""
    registry = MetricsRegistry()
    manager = TenantManager(
        [build_tenant_workload(spec)], metrics=registry
    )
    manager.drain_fair()
    return manager.tenant(spec.name), registry


class TestSoloVersusMix:
    @pytest.fixture(scope="class")
    def mix_run(self):
        registry = MetricsRegistry()
        manager = TenantManager.from_mix(MIX, metrics=registry)
        manager.drain_fair()
        return manager, registry

    @pytest.mark.parametrize("index", range(MIX.n_tenants))
    def test_served_bytes_match_the_solo_run(self, mix_run, index):
        manager, _registry = mix_run
        spec = MIX.specs()[index]
        solo, _ = solo_run(spec)
        mixed = manager.tenant(spec.name)
        assert mixed.finished and solo.finished
        solo_version = solo.server.versions.current
        mixed_version = mixed.server.versions.current
        assert mixed_version.canonical_bytes() == (
            solo_version.canonical_bytes()
        )
        assert mixed_version.version_id == solo_version.version_id
        assert mixed_version.result.truths == solo_version.result.truths

    @pytest.mark.parametrize("index", range(MIX.n_tenants))
    def test_labeled_metrics_match_the_solo_run(self, mix_run, index):
        manager, registry = mix_run
        spec = MIX.specs()[index]
        _solo, solo_registry = solo_run(spec)
        mine = (
            registry.snapshot()
            .label_subset(tenant=spec.name)
            .deterministic_subset()
        )
        solo_mine = (
            solo_registry.snapshot()
            .label_subset(tenant=spec.name)
            .deterministic_subset()
        )
        assert mine == solo_mine
        assert mine["counters"]  # the subset is not vacuously empty

    def test_every_kind_is_exercised(self):
        assert tuple(
            spec.kind for spec in MIX.specs()
        ) == TENANT_KINDS


class TestFleetSizeInvariance:
    def test_growing_the_fleet_never_changes_an_existing_tenant(self):
        """tenant00 serves identical bytes in a 1-, 2- and 4-tenant mix."""
        snapshots = []
        for n in (1, 2, 4):
            mix = TenantMixConfig(
                n_tenants=n, seed=43, n_items=8, n_sources=3, parts=2,
            )
            manager = TenantManager.from_mix(mix)
            manager.drain_fair()
            first = manager.tenant("tenant00").server.versions.current
            snapshots.append(
                (first.version_id, first.canonical_bytes())
            )
        assert snapshots[0] == snapshots[1] == snapshots[2]
