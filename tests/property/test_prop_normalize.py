"""Property-based tests for normalisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textproc.normalize import (
    canonical_key,
    normalize_attribute,
    normalize_name,
    singularize,
)

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=12,
)
phrases = st.lists(words, min_size=1, max_size=4).map(" ".join)
messy = st.text(max_size=40)


class TestNormalizeName:
    @given(messy)
    def test_idempotent(self, text):
        once = normalize_name(text)
        assert normalize_name(once) == once

    @given(messy)
    def test_lowercase(self, text):
        assert normalize_name(text) == normalize_name(text).lower()

    @given(messy)
    def test_no_leading_trailing_space(self, text):
        result = normalize_name(text)
        assert result == result.strip()


class TestNormalizeAttribute:
    @given(phrases)
    def test_idempotent(self, phrase):
        once = normalize_attribute(phrase)
        assert normalize_attribute(once) == once

    @given(phrases)
    def test_case_insensitive(self, phrase):
        assert normalize_attribute(phrase.upper()) == normalize_attribute(
            phrase
        )

    @given(phrases)
    def test_separator_insensitive(self, phrase):
        underscored = phrase.replace(" ", "_")
        assert normalize_attribute(underscored) == normalize_attribute(phrase)


class TestSingularize:
    @given(words)
    def test_idempotent_modulo_rules(self, word):
        once = singularize(word)
        assert singularize(once) == singularize(once)

    @given(words)
    def test_lowercase_output(self, word):
        assert singularize(word) == singularize(word).lower()


class TestCanonicalKey:
    @given(phrases)
    def test_deterministic(self, phrase):
        assert canonical_key(phrase) == canonical_key(phrase)

    @given(phrases)
    def test_stable_under_normalisation(self, phrase):
        assert canonical_key(phrase) == canonical_key(
            normalize_attribute(phrase)
        )
