"""Property-based tests for the HTML substrate.

The central invariant: serialise(parse(x)) is a fixpoint — parsing its
own output reproduces the same tree (idempotent normalisation), and the
tokenizer never crashes on arbitrary input.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htmldom.parser import parse_html
from repro.htmldom.serialize import to_html
from repro.htmldom.tokenizer import tokenize

# Arbitrary text, including angle brackets and quotes.
junk = st.text(max_size=200)

tags = st.sampled_from(["div", "p", "span", "table", "tr", "td", "ul", "li", "b"])
words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=10,
)


@st.composite
def html_trees(draw, depth=3):
    """Generate well-formed HTML markup."""
    if depth == 0 or draw(st.booleans()):
        return draw(words)
    tag = draw(tags)
    children = draw(
        st.lists(html_trees(depth=depth - 1), min_size=0, max_size=3)
    )
    attrs = ""
    if draw(st.booleans()):
        attrs = f' class="{draw(words)}"'
    return f"<{tag}{attrs}>{''.join(children)}</{tag}>"


class TestTokenizerRobustness:
    @given(junk)
    @settings(max_examples=150)
    def test_never_raises(self, markup):
        tokenize(markup)

    @given(junk)
    @settings(max_examples=150)
    def test_parser_never_raises(self, markup):
        parse_html(markup)


class TestRoundTrip:
    @given(html_trees())
    @settings(max_examples=100)
    def test_serialise_parse_fixpoint(self, markup):
        once = to_html(parse_html(markup))
        twice = to_html(parse_html(once))
        assert once == twice

    @given(html_trees())
    @settings(max_examples=100)
    def test_text_content_preserved(self, markup):
        document = parse_html(markup)
        text = document.text_content()
        reparsed = parse_html(to_html(document))
        assert reparsed.text_content() == text

    @given(st.lists(words, min_size=1, max_size=5))
    @settings(max_examples=50)
    def test_text_nodes_in_document_order(self, texts):
        markup = "".join(f"<p>{t}</p>" for t in texts)
        document = parse_html(markup)
        assert [node.text for node in document.iter_text_nodes()] == texts
