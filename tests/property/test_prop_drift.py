"""Drift-stream properties: replay determinism and incremental parity.

Two contracts of :class:`repro.synth.drift.DriftingWorld`:

* **Replay determinism** — the world is a pure function of its config:
  constructing it twice with the same seed yields byte-identical base
  corpora, epoch-delta JSON and epoch-truth sequences.
* **Incremental parity** — applying the epoch deltas through an
  :class:`IncrementalFusion` primed on the base corpus is
  byte-identical (``FusionResult.canonical_bytes`` at ``tolerance=0``)
  to a fresh full fusion of a reference store journalled with the same
  deltas, at every epoch.
"""

import json

import pytest

from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.incremental import DeltaJournal, canonical_claims
from repro.incremental.delta import delta_to_json_dict
from repro.rdf.store import TripleStore
from repro.synth.drift import DriftConfig, DriftingWorld


def _fusion():
    return KnowledgeFusion(tolerance=0.0, max_iterations=8)


def _config(seed):
    return DriftConfig(seed=seed, n_items=18, n_sources=5, epochs=4)


def _world_bytes(world):
    """Canonical JSON of everything a drift world generated."""
    payload = {
        "base": [
            [
                scored.triple.subject,
                scored.triple.predicate,
                scored.triple.obj.lexical,
                scored.provenance.source_id,
                scored.provenance.extractor_id,
                round(scored.confidence, 12),
            ]
            for scored in world.base
        ],
        "deltas": [
            delta_to_json_dict(delta) for delta in world.deltas()
        ],
        "truths": [
            {
                f"{subject}|{predicate}": sorted(values)
                for (subject, predicate), values in sorted(
                    world.truth_at(epoch).items()
                )
            }
            for epoch in range(world.current_epoch + 1)
        ],
        "events": [
            epoch.truth.to_json_dict() for epoch in world.epochs
        ],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.mark.parametrize("seed", [0, 7, 19])
def test_same_seed_replays_byte_identically(seed):
    first = DriftingWorld(_config(seed))
    second = DriftingWorld(_config(seed))
    assert _world_bytes(first) == _world_bytes(second)


def test_different_seeds_diverge():
    assert _world_bytes(DriftingWorld(_config(1))) != _world_bytes(
        DriftingWorld(_config(2))
    )


@pytest.mark.parametrize("seed", [0, 7, 19])
def test_incremental_equals_full_refusion_per_epoch(seed):
    world = DriftingWorld(_config(seed))

    base_store = TripleStore()
    base_store.add_all(world.base)
    reference_store = base_store.copy()
    reference_journal = DeltaJournal(reference_store)

    engine = _fusion().begin_incremental(base_store)
    assert (
        engine.result.canonical_bytes()
        == _fusion().fuse(canonical_claims(reference_store)).canonical_bytes()
    )

    for drift_epoch in world.epochs:
        engine.apply_delta(drift_epoch.delta)
        reference_journal.apply(drift_epoch.delta)
        reference = _fusion().fuse(canonical_claims(reference_store))
        assert (
            engine.result.canonical_bytes() == reference.canonical_bytes()
        ), f"epoch {drift_epoch.truth.epoch} diverged from full re-fusion"


def test_deltas_retract_only_live_claims():
    """Every retraction targets a triple currently in the store."""
    world = DriftingWorld(_config(7))
    live = {scored.triple for scored in world.base}
    for drift_epoch in world.epochs:
        delta = drift_epoch.delta
        for triple in delta.retracted:
            assert triple in live, "retracted a triple not in the store"
        live -= set(delta.retracted)
        live |= {scored.triple for scored in delta.added}
        assert live, "drift stream emptied the store"


def test_truths_track_events():
    """Births/deaths/renames/changes are reflected in the truth maps."""
    world = DriftingWorld(_config(0))
    for index, drift_epoch in enumerate(world.epochs, start=1):
        before = world.truth_at(index - 1)
        after = world.truth_at(index)
        truth = drift_epoch.truth
        before_subjects = {subject for subject, _ in before}
        after_subjects = {subject for subject, _ in after}
        for subject in truth.born:
            assert subject not in before_subjects
            assert subject in after_subjects
        for subject in truth.died:
            assert subject in before_subjects
            assert subject not in after_subjects
        for subject, old_predicate, new_predicate in truth.renamed:
            assert (subject, old_predicate) in before
            assert (subject, new_predicate) in after
        for subject, old_value, new_value in truth.changed:
            assert old_value != new_value
            matches = [
                values
                for (item_subject, _), values in after.items()
                if item_subject == subject
            ]
            assert any(new_value in values for values in matches)
