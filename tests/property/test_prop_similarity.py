"""Property-based tests for string similarity measures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textproc.similarity import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    name_similarity,
    token_jaccard,
)

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=0,
    max_size=12,
)


class TestLevenshteinProperties:
    @given(words, words)
    def test_symmetry(self, left, right):
        assert levenshtein(left, right) == levenshtein(right, left)

    @given(words)
    def test_identity(self, word):
        assert levenshtein(word, word) == 0

    @given(words, words)
    def test_bounded_by_longer_length(self, left, right):
        assert levenshtein(left, right) <= max(len(left), len(right))

    @given(words, words)
    def test_at_least_length_difference(self, left, right):
        assert levenshtein(left, right) >= abs(len(left) - len(right))

    @given(words, words, words)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words, words)
    def test_limit_consistent_with_exact(self, left, right):
        exact = levenshtein(left, right)
        limited = levenshtein(left, right, limit=3)
        if exact <= 3:
            assert limited == exact
        else:
            assert limited > 3


class TestSimilarityRanges:
    @given(words, words)
    def test_levenshtein_similarity_in_unit_interval(self, left, right):
        assert 0.0 <= levenshtein_similarity(left, right) <= 1.0

    @given(words, words)
    def test_jaro_in_unit_interval(self, left, right):
        assert 0.0 <= jaro(left, right) <= 1.0

    @given(words, words)
    def test_jaro_winkler_in_unit_interval(self, left, right):
        assert 0.0 <= jaro_winkler(left, right) <= 1.0

    @given(words, words)
    def test_jaro_winkler_at_least_jaro(self, left, right):
        assert jaro_winkler(left, right) >= jaro(left, right) - 1e-12

    @given(words, words)
    def test_jaro_symmetry(self, left, right):
        assert jaro(left, right) == jaro(right, left)

    @given(words)
    def test_identity_scores_one(self, word):
        if word:
            assert jaro(word, word) == 1.0
            assert name_similarity(word, word) == 1.0


class TestTokenJaccard:
    phrases = st.lists(words.filter(bool), min_size=0, max_size=5).map(" ".join)

    @given(phrases, phrases)
    def test_symmetry(self, left, right):
        assert token_jaccard(left, right) == token_jaccard(right, left)

    @given(phrases)
    def test_identity(self, phrase):
        assert token_jaccard(phrase, phrase) == 1.0

    @given(phrases, phrases)
    def test_unit_interval(self, left, right):
        assert 0.0 <= token_jaccard(left, right) <= 1.0
