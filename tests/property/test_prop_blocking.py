"""Property tests: blocked cascade verdicts are identical to brute force.

Seeded random worlds are replayed through both paths of the three
blocking sites — mention linking, joint discovery, and attribute
resolution.  The LSH tier is probabilistic by design but deterministic
under the pinned seeds, so these pins are stable: a pass today is a
pass forever (the same contract PR 2 established for the attribute
resolver's first blocking pass).
"""

import random

import pytest

from repro.entity.discovery import JointEntityResolver, MentionRecord
from repro.entity.linking import EntityLinker
from repro.entity.resolution import AttributeResolver
from repro.rdf.ontology import Entity

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def _word(rng, lo=4, hi=10):
    return "".join(rng.choice(_LETTERS) for _ in range(rng.randint(lo, hi)))


def _typo(rng, word):
    kind = rng.randrange(4)
    i = rng.randrange(len(word))
    if kind == 0 and len(word) > 1:  # transpose
        i = rng.randrange(len(word) - 1)
        return word[:i] + word[i + 1] + word[i] + word[i + 2:]
    if kind == 1 and len(word) > 1:  # drop
        return word[:i] + word[i + 1:]
    if kind == 2:  # duplicate
        return word[:i] + word[i] + word[i:]
    return word[:i] + rng.choice(_LETTERS) + word[i + 1:]  # substitute


def _surfaces(rng, count):
    """Multi-word names over a shared vocabulary (near pairs common)."""
    vocab = [_word(rng) for _ in range(max(20, count // 3))]
    return [
        " ".join(rng.choice(vocab) for _ in range(rng.randint(1, 3)))
        for _ in range(count)
    ]


def _probes(rng, surfaces, count):
    """Probe mix: exacts, misspellings, permutations, wrappers, noise."""
    probes = []
    for _ in range(count):
        kind = rng.random()
        base = rng.choice(surfaces)
        words = base.split()
        if kind < 0.35:
            probes.append(base)
        elif kind < 0.6:
            i = rng.randrange(len(words))
            words[i] = _typo(rng, words[i])
            probes.append(" ".join(words))
        elif kind < 0.75:
            rng.shuffle(words)
            probes.append(" ".join(words))
        elif kind < 0.85:
            probes.append("the " + base)
        else:
            probes.append(
                " ".join(_word(rng) for _ in range(rng.randint(1, 3)))
            )
    return probes


class TestLinkerEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_blocked_verdicts_match_brute(self, seed):
        rng = random.Random(1000 + seed)
        classes = ("Book", "City", "Person")
        catalog = {}
        for i, surface in enumerate(_surfaces(rng, 220)):
            catalog[surface] = Entity(
                f"e/{i}", surface, classes[i % len(classes)]
            )
        blocked = EntityLinker(catalog, blocking=True, brute_floor=0)
        brute = EntityLinker(catalog, blocking=False)
        surfaces = list(catalog)
        for probe in _probes(rng, surfaces, 150):
            for class_name in (None, rng.choice(classes)):
                fast = blocked.link(probe, class_name)
                slow = brute.link(probe, class_name)
                assert fast.linked == slow.linked, (probe, class_name)
                if fast.linked:
                    assert fast.entity.entity_id == slow.entity.entity_id
                    assert fast.score == slow.score
        stats = blocked.blocking_stats
        assert stats.queries > 0
        assert stats.pruned > 0  # blocking actually pruned work
        assert brute.blocking_stats.queries == 0


class TestDiscoveryEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_blocked_outcomes_match_brute(self, seed):
        rng = random.Random(2000 + seed)
        known = _surfaces(rng, 50)
        catalog = {
            surface: Entity(f"e/{i}", surface, "Thing")
            for i, surface in enumerate(known)
        }
        pool = _surfaces(rng, 150) + known[:10]
        attrs = [_word(rng) for _ in range(12)]
        values = [_word(rng) for _ in range(20)]
        mentions = [
            MentionRecord(
                surface,
                "Thing",
                {
                    (rng.choice(attrs), rng.choice(values))
                    for _ in range(rng.randint(0, 3))
                },
            )
            for surface in _probes(rng, pool, 220)
        ]

        def clone(records):
            return [
                MentionRecord(m.surface, m.class_name, set(m.facts))
                for m in records
            ]

        blocked = JointEntityResolver(
            EntityLinker(catalog, blocking=True, brute_floor=0),
            blocking=True,
            brute_floor=0,
        )
        brute = JointEntityResolver(
            EntityLinker(catalog, blocking=False), blocking=False
        )
        fast = blocked.resolve(clone(mentions))
        slow = brute.resolve(clone(mentions))
        assert {s: e.entity_id for s, e in fast.linked.items()} == {
            s: e.entity_id for s, e in slow.linked.items()
        }

        def canon(outcome):
            return [
                (
                    cluster.cluster_id,
                    cluster.class_name,
                    cluster.name,
                    sorted(cluster.surfaces),
                    sorted(cluster.profile),
                )
                for cluster in outcome.clusters
            ]

        assert canon(fast) == canon(slow)
        assert blocked.blocking_stats.queries > 0
        assert blocked.blocking_stats.pruned > 0


class TestAttributeResolverEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_blocked_resolutions_match_brute(self, seed):
        rng = random.Random(3000 + seed)
        vocab = [_word(rng, 4, 9) for _ in range(40)]
        names = sorted({
            " ".join(rng.choice(vocab) for _ in range(rng.randint(1, 3)))
            for _ in range(180)
        })
        variants = []
        for name in names[:70]:
            words = name.split()
            roll = rng.random()
            if roll < 0.4:
                i = rng.randrange(len(words))
                words[i] = _typo(rng, words[i])
                variants.append(" ".join(words))
            elif roll < 0.55 and len(words) > 1:
                rng.shuffle(words)
                variants.append(" of ".join(words))
            elif roll < 0.7:
                variants.append("official " + name)
            elif roll < 0.8:
                variants.append(name + " of record")
            else:
                variants.append("main " + name)  # sub-attribute shape
        support = {}
        for name in names:
            support[name] = rng.randint(60, 120)
        for variant in variants:
            support.setdefault(variant, rng.randint(1, 40))
        subjects = [f"s{i}" for i in range(30)]
        profiles = {}
        for name in support:
            if rng.random() < 0.7:
                profiles[name] = {
                    (rng.choice(subjects), _word(rng))
                    for _ in range(rng.randint(1, 6))
                }
        # Force some profile-identical pairs (the value-profile merge).
        for left, right in zip(names[:10], names[10:20]):
            if left in profiles:
                profiles[right] = set(profiles[left])
        blocked = AttributeResolver(
            "Thing", support, profiles, blocking=True
        ).run()
        brute = AttributeResolver(
            "Thing", support, profiles, blocking=False
        ).run()
        assert blocked.canonical_map == brute.canonical_map
        assert blocked.sub_attributes == brute.sub_attributes
