"""Backend-equivalence properties: the segment store is the memory
store.

For each seed, a synthetic claim world is replayed against a
:class:`MemoryBackend` store and a :class:`SegmentBackend` store (with
a small memtable limit so flushes and compactions actually interleave
with the mutations).  Every observable must agree: lengths, claim
lists, every query surface, and — the hard contract from the design
notes — byte-identical fusion verdicts at ``tolerance=0`` across the
full, sharded (:func:`fuse_sharded_segments`) and incremental paths.
"""

import random

import pytest

from repro.fusion import Accu, MultiTruth
from repro.fusion.base import ClaimSet
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.fusion.sharding import fuse_sharded, fuse_sharded_segments
from repro.incremental import DeltaJournal, canonical_claims
from repro.rdf.segments import SegmentBackend
from repro.rdf.store import TripleStore
from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.deltas import (
    DeltaStreamConfig,
    generate_delta_stream,
    scored_from_claims,
)


def _fusion():
    return KnowledgeFusion(tolerance=0.0, max_iterations=8)


def _world_claims(seed, n_items=12, n_sources=6):
    world = generate_claim_world(
        ClaimWorldConfig(seed=seed, n_items=n_items, n_sources=n_sources)
    )
    return scored_from_claims(world.claims)


def _pair(tmp_path, memtable_limit=7, **kwargs):
    mem = TripleStore()
    seg = TripleStore(
        SegmentBackend(
            tmp_path / "seg", memtable_limit=memtable_limit, **kwargs
        )
    )
    return mem, seg


def _assert_equivalent(mem, seg):
    assert len(seg) == len(mem)
    assert seg.claims() == mem.claims()
    assert seg.snapshot() == mem.snapshot()
    assert list(iter(seg)) == list(iter(mem))
    assert seg.subjects() == mem.subjects()
    assert seg.predicates() == mem.predicates()
    assert seg.sources() == mem.sources()
    assert seg.extractors() == mem.extractors()
    assert seg.match() == mem.match()
    for subject in mem.subjects():
        assert seg.predicates(subject) == mem.predicates(subject)
        assert sorted(
            map(str, seg.match(subject=subject))
        ) == sorted(map(str, mem.match(subject=subject)))
        for predicate in mem.predicates(subject):
            assert seg.objects(subject, predicate) == mem.objects(
                subject, predicate
            )
            assert set(seg.claims_for_item(subject, predicate)) == set(
                mem.claims_for_item(subject, predicate)
            )
    for triple in mem.match():
        assert (triple in seg) == (triple in mem)
        assert set(seg.claims(triple)) == set(mem.claims(triple))


@pytest.mark.parametrize("seed", [5, 13, 37])
def test_random_interleavings_agree(tmp_path, seed):
    """Random add/remove/re-add/flush/compact interleavings leave both
    backends observably identical at every checkpoint."""
    rng = random.Random(seed)
    corpus = _world_claims(seed)
    mem, seg = _pair(
        tmp_path, memtable_limit=5, compact_threshold=4
    )
    removed_pool = []
    for step, scored in enumerate(corpus):
        roll = rng.random()
        if roll < 0.15 and len(mem) > 0:
            victim = rng.choice(mem.match())
            assert seg.remove(victim) == mem.remove(victim)
            removed_pool.append(scored)
        elif roll < 0.25 and removed_pool:
            back = removed_pool.pop(rng.randrange(len(removed_pool)))
            mem.add(back)
            seg.add(back)
        else:
            mem.add(scored)
            seg.add(scored)
        if roll > 0.9:
            seg.flush()
        if step % 11 == 10:
            _assert_equivalent(mem, seg)
    seg.compact()
    _assert_equivalent(mem, seg)


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_full_fusion_verdicts_byte_identical(tmp_path, seed):
    corpus = _world_claims(seed)
    mem, seg = _pair(tmp_path, memtable_limit=6)
    mem.add_all(corpus)
    seg.add_all(corpus)
    for method in (_fusion(), Accu(), MultiTruth()):
        reference = method.fuse(canonical_claims(mem))
        assert (
            method.fuse(canonical_claims(seg)).canonical_bytes()
            == reference.canonical_bytes()
        ), f"seed {seed}: {method.name} diverged across backends"


@pytest.mark.parametrize("seed", [3, 29])
@pytest.mark.parametrize("executor", ["serial", "process"])
def test_sharded_segment_fusion_byte_identical(tmp_path, seed, executor):
    """Zero-copy sharded fusion (workers mmap the canonical segment)
    merges to the same bytes as in-memory sharded fusion."""
    corpus = _world_claims(seed)
    mem, seg = _pair(tmp_path, memtable_limit=6)
    mem.add_all(corpus)
    seg.add_all(corpus)
    method = Accu()
    # The segment path replays claims in row order — the store's
    # position order — so the in-memory reference uses the same order.
    claims = ClaimSet.from_scored_triples(mem.claims())
    expected, expected_stats = fuse_sharded(
        method, claims, workers=2, executor=executor
    )
    got, got_stats = fuse_sharded_segments(
        method, seg, workers=2, executor=executor
    )
    assert got.canonical_bytes() == expected.canonical_bytes()
    assert got_stats.components == expected_stats.components
    assert sorted(got_stats.component_claims) == sorted(
        expected_stats.component_claims
    )


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_delta_journal_interleavings_agree(tmp_path, seed):
    """The same delta stream journalled into both backends keeps the
    stores equivalent and the receipts identical step by step."""
    world = _world_claims(seed)
    base, deltas = generate_delta_stream(
        world, DeltaStreamConfig(seed=seed, parts=3)
    )
    mem, seg = _pair(tmp_path, memtable_limit=5)
    mem.add_all(base)
    seg.add_all(base)
    mem_journal = DeltaJournal(mem)
    seg_journal = DeltaJournal(seg)
    for delta in deltas:
        mem_receipt = mem_journal.apply(delta)
        seg_receipt = seg_journal.apply(delta)
        assert seg_receipt.added == mem_receipt.added
        assert seg_receipt.noop_additions == mem_receipt.noop_additions
        assert seg_receipt.removed_claims == mem_receipt.removed_claims
        assert (
            seg_receipt.missing_retractions
            == mem_receipt.missing_retractions
        )
        assert seg_receipt.dirty_items == mem_receipt.dirty_items
        assert seg_receipt.dirty_sources == mem_receipt.dirty_sources
        _assert_equivalent(mem, seg)


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_incremental_fusion_byte_identical(tmp_path, seed):
    """An IncrementalFusion engine driven over a segment-backed store
    tracks the memory-backed engine byte for byte after every delta —
    with a memtable small enough that flushes happen mid-stream."""
    world = _world_claims(seed)
    base, deltas = generate_delta_stream(
        world, DeltaStreamConfig(seed=seed, parts=3)
    )
    mem, seg = _pair(tmp_path, memtable_limit=5)
    mem.add_all(base)
    seg.add_all(base)
    mem_engine = _fusion().begin_incremental(mem)
    seg_engine = _fusion().begin_incremental(seg)
    assert (
        seg_engine.result.canonical_bytes()
        == mem_engine.result.canonical_bytes()
    )
    for index, delta in enumerate(deltas, start=1):
        mem_outcome = mem_engine.apply_delta(delta)
        seg_outcome = seg_engine.apply_delta(delta)
        assert seg_outcome.sequence == mem_outcome.sequence == index
        assert (
            seg_outcome.result.canonical_bytes()
            == mem_outcome.result.canonical_bytes()
        ), f"seed {seed}: delta {index} diverged across backends"


def test_reopened_store_fuses_identically(tmp_path):
    """Durability does not perturb verdicts: flush, reopen from disk,
    and the reopened store fuses to the same bytes."""
    corpus = _world_claims(41)
    directory = tmp_path / "seg"
    seg = TripleStore(SegmentBackend(directory, memtable_limit=6))
    seg.add_all(corpus)
    seg.flush()
    expected = _fusion().fuse(canonical_claims(seg)).canonical_bytes()
    seg.close()
    reopened = TripleStore(SegmentBackend(directory))
    assert (
        _fusion().fuse(canonical_claims(reopened)).canonical_bytes()
        == expected
    )
