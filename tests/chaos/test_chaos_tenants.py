"""Chaos tests: one tenant's disaster never leaks into its neighbors.

Faults here are injected into exactly one tenant of a mix — transient
crashes, a permanent poison delta, an unrecoverable crash storm, and
log backpressure — and in every case the *other* tenant's committed
versions must be byte-identical to its fault-free solo run.  The
faulted tenant itself must follow the serving layer's own contracts
(heal via redelivery + fence, degrade on poison, halt on a storm).
"""

import pytest

from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.serving.tenancy import TenantManager
from repro.synth.tenants import TenantMixConfig, build_tenant_workload

MIX = TenantMixConfig(
    n_tenants=2, seed=59, kinds=("static",), n_items=8, n_sources=3,
    parts=3,
)
VICTIM, BYSTANDER = "tenant00", "tenant01"


def solo_reference(name: str):
    """Fault-free solo run of one mix member -> (version, registry)."""
    spec = next(s for s in MIX.specs() if s.name == name)
    registry = MetricsRegistry()
    manager = TenantManager(
        [build_tenant_workload(spec)], metrics=registry
    )
    manager.drain_fair()
    return manager.tenant(name).server.versions.current, registry


@pytest.fixture(scope="module")
def bystander_reference():
    return solo_reference(BYSTANDER)


def assert_bystander_untouched(manager, bystander_reference):
    reference, solo_registry = bystander_reference
    runtime = manager.tenant(BYSTANDER)
    assert runtime.finished
    assert runtime.halted is None
    current = runtime.server.versions.current
    assert current.canonical_bytes() == reference.canonical_bytes()
    assert current.version_id == reference.version_id
    if manager.metrics is not None:
        mine = (
            manager.metrics.snapshot()
            .label_subset(tenant=BYSTANDER)
            .deterministic_subset()
        )
        solo = (
            solo_registry.snapshot()
            .label_subset(tenant=BYSTANDER)
            .deterministic_subset()
        )
        assert mine == solo


class TestCrashIsolation:
    @pytest.mark.parametrize(
        "scope", ["stream:apply", "stream:post-commit"]
    )
    def test_transient_crash_in_one_tenant_heals_and_spares_the_other(
        self, scope, bystander_reference
    ):
        registry = MetricsRegistry()
        manager = TenantManager.from_mix(
            MIX,
            metrics=registry,
            fault_plans={
                VICTIM: FaultPlan(seed=5).crash(scope, index=1),
            },
        )
        manager.drain_fair()
        victim = manager.tenant(VICTIM)
        # The victim heals: redelivery plus the dedup fence make the
        # retried step exactly-once, so it converges to its own
        # fault-free bytes too.
        assert victim.finished and victim.halted is None
        reference, _ = solo_reference(VICTIM)
        assert victim.server.versions.current.canonical_bytes() == (
            reference.canonical_bytes()
        )
        if scope == "stream:post-commit":
            # This crash point escapes step(); the manager's tenant
            # boundary absorbed it and redelivery hit the fence.
            assert registry.snapshot().label_subset(
                tenant=VICTIM
            ).counters.get("tenant_faults_total{tenant=tenant00}")
        else:
            # stream:apply is retried inside the server; the manager
            # never even saw a fault.
            assert victim.fault_count == 0
        assert_bystander_untouched(manager, bystander_reference)

    def test_poison_storm_degrades_one_tenant_only(
        self, bystander_reference
    ):
        registry = MetricsRegistry()
        manager = TenantManager.from_mix(
            MIX,
            metrics=registry,
            fault_plans={
                VICTIM: FaultPlan(seed=5).crash(
                    "stream:apply", index=0, attempts=0
                ),
            },
        )
        manager.drain_fair()
        victim = manager.tenant(VICTIM)
        # Poison is parked, not fatal: the victim finishes its stream
        # minus the poisoned delta, flagged degraded.
        assert victim.finished and victim.halted is None
        status = victim.server.status()
        assert status.poisoned == 1
        assert status.quarantined_held == 1
        # Later clean deltas applied, so the victim still advanced past
        # the parked one.
        assert status.version_id == len(victim.pending)
        assert_bystander_untouched(manager, bystander_reference)

    @pytest.mark.parametrize("scope", ["stream:deliver", "stream:commit"])
    def test_unrecoverable_storm_halts_the_victim_not_the_fleet(
        self, scope, bystander_reference
    ):
        # deliver/commit crash points are attempt-unaware (they model
        # process death): in one process the same offset re-fires the
        # fault on every redelivery — a storm the manager must contain.
        registry = MetricsRegistry()
        manager = TenantManager.from_mix(
            MIX,
            metrics=registry,
            fault_limit=4,
            fault_plans={
                VICTIM: FaultPlan(seed=5).crash(scope, index=1),
            },
        )
        rounds = manager.drain_fair()
        assert rounds > 0  # the loop terminated despite a dead tenant
        victim = manager.tenant(VICTIM)
        assert victim.halted is not None
        assert "fault limit 4" in victim.halted
        assert "InjectedFault" in (victim.last_fault or "")
        assert not victim.finished
        report = manager.eval_rows(rounds=rounds)
        assert report.row(VICTIM).halted is not None
        assert report.row(BYSTANDER).halted is None
        assert_bystander_untouched(manager, bystander_reference)


class TestBackpressureIsolation:
    def test_tiny_logs_defer_but_never_corrupt(self, bystander_reference):
        # capacity=1 forces constant backpressure + compaction in every
        # tenant; deferred publishes retry on later rounds and the final
        # bytes still match the roomy solo run.
        manager = TenantManager.from_mix(MIX, capacity=1)
        manager.drain_fair()
        for name in (VICTIM, BYSTANDER):
            runtime = manager.tenant(name)
            assert runtime.finished
            reference, _ = solo_reference(name)
            assert runtime.server.versions.current.canonical_bytes() == (
                reference.canonical_bytes()
            )
        reference, _ = bystander_reference
        bystander = manager.tenant(BYSTANDER)
        assert bystander.server.versions.current.version_id == (
            reference.version_id
        )
