"""Chaos tests for the segment store: crashes cannot tear a segment.

The contract under test: a crash injected at any durability phase of a
flush or compaction (before the temp write, before the segment rename,
before the manifest rename, after the manifest but before the
in-memory commit) leaves the directory recoverable at exactly the
previous-or-new flush point — reopening never sees a torn segment,
never loses durable claims, and a retry after the fault converges to
the same state a fault-free run produces.
"""

import pytest

from repro.faults import FaultPlan, InjectedFault
from repro.rdf.segments import SegmentBackend
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


def claim(subject, predicate, value, source="src", extractor="ex",
          conf=1.0):
    return ScoredTriple(
        Triple(subject, predicate, Value(value)),
        Provenance(source, extractor),
        conf,
    )


CORPUS = [
    claim(f"s{i % 7}", f"p{i % 3}", f"v{i}", source=f"src{i % 5}",
          conf=0.5 + (i % 10) / 20)
    for i in range(40)
]


def _reopen(directory):
    return TripleStore(SegmentBackend(directory))


class TestFlushCrashes:
    @pytest.mark.parametrize("phase", [0, 1, 2, 3])
    def test_reopen_is_pre_or_post_flush_never_torn(self, tmp_path, phase):
        directory = tmp_path / "s"
        baseline = TripleStore(SegmentBackend(directory, memtable_limit=100))
        baseline.add_all(CORPUS[:20])
        baseline.flush()
        pre = baseline.claims()
        baseline.close()

        plan = FaultPlan(seed=7).crash("storage:flush", index=phase)
        backend = SegmentBackend(
            directory, memtable_limit=100, fault_plan=plan
        )
        store = TripleStore(backend)
        store.add_all(CORPUS[20:])
        post = store.claims()
        with pytest.raises(InjectedFault):
            store.flush()

        # The crashed writer's in-memory view is still fully correct.
        assert store.claims() == post

        # Disk is at exactly the previous or the new flush point.
        recovered = _reopen(directory).claims()
        if phase < 3:
            assert recovered == pre  # manifest never landed
        else:
            assert recovered == post  # manifest landed; commit didn't

        # A retry with the transient fault gone converges to the
        # fault-free outcome, with no duplicated rows from the
        # half-finished attempt.
        backend.fault_plan = None
        store.flush()
        assert store.claims() == post
        assert _reopen(directory).claims() == post

    def test_auto_flush_crash_surfaces_but_store_stays_usable(
        self, tmp_path
    ):
        plan = FaultPlan(seed=7).crash("storage:flush", index=0)
        backend = SegmentBackend(
            tmp_path / "s", memtable_limit=5, fault_plan=plan
        )
        store = TripleStore(backend)
        with pytest.raises(InjectedFault):
            store.add_all(CORPUS)
        # Whatever made it in is still queryable and internally
        # consistent.
        assert len(store) == len(store.claims())
        backend.fault_plan = None
        remaining = [
            scored for scored in CORPUS
            if scored not in store.claims()
        ]
        store.add_all(remaining)
        store.flush()
        reference = TripleStore()
        reference.add_all(CORPUS)
        assert _reopen(tmp_path / "s").claims() == reference.claims()


class TestCompactionCrashes:
    @pytest.mark.parametrize("phase", [0, 1, 2, 3])
    def test_content_is_invariant_across_crash_points(self, tmp_path, phase):
        directory = tmp_path / "s"
        plan = FaultPlan(seed=7).crash("storage:compaction", index=phase)
        backend = SegmentBackend(
            directory,
            memtable_limit=5,
            compact_threshold=100,  # keep auto-compaction out of the way
            fault_plan=plan,
        )
        store = TripleStore(backend)
        store.add_all(CORPUS)
        assert store.remove(CORPUS[0].triple) == 1
        store.flush()
        expected = store.claims()
        n_segments_before = len(backend.segment_readers())
        assert n_segments_before > 1

        with pytest.raises(InjectedFault):
            store.compact()

        # Compaction never changes logical content, so every crash
        # point must recover to the same claims — only the physical
        # layout (old segments vs one canonical segment) may differ.
        assert store.claims() == expected
        assert _reopen(directory).claims() == expected

        backend.fault_plan = None
        store.compact()
        assert store.claims() == expected
        assert len(backend.segment_readers()) == 1
        assert backend.segment_readers()[0].canonical
        assert _reopen(directory).claims() == expected

    def test_crashed_compaction_leaves_no_referenced_garbage(
        self, tmp_path
    ):
        directory = tmp_path / "s"
        plan = FaultPlan(seed=7).crash("storage:compaction", index=2)
        backend = SegmentBackend(
            directory, memtable_limit=5, compact_threshold=100,
            fault_plan=plan,
        )
        store = TripleStore(backend)
        store.add_all(CORPUS)
        store.flush()
        with pytest.raises(InjectedFault):
            store.compact()
        # The abandoned canonical segment is unreferenced; open-time
        # recovery sweeps it and every temp file.
        reopened_backend = SegmentBackend(directory)
        on_disk = {path.name for path in directory.glob("seg-*")}
        referenced = {
            path.name for path in reopened_backend.segment_paths()
        }
        assert on_disk == referenced
        assert list(directory.glob("*.tmp")) == []


class TestFaultFreeEquivalence:
    @pytest.mark.parametrize("phase", [0, 1, 2, 3])
    def test_survived_schedule_matches_fault_free_bytes(
        self, tmp_path, phase
    ):
        """A run that retries through a crash ends byte-identical (via
        claims equality, which pins the fusion input) to a run that
        never faulted."""
        clean = TripleStore(
            SegmentBackend(tmp_path / "clean", memtable_limit=100)
        )
        clean.add_all(CORPUS)
        clean.flush()

        plan = FaultPlan(seed=7).crash("storage:flush", index=phase)
        backend = SegmentBackend(
            tmp_path / "chaos", memtable_limit=100, fault_plan=plan
        )
        chaotic = TripleStore(backend)
        chaotic.add_all(CORPUS)
        with pytest.raises(InjectedFault):
            chaotic.flush()
        backend.fault_plan = None
        chaotic.flush()

        assert chaotic.claims() == clean.claims()
        assert (
            _reopen(tmp_path / "chaos").claims()
            == _reopen(tmp_path / "clean").claims()
        )
