"""Chaos tests for the end-to-end pipeline's fault-tolerance layer.

The acceptance contract, verified against a real (small) world:

* a seeded fault plan with a map-partition crash and a corrupted input
  record, run with retries + quarantine enabled, completes with output
  byte-identical to the fault-free run;
* the same plan with retries disabled raises RetryExhaustedError;
* a crashed extractor degrades its source and fusion proceeds with the
  rest — unless fewer than ``min_sources`` survive (PipelineError);
* a run that crashes mid-pipeline resumes from its checkpoints,
  skipping completed stages, with identical fused output; a changed
  seed invalidates the checkpoints.

The corrupted record targets a noise query (``gold_class is None``), so
quarantining it must not change a single claim — which is exactly what
makes byte-identity checkable.
"""

import json

import pytest

from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.errors import PipelineError, RetryExhaustedError
from repro.faults import FaultPlan, InjectedFault
from repro.mapreduce.engine import RetryPolicy
from repro.synth.querylog import QueryLogConfig, generate_query_log
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig
from repro.synth.world import WorldConfig


def _config(**overrides) -> PipelineConfig:
    return PipelineConfig(
        world=WorldConfig(
            entities_per_class={
                "Book": 15, "Film": 15, "Country": 12,
                "University": 12, "Hotel": 10,
            }
        ),
        querylog=QueryLogConfig(seed=17, scale=0.0005),
        websites=WebsiteConfig(sites_per_class=2, pages_per_site=6),
        webtext=WebTextConfig(sources_per_class=2, documents_per_source=6),
        **overrides,
    )


def _claim_signature(pipeline):
    return sorted(
        (claim.item, claim.value, claim.source_id, claim.extractor_id,
         claim.confidence)
        for claim in pipeline.claims
    )


def _fused_signature(report):
    result = report.fusion_result
    return (
        {item: sorted(values) for item, values in result.truths.items()},
        result.belief,
    )


@pytest.fixture(scope="module")
def baseline():
    pipeline = KnowledgeBaseConstructionPipeline(_config())
    report = pipeline.run()
    return pipeline, report


@pytest.fixture(scope="module")
def noise_record_index(baseline):
    """Index of the first noise query record (contributes no claims)."""
    pipeline, _ = baseline
    log = generate_query_log(pipeline.world, _config().querylog)
    return next(
        i for i, record in enumerate(log) if record.gold_class is None
    )


def _chaos_plan(noise_index: int) -> FaultPlan:
    # >= 1 map-partition crash (transient, in the sharded-fusion job)
    # and >= 1 corrupted input record, per the acceptance scenario.
    return (
        FaultPlan(seed=11)
        .corrupt("records:querystream", index=noise_index)
        .crash("map", index=0, attempts=1)
    )


class TestByteIdenticalChaosRun:
    @pytest.fixture(scope="class")
    def chaotic(self, noise_record_index):
        config = _config(
            fault_plan=_chaos_plan(noise_record_index),
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fusion_parallelism=2,
            fusion_executor="serial",
        )
        pipeline = KnowledgeBaseConstructionPipeline(config)
        report = pipeline.run()
        return pipeline, report

    def test_output_is_byte_identical_to_fault_free_run(
        self, baseline, chaotic
    ):
        base_pipeline, base_report = baseline
        chaos_pipeline, chaos_report = chaotic
        assert _claim_signature(chaos_pipeline) == _claim_signature(
            base_pipeline
        )
        assert _fused_signature(chaos_report) == _fused_signature(
            base_report
        )

    def test_faults_were_actually_exercised(self, chaotic):
        _, report = chaotic
        health = report.health
        assert health.quarantined["total"] == 1
        assert health.quarantined["counts"] == {"querystream": 1}
        assert health.retry["retries"] >= 1
        assert health.status == "ok"  # no stage degraded, just retried

    def test_same_seed_chaos_runs_are_identical(
        self, chaotic, noise_record_index
    ):
        # Determinism double-run: a second run under the same fault
        # plan reproduces the deterministic report subset exactly.
        config = _config(
            fault_plan=_chaos_plan(noise_record_index),
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fusion_parallelism=2,
            fusion_executor="serial",
        )
        rerun = KnowledgeBaseConstructionPipeline(config)
        rerun_report = rerun.run()
        first_pipeline, first_report = chaotic
        assert _claim_signature(rerun) == _claim_signature(first_pipeline)
        first_json = first_report.to_json_dict()
        rerun_json = rerun_report.to_json_dict()
        for key in (
            "seed_sizes", "attribute_counts", "triple_counts",
            "fused_items", "health",
        ):
            assert rerun_json[key] == first_json[key]
        # The count-type metrics (retry/quarantine/fusion counters
        # included) must also be byte-identical under chaos; only the
        # *_seconds metrics may differ between the runs.
        assert json.dumps(
            rerun_report.metrics.deterministic_subset(), sort_keys=True
        ) == json.dumps(
            first_report.metrics.deterministic_subset(), sort_keys=True
        )
        assert (
            rerun_report.metrics.counters["mapreduce_retries_total"] >= 1
        )

    def test_same_plan_without_retries_is_fatal(self, noise_record_index):
        config = _config(
            fault_plan=_chaos_plan(noise_record_index),
            fusion_parallelism=2,
            fusion_executor="serial",
        )
        with pytest.raises(RetryExhaustedError):
            KnowledgeBaseConstructionPipeline(config).run()


class TestGracefulDegradation:
    def test_crashed_extractor_degrades_and_fusion_continues(self):
        plan = FaultPlan(seed=7).crash(
            "stage:webtext-extraction", attempts=0
        )
        pipeline = KnowledgeBaseConstructionPipeline(
            _config(fault_plan=plan)
        )
        report = pipeline.run()
        health = report.health
        assert health.status == "degraded"
        assert "webtext-extraction" in health.degraded
        assert health.active_sources == ["dom", "kb", "querystream"]
        assert report.fusion_result is not None
        assert report.fusion_report is not None
        assert "webtext" not in report.triple_counts

    def test_slow_stage_times_out_deterministically(self):
        # 99 injected seconds against a 5s deadline — degraded via the
        # reported duration, without any real waiting.
        plan = FaultPlan(seed=7).slow(
            "stage:dom-extraction", seconds=99.0, attempts=0
        )
        pipeline = KnowledgeBaseConstructionPipeline(
            _config(fault_plan=plan, stage_timeout=5.0)
        )
        report = pipeline.run()
        assert "dom-extraction" in report.health.degraded
        assert "StageTimeoutError" in report.health.degraded[
            "dom-extraction"
        ]

    def test_below_min_sources_floor_raises(self):
        plan = (
            FaultPlan(seed=7)
            .crash("stage:kb-extraction", attempts=0)
            .crash("stage:query-stream", attempts=0)
            .crash("stage:dom-extraction", attempts=0)
        )
        config = _config(fault_plan=plan, min_sources=2)
        with pytest.raises(PipelineError, match="min_sources"):
            KnowledgeBaseConstructionPipeline(config).run()


class TestCheckpointResume:
    def test_resume_after_mid_pipeline_crash_skips_stages(
        self, baseline, tmp_path
    ):
        crash_config = _config(
            fault_plan=FaultPlan(seed=3).crash("stage:fusion", attempts=0),
            checkpoint_dir=str(tmp_path),
        )
        with pytest.raises(InjectedFault):
            KnowledgeBaseConstructionPipeline(crash_config).run()

        resumed = KnowledgeBaseConstructionPipeline(
            _config(checkpoint_dir=str(tmp_path))
        )
        report = resumed.run(resume=True)
        assert report.health.resumed_stages == ["extraction", "claims"]
        # Extraction stages were skipped: no extraction timings.
        assert [t.stage for t in report.timings] == [
            "fusion", "evaluation", "augmentation",
        ]
        base_pipeline, base_report = baseline
        assert _claim_signature(resumed) == _claim_signature(base_pipeline)
        assert _fused_signature(report) == _fused_signature(base_report)

    def test_changed_seed_invalidates_checkpoints(self, tmp_path):
        first = _config(checkpoint_dir=str(tmp_path))
        KnowledgeBaseConstructionPipeline(first).run()

        reseeded = _config(checkpoint_dir=str(tmp_path))
        reseeded.world = WorldConfig(
            seed=99,
            entities_per_class={
                "Book": 15, "Film": 15, "Country": 12,
                "University": 12, "Hotel": 10,
            },
        )
        report = KnowledgeBaseConstructionPipeline(reseeded).run(
            resume=True
        )
        assert report.health.resumed_stages == []

    def test_degraded_runs_never_write_checkpoints(self, tmp_path):
        plan = FaultPlan(seed=7).crash(
            "stage:webtext-extraction", attempts=0
        )
        config = _config(fault_plan=plan, checkpoint_dir=str(tmp_path))
        KnowledgeBaseConstructionPipeline(config).run()
        assert list(tmp_path.iterdir()) == []
