"""Chaos tests: the serving layer under crashed, retried, poisoned ingest.

The contract under test, at every ``stream:*`` crash point and the
engine-internal ``stage:incremental-*`` ones:

* **no torn reads** — a reader only ever observes a committed
  :class:`~repro.serving.version.KBVersion`; a crash mid-step leaves
  reads byte-identical to the last commit;
* **exactly-once effects** — redelivery after any crash applies every
  delta's effects exactly once, and the healed end state is
  byte-identical to a fault-free run of the same stream;
* **degrade, don't stop** — a poison delta is parked in the
  dead-letter hold and serving continues (stale, flagged degraded)
  from the last good version.

All faults come from seeded :class:`~repro.faults.FaultPlan`
schedules; nothing here sleeps or depends on wall time.
"""

import pytest

from repro.errors import BackpressureError
from repro.faults import FaultPlan, InjectedFault
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.incremental import canonical_claims
from repro.mapreduce.engine import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.rdf.store import TripleStore
from repro.serving.server import KBServer
from repro.serving.stream import EventLog
from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.deltas import (
    DeltaStreamConfig,
    generate_delta_stream,
    scored_from_claims,
)

# Consumer crash points outside the retried apply loop: step() raises
# and the served state must be a committed version at each of them.
CONSUMER_CRASH_SCOPES = [
    "stream:deliver", "stream:commit", "stream:post-commit",
]


def world():
    corpus = scored_from_claims(
        generate_claim_world(
            ClaimWorldConfig(seed=17, n_items=10, n_sources=4)
        ).claims
    )
    return generate_delta_stream(
        corpus, DeltaStreamConfig(seed=17, parts=3)
    )


def make_server(
    *,
    stream_plan=None,
    engine_plan=None,
    retry=None,
    capacity=1024,
    metrics=None,
):
    base, deltas = world()
    store = TripleStore()
    store.add_all(base)
    engine = KnowledgeFusion(
        tolerance=0.0, max_iterations=8, fault_plan=engine_plan
    ).begin_incremental(store)
    server = KBServer(
        engine,
        EventLog(capacity, metrics=metrics),
        retry=retry or RetryPolicy(max_attempts=3, backoff_base=0.0),
        fault_plan=stream_plan,
        metrics=metrics,
    )
    return server, deltas


def reference_bytes():
    """Canonical verdict bytes of a fault-free run of the same stream."""
    server, deltas = make_server()
    for delta in deltas:
        server.publish(delta)
    outcomes = server.drain()
    assert all(outcome.action == "applied" for outcome in outcomes)
    return server.versions.current.canonical_bytes()


REFERENCE = reference_bytes()


class TestConsumerCrashes:
    @pytest.mark.parametrize("scope", CONSUMER_CRASH_SCOPES)
    def test_crash_leaves_reads_on_a_committed_version(self, scope):
        plan = FaultPlan(seed=5).crash(scope, index=1)
        server, deltas = make_server(stream_plan=plan)
        for delta in deltas:
            server.publish(delta)

        assert server.step().action == "applied"  # offset 0 is clean
        committed = server.versions.current
        committed_bytes = committed.canonical_bytes()
        reader_before = server.reader()

        with pytest.raises(InjectedFault):
            server.step()  # crash at offset 1, inside `scope`

        # No torn reads: the served version is a committed one, and a
        # reader pinned before the crash still answers identically.
        current = server.versions.current
        assert current.version_id in (
            committed.version_id,      # crash before the rebind
            committed.version_id + 1,  # crash after the rebind
        )
        assert reader_before.version.canonical_bytes() == committed_bytes
        # The version/offset/fence are one atomic unit: whatever
        # committed is internally consistent.
        assert len(current.applied) == current.version_id

    @pytest.mark.parametrize("scope", CONSUMER_CRASH_SCOPES)
    def test_healed_drain_is_byte_identical_to_fault_free(self, scope):
        plan = FaultPlan(seed=5).crash(scope, index=1)
        server, deltas = make_server(stream_plan=plan)
        for delta in deltas:
            server.publish(delta)

        with pytest.raises(InjectedFault):
            server.drain()

        # The crash was transient infrastructure; restartable without it.
        server.fault_plan = None
        outcomes = server.drain()
        assert outcomes  # redelivery resumed from the committed offset

        status = server.status()
        assert status.lag_events == 0
        assert not status.degraded
        # Every delta applied exactly once, whether the crashed event
        # was re-applied (pre-commit crash) or fence-skipped
        # (post-commit crash).
        assert status.applied_events == len(deltas)
        assert server.versions.current.canonical_bytes() == REFERENCE

    def test_post_commit_crash_redelivery_hits_the_fence(self):
        plan = FaultPlan(seed=5).crash("stream:post-commit", index=1)
        server, deltas = make_server(stream_plan=plan)
        for delta in deltas:
            server.publish(delta)
        with pytest.raises(InjectedFault):
            server.drain()
        server.fault_plan = None
        actions = [outcome.action for outcome in server.drain()]
        # Offset 1 committed before the crash -> redelivered -> skipped.
        assert actions == ["skipped", "applied"]
        assert server.versions.current.canonical_bytes() == REFERENCE

    def test_commit_crash_redelivery_reapplies_idempotently(self):
        plan = FaultPlan(seed=5).crash("stream:commit", index=1)
        server, deltas = make_server(stream_plan=plan)
        for delta in deltas:
            server.publish(delta)
        with pytest.raises(InjectedFault):
            server.drain()
        # The engine applied the delta but the version never committed.
        assert server.engine.sequence == 2
        assert server.versions.current.version_id == 1
        server.fault_plan = None
        actions = [outcome.action for outcome in server.drain()]
        # Redelivery misses the fence and re-applies; content
        # idempotence makes the double engine-apply harmless.
        assert actions == ["applied", "applied"]
        assert server.versions.current.canonical_bytes() == REFERENCE


class TestApplyRetries:
    def test_transient_apply_crash_is_retried_with_backoff(self):
        sleeps = []
        plan = FaultPlan(seed=5).crash("stream:apply", index=1, attempts=2)
        server, deltas = make_server(
            stream_plan=plan,
            retry=RetryPolicy(
                max_attempts=3, backoff_base=0.5, sleep=sleeps.append
            ),
        )
        for delta in deltas:
            server.publish(delta)
        outcomes = server.drain()
        assert [outcome.action for outcome in outcomes] == ["applied"] * 3
        assert outcomes[1].attempts == 3
        assert sleeps == [0.5, 1.0]  # deterministic, fake-timed
        assert server.versions.current.canonical_bytes() == REFERENCE

    @pytest.mark.parametrize(
        "scope", ["stage:incremental-journal", "stage:incremental-fusion"]
    )
    def test_engine_internal_pre_commit_crash_is_retried(self, scope):
        # Engine-internal faults are not attempt-aware, so model a
        # transient one the way it really happens: the infrastructure
        # recovers while the consumer backs off before its retry.
        server, deltas = make_server(
            engine_plan=FaultPlan(seed=5).crash(scope)
        )

        def heal(_seconds):
            server.engine.fault_plan = None

        server.retry = RetryPolicy(
            max_attempts=3, backoff_base=0.0, sleep=heal
        )
        for delta in deltas:
            server.publish(delta)
        outcomes = server.drain()
        assert [outcome.action for outcome in outcomes] == ["applied"] * 3
        assert outcomes[0].attempts == 2  # first apply crashed, retried
        assert server.versions.current.canonical_bytes() == REFERENCE

    def test_engine_commit_crash_is_detected_not_reapplied(self):
        # The engine's own post-commit crash: apply_delta raises *after*
        # its internal commit.  Re-applying would double the delta; the
        # sequence check must treat it as applied instead.
        plan = FaultPlan(seed=5).crash("stage:incremental-commit")
        server, deltas = make_server(engine_plan=plan)
        for delta in deltas:
            server.publish(delta)
        outcomes = server.drain()
        assert [outcome.action for outcome in outcomes] == ["applied"] * 3
        assert outcomes[0].attempts == 1
        assert server.engine.sequence == 3  # one apply per delta
        assert server.versions.current.canonical_bytes() == REFERENCE


class TestPoisonDeltas:
    def plan_for_last(self, deltas):
        # Permanent crash (attempts=0) pinned to the last event offset.
        return FaultPlan(seed=5).crash(
            "stream:apply", index=len(deltas) - 1, attempts=0
        )

    def test_poison_degrades_serving_without_stopping_it(self):
        metrics = MetricsRegistry()
        server, deltas = make_server(metrics=metrics)
        server.fault_plan = self.plan_for_last(deltas)
        for delta in deltas:
            server.publish(delta)
        outcomes = server.drain()

        assert [outcome.action for outcome in outcomes] == [
            "applied", "applied", "poisoned",
        ]
        assert outcomes[-1].error is not None
        status = server.status()
        assert status.degraded
        assert status.poisoned == 1
        assert status.quarantined_held == 1
        assert status.lag_events == 0  # the consumer moved past it
        # Reads keep answering from the last good KB content.
        good = server.engine.result.canonical_bytes()
        assert server.reader().version.canonical_bytes() == good
        assert metrics.gauge("serving_degraded").value == 1.0
        assert (
            metrics.counter("stream_events_poisoned_total").value == 1
        )

    def test_requeue_applies_exactly_once_and_heals(self):
        server, deltas = make_server()
        server.fault_plan = self.plan_for_last(deltas)
        for delta in deltas:
            server.publish(delta)
        server.drain()

        server.fault_plan = None  # the poison cause is gone
        requeued = server.requeue_quarantined()
        assert len(requeued) == 1
        # Derived id: the original is fenced and would be skipped.
        assert requeued[0].event_id.endswith("#requeue")
        outcomes = server.drain()
        assert [outcome.action for outcome in outcomes] == ["applied"]

        status = server.status()
        assert not status.degraded
        assert status.quarantined_held == 0
        assert server.versions.current.canonical_bytes() == REFERENCE
        # The dead-letter drain is exactly-once: nothing left to requeue.
        assert server.requeue_quarantined() == []


class TestDeliveryDuplicates:
    def test_duplicate_publish_is_applied_exactly_once(self):
        server, deltas = make_server()
        for delta in deltas:
            server.publish(delta)
        server.publish(deltas[1])  # producer retry: same content id
        actions = [outcome.action for outcome in server.drain()]
        assert actions == ["applied", "applied", "applied", "skipped"]
        assert server.engine.sequence == len(deltas)
        assert server.versions.current.canonical_bytes() == REFERENCE


class TestBackpressure:
    def test_lagging_consumer_sheds_load_then_recovers(self):
        server, deltas = make_server(capacity=2)
        server.publish(deltas[0])
        server.publish(deltas[1])
        with pytest.raises(BackpressureError) as excinfo:
            server.publish(deltas[2])
        assert excinfo.value.reason == "consumer-lag"
        assert server.step().action == "applied"  # consumer progresses
        server.publish(deltas[2])  # accepted now
        server.drain()
        assert server.versions.current.canonical_bytes() == REFERENCE


class TestSnapshotIsolation:
    def test_pinned_reader_is_immune_to_concurrent_commits(self):
        server, deltas = make_server()
        for delta in deltas:
            server.publish(delta)
        stale = server.reader()
        stale_bytes = stale.version.canonical_bytes()
        stale_top = stale.top_entities(5)

        server.drain()

        # The old pin still answers from version 0, bit for bit.
        assert stale.version.version_id == 0
        assert stale.version.canonical_bytes() == stale_bytes
        assert stale.top_entities(5) == stale_top
        # A fresh reader sees the new head.
        fresh = server.reader()
        assert fresh.version.version_id == len(deltas)
        assert fresh.version.canonical_bytes() == REFERENCE


class TestDeterminism:
    def test_identical_fault_schedules_converge_identically(self):
        runs = []
        for _ in range(2):
            plan = (
                FaultPlan(seed=9)
                .crash("stream:apply", index=0, attempts=1)
                .crash("stream:post-commit", index=2)
            )
            server, deltas = make_server(stream_plan=plan)
            for delta in deltas:
                server.publish(delta)
            with pytest.raises(InjectedFault):
                server.drain()
            server.fault_plan = None
            actions = [outcome.action for outcome in server.drain()]
            runs.append(
                (actions, server.versions.current.canonical_bytes())
            )
        assert runs[0] == runs[1]
        assert runs[0][1] == REFERENCE


class TestRequeueBackpressure:
    def test_requeue_under_backpressure_loses_no_delta(self):
        # Regression: requeue_quarantined() used to pop the dead-letter
        # hold *before* publishing; a mid-loop BackpressureError
        # silently lost the failed delta and everything behind it.
        metrics = MetricsRegistry()
        server, deltas = make_server(capacity=2, metrics=metrics)
        server.fault_plan = FaultPlan(seed=5).crash(
            "stream:apply", index=0, attempts=0
        )
        server.publish(deltas[0])
        server.publish(deltas[1])
        assert server.step().action == "poisoned"  # delta 0 parked
        server.fault_plan = None

        server.publish(deltas[2])  # backlog == capacity: log is full
        with pytest.raises(BackpressureError):
            server.requeue_quarantined()

        # The unpublished delta is back in the hold, not vanished.
        assert server.status().quarantined_held == 1
        assert (
            metrics.counter("stream_requeue_deferred_total").value == 1
        )
        assert metrics.counter("stream_requeued_total").value == 0

        server.drain()  # consumer catches up, relieving backpressure
        requeued = server.requeue_quarantined()
        assert len(requeued) == 1
        assert requeued[0].delta.label == deltas[0].label
        assert [o.action for o in server.drain()] == ["applied"]
        status = server.status()
        assert status.quarantined_held == 0
        assert status.lag_events == 0

    def test_deferred_tail_preserves_order(self):
        # Two parked deltas, room for neither: both must survive a
        # shed requeue in their original order.
        server, deltas = make_server(capacity=2)
        server.fault_plan = (
            FaultPlan(seed=5)
            .crash("stream:apply", index=0, attempts=0)
            .crash("stream:apply", index=1, attempts=0)
        )
        server.publish(deltas[0])
        server.publish(deltas[1])
        assert [o.action for o in server.drain()] == [
            "poisoned", "poisoned",
        ]
        server.fault_plan = None

        server.publish(deltas[2])
        server.publish(deltas[0])  # duplicate content: fills the log
        with pytest.raises(BackpressureError):
            server.requeue_quarantined()
        held = server.quarantine.held_items("stream")
        assert [event.offset for _s, _r, event in held] == [0, 1]


class TestCompaction:
    def test_drain_bytes_identical_before_and_after_compaction(self):
        # capacity=1 forces a compaction after every commit; the
        # served verdicts must be byte-identical to the uncompacted
        # reference run.
        for capacity in (1, 2, 1024):
            server, deltas = make_server(capacity=capacity)
            for delta in deltas:
                server.publish(delta)
                outcomes = server.drain()
                assert all(o.action == "applied" for o in outcomes)
            if capacity < len(deltas):
                assert server.log.base > 0  # compaction really ran
            assert server.versions.current.canonical_bytes() == REFERENCE
            assert server.status().applied_events == len(deltas)

    def test_fence_ages_to_ids_the_log_still_retains(self):
        # Without aging the fence grows one id per event forever; with
        # it, ids whose every occurrence compacted away are dropped —
        # they can never be delivered again.
        server, deltas = make_server(capacity=1)
        for delta in deltas:
            server.publish(delta)
            server.drain()
        current = server.versions.current
        assert current.version_id == len(deltas)
        # Each step ages everything the previous compactions dropped,
        # then fences the event it just applied — at capacity=1 that
        # leaves exactly one id, not one per event forever.  (Aging is
        # lazy: the newest id survives until the *next* step even
        # though its own commit already compacted it.)
        assert len(current.applied) == 1
        # The lifetime statistic survives aging.
        assert server.status().applied_events == len(deltas)

    def test_redelivery_before_compaction_still_hits_the_fence(self):
        # Aging must never drop an id the log can still deliver: a
        # post-commit crash leaves the event retained (uncommitted),
        # so redelivery finds it fenced even at capacity=1.
        plan = FaultPlan(seed=5).crash("stream:post-commit", index=1)
        server, deltas = make_server(stream_plan=plan, capacity=1)
        server.publish(deltas[0])
        server.drain()
        server.publish(deltas[1])
        with pytest.raises(InjectedFault):
            server.step()
        server.fault_plan = None
        assert [o.action for o in server.drain()] == ["skipped"]
        server.publish(deltas[2])
        server.drain()
        assert server.versions.current.canonical_bytes() == REFERENCE
