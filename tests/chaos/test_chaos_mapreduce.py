"""Chaos tests for the MapReduce engine: crashes cannot change output.

The contract under test: a job configured with a retry policy produces
*byte-identical* output under any injected-fault schedule it survives,
on either executor — fault tolerance must never become a source of
nondeterminism.
"""

import pytest

from repro.errors import RetryExhaustedError
from repro.faults import FaultPlan
from repro.mapreduce.engine import MapReduceJob, RetryPolicy
from repro.mapreduce.jobs import mr_accu
from repro.fusion.base import Claim, ClaimSet

RECORDS = [f"record-{i % 7}" for i in range(53)]


def _mapper(record):
    yield record, 1


def _reducer(key, values):
    yield key, sum(values)


def _chaos_plan() -> FaultPlan:
    # One map-partition crash, one reduce-chunk crash, one slow map
    # task: every guarded code path fires in one run.
    return (
        FaultPlan(seed=13)
        .crash("map", index=1, attempts=1)
        .crash("reduce", index=0, attempts=1)
        .slow("map", seconds=0.001, index=2, attempts=1)
    )


def _run(executor: str, fault_plan: FaultPlan | None):
    job = MapReduceJob(
        _mapper,
        _reducer,
        partitions=4,
        executor=executor,
        max_workers=2 if executor == "process" else None,
        retry=(
            RetryPolicy(max_attempts=3, backoff_base=0.0)
            if fault_plan is not None
            else None
        ),
        fault_plan=fault_plan,
    )
    return job.run(RECORDS), job.stats


class TestByteIdenticalUnderFaults:
    def test_serial_output_identical_to_fault_free_run(self):
        clean, _ = _run("serial", None)
        chaotic, stats = _run("serial", _chaos_plan())
        assert chaotic == clean
        assert stats.retries == 2

    def test_process_output_identical_to_fault_free_run(self):
        clean, _ = _run("serial", None)
        chaotic, stats = _run("process", _chaos_plan())
        assert chaotic == clean
        assert stats.retries == 2

    def test_two_chaos_runs_are_identical(self):
        # Determinism of the fault schedule itself: same seed, same
        # plan, same stats, same output.
        first, first_stats = _run("serial", _chaos_plan())
        second, second_stats = _run("serial", _chaos_plan())
        assert first == second
        assert first_stats == second_stats

    def test_without_retries_the_same_plan_is_fatal(self):
        with pytest.raises(RetryExhaustedError):
            _run("serial", _chaos_plan().crash("map", index=3, attempts=0))
        job = MapReduceJob(
            _mapper, _reducer, partitions=4, fault_plan=_chaos_plan()
        )
        with pytest.raises(RetryExhaustedError):
            job.run(RECORDS)


class TestIterativeJobUnderFaults:
    def _claims(self) -> ClaimSet:
        claims = ClaimSet()
        truth = {"e1": "a", "e2": "b", "e3": "a"}
        for source, accuracy_tier in (("s1", 0), ("s2", 0), ("s3", 1)):
            for entity, value in truth.items():
                claimed = value if accuracy_tier == 0 else "z"
                claims.add(
                    Claim((entity, "p"), claimed, claimed, source, "ext")
                )
        return claims

    def test_mr_accu_rounds_survive_transient_crashes(self):
        claims = self._claims()
        clean = mr_accu(claims, rounds=4)
        chaotic = mr_accu(
            claims,
            rounds=4,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fault_plan=FaultPlan(seed=3).crash("map", index=0, attempts=1),
        )
        assert chaotic.truths == clean.truths
        assert chaotic.belief == clean.belief
        assert chaotic.source_quality == clean.source_quality
