"""Chaos tests: drifting truth served through a crashing stream.

The drift-specific contract: when ingest crashes mid-epoch, serving
stays on the last *committed* KB version, and the freshness metrics
computed for that version are honest — they report the served
version's real epoch (``version.version_id``), so the staleness lag is
the true number of epochs the served KB is behind, not zero.  Healing
(re-draining) converges to the byte-identical fault-free end state.

All faults come from seeded :class:`~repro.faults.FaultPlan`
schedules; nothing here sleeps or depends on wall time.
"""

import pytest

from repro.errors import GenerationError
from repro.evalx.freshness import freshness_report
from repro.faults import FaultPlan, InjectedFault
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.mapreduce.engine import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.rdf.store import TripleStore
from repro.serving.server import KBServer
from repro.serving.stream import EventLog
from repro.synth.drift import DriftConfig, DriftingWorld

CONFIG = DriftConfig(seed=11, n_items=16, n_sources=5, epochs=4)


def make_server(world, *, stream_plan=None, metrics=None):
    store = TripleStore()
    store.add_all(world.base)
    engine = KnowledgeFusion(
        tolerance=0.0, max_iterations=8
    ).begin_incremental(store)
    return KBServer(
        engine,
        EventLog(1024, metrics=metrics),
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        fault_plan=stream_plan,
        metrics=metrics,
    )


def fault_free_bytes(world):
    server = make_server(world)
    for delta in world.deltas():
        server.publish(delta)
    server.drain()
    return server.versions.current.result.canonical_bytes()


@pytest.mark.parametrize("crash_after", [1, 2])
def test_crash_mid_epoch_serves_committed_version_with_honest_lag(
    crash_after,
):
    world = DriftingWorld(CONFIG)
    # Crash the commit of epoch (crash_after + 1): the first
    # crash_after epochs commit, the next one dies mid-step.
    plan = FaultPlan(seed=5).crash("stream:commit", index=crash_after)
    server = make_server(world, stream_plan=plan)
    for delta in world.deltas():
        server.publish(delta)
    with pytest.raises(InjectedFault):
        server.drain()

    version = server.versions.current
    # Serving sits on the last committed version: exactly crash_after
    # epoch deltas are reflected, nothing torn.  (version_id counts
    # committed deltas; the engine-side sequence can overshoot when an
    # apply succeeded but its commit crashed.)
    assert version.version_id == crash_after
    assert len(version.applied) == crash_after

    # Freshness metrics must report the served epoch, not the
    # published head — the staleness lag is real.
    published = world.current_epoch
    fresh = freshness_report(
        version.result.truths,
        served_epoch=version.version_id,
        current_epoch=published,
        served_truth=world.truth_at(version.version_id),
        current_truth=world.truth_at(published),
    )
    assert fresh.lag_epochs == published - crash_after
    # The committed version is its own epoch's fusion output: scoring
    # it against the drifted current truth must be measurably worse
    # than against the truth of the epoch it actually reflects.
    assert fresh.vs_current.f1 < fresh.vs_served.f1
    assert fresh.stale_items > 0

    # Healing: the crash was transient infrastructure, so the
    # remaining epochs redeliver and the end state is byte-identical
    # to a fault-free run of the same stream.
    server.fault_plan = None
    server.drain()
    assert server.versions.current.version_id == world.current_epoch
    assert (
        server.versions.current.result.canonical_bytes()
        == fault_free_bytes(DriftingWorld(CONFIG))
    )


def test_reader_pinned_before_crash_is_unaffected():
    world = DriftingWorld(CONFIG)
    plan = FaultPlan(seed=9).crash("stream:commit", index=1)
    server = make_server(world, stream_plan=plan)
    for delta in world.deltas():
        server.publish(delta)
    with pytest.raises(InjectedFault):
        server.drain()
    reader = server.reader()  # pins the committed version (epoch 1)
    before = reader.version.result.canonical_bytes()
    server.fault_plan = None
    server.drain()  # heal to the stream head
    assert reader.version.result.canonical_bytes() == before
    assert server.versions.current.version_id > reader.version.version_id


def test_drift_metrics_survive_crash(tmp_path):
    """drift_* metrics published before a crash stay in the registry."""
    world = DriftingWorld(CONFIG)
    metrics = MetricsRegistry()
    plan = FaultPlan(seed=3).crash("stream:commit", index=0)
    server = make_server(world, stream_plan=plan, metrics=metrics)
    for index, epoch in enumerate(world.epochs, start=1):
        metrics.counter("drift_epochs_total").inc()
        server.publish(epoch.delta)
    with pytest.raises(InjectedFault):
        server.drain()
    snapshot = metrics.snapshot().to_json_dict()
    assert snapshot["counters"]["drift_epochs_total"] == world.current_epoch
    # The event log knows more epochs were published than committed.
    assert server.status().lag_events > 0


def test_mutation_rates_that_would_empty_the_store_are_rejected():
    # Seed 3 re-observes the only (changed) item with no coverage hit:
    # the epoch delta would leave the claim store empty, which the
    # generator refuses instead of handing serving an unfusable world.
    with pytest.raises(GenerationError, match="epoch 1"):
        DriftingWorld(
            DriftConfig(
                seed=3, n_items=1, n_sources=1, epochs=1,
                coverage=0.4, value_change_rate=1.0,
                birth_rate=0.0, death_rate=0.0, rename_rate=0.0,
            )
        )
