"""Chaos tests: deterministic fault injection against the real stack.

Every test here drives the actual engine/pipeline code paths under a
seeded :class:`repro.faults.FaultPlan` — injected crashes, fake-time
slow calls and corrupted records — and asserts the fault-tolerance
contract: with retries and quarantine enabled, output is byte-identical
to a fault-free run; without them, failures surface loudly.
"""
