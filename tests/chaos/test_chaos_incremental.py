"""Chaos tests: crashes injected mid-``apply_delta`` never tear state.

The atomicity contract: a crash before the commit point leaves the
engine fully pre-delta (store bytes, fused result, sequence); a crash
after the commit point leaves it fully post-delta.  There is no
observable in-between.  Faults come from :mod:`repro.faults`, so every
schedule is deterministic and replayable.
"""

import pytest

from repro.faults import FaultPlan, InjectedFault
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.incremental import ClaimDelta, canonical_claims
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.deltas import scored_from_claims

PRE_COMMIT_SCOPES = ["stage:incremental-journal", "stage:incremental-fusion"]


def _store():
    world = generate_claim_world(
        ClaimWorldConfig(seed=91, n_items=8, n_sources=4)
    )
    store = TripleStore()
    store.add_all(scored_from_claims(world.claims))
    return store


def _fusion(fault_plan=None):
    return KnowledgeFusion(
        tolerance=0.0, max_iterations=8, fault_plan=fault_plan
    )


def _delta(store):
    subject = min(scored.triple.subject for scored in store.claims())
    return ClaimDelta(
        added=[
            ScoredTriple(
                Triple(subject, "capital", Value("chaos-town")),
                Provenance("source00", "synthetic"),
                0.8,
            )
        ],
        retracted=[store.claims()[0].triple],
        label="chaos",
    )


def _store_signature(store):
    return sorted(
        (
            scored.triple.subject,
            scored.triple.predicate,
            scored.triple.obj.lexical,
            scored.provenance.source_id,
            scored.confidence,
        )
        for scored in store.claims()
    )


@pytest.mark.parametrize("scope", PRE_COMMIT_SCOPES)
def test_pre_commit_crash_leaves_state_fully_pre_delta(scope):
    plan = FaultPlan(seed=5).crash(scope)
    engine = _fusion(fault_plan=plan).begin_incremental(_store())
    delta = _delta(engine.store)

    before_store = _store_signature(engine.store)
    before_bytes = engine.result.canonical_bytes()
    before_receipts = len(engine.receipts)

    with pytest.raises(InjectedFault):
        engine.apply_delta(delta)

    assert _store_signature(engine.store) == before_store
    assert engine.result.canonical_bytes() == before_bytes
    assert engine.sequence == 0
    assert len(engine.receipts) == before_receipts


def test_post_commit_crash_leaves_state_fully_post_delta():
    plan = FaultPlan(seed=5).crash("stage:incremental-commit")
    engine = _fusion(fault_plan=plan).begin_incremental(_store())
    delta = _delta(engine.store)

    with pytest.raises(InjectedFault):
        engine.apply_delta(delta)

    # The commit happened: store, sequence and receipts all moved.
    assert engine.sequence == 1
    assert len(engine.receipts) == 1
    added = delta.added[0].triple
    assert added in engine.store
    assert delta.retracted[0] not in engine.store
    reference = _fusion().fuse(canonical_claims(engine.store.copy()))
    assert engine.result.canonical_bytes() == reference.canonical_bytes()


@pytest.mark.parametrize("scope", PRE_COMMIT_SCOPES)
def test_reapply_after_crash_succeeds_and_matches_clean_run(scope):
    plan = FaultPlan(seed=5).crash(scope)
    engine = _fusion(fault_plan=plan).begin_incremental(_store())
    delta = _delta(engine.store)
    with pytest.raises(InjectedFault):
        engine.apply_delta(delta)

    # The fault was transient infrastructure; retry without it.
    engine.fault_plan = None
    outcome = engine.apply_delta(delta)
    assert outcome.sequence == 1

    clean = _fusion().begin_incremental(_store())
    clean_outcome = clean.apply_delta(_delta(clean.store))
    assert (
        outcome.result.canonical_bytes()
        == clean_outcome.result.canonical_bytes()
    )
    assert _store_signature(engine.store) == _store_signature(clean.store)


def test_identical_plans_crash_identically():
    states = []
    for _ in range(2):
        plan = FaultPlan(seed=9).crash("stage:incremental-fusion")
        engine = _fusion(fault_plan=plan).begin_incremental(_store())
        with pytest.raises(InjectedFault):
            engine.apply_delta(_delta(engine.store))
        states.append(
            (engine.result.canonical_bytes(), _store_signature(engine.store))
        )
    assert states[0] == states[1]


def test_slow_fault_inflates_reported_wall_time_without_sleeping():
    plan = FaultPlan(seed=1).slow("stage:incremental-fusion", seconds=90.0)
    engine = _fusion(fault_plan=plan).begin_incremental(_store())
    outcome = engine.apply_delta(_delta(engine.store))
    # Reported (not real) seconds include the injected delay.
    assert outcome.wall_seconds >= 90.0
    reference = _fusion().fuse(canonical_claims(engine.store.copy()))
    assert outcome.result.canonical_bytes() == reference.canonical_bytes()
