"""Unit tests for the mmapped segment storage backend."""

import pytest

from repro.errors import StoreError
from repro.obs import MetricsRegistry
from repro.obs.schema import validate_metrics
from repro.rdf.backend import MemoryBackend
from repro.rdf.segments import (
    SegmentBackend,
    SegmentReader,
    build_segment_bytes,
)
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


def claim(subject, predicate, value, source="src", extractor="ex",
          conf=1.0, locator=""):
    return ScoredTriple(
        Triple(subject, predicate, Value(value)),
        Provenance(source, extractor, locator),
        conf,
    )


def seg_store(tmp_path, **kwargs):
    kwargs.setdefault("memtable_limit", 4)
    return TripleStore(SegmentBackend(tmp_path / "store", **kwargs))


CORPUS = [
    claim("france", "capital", "Paris", source="a", conf=0.9),
    claim("france", "capital", "Lyon", source="b", conf=0.4),
    claim("france", "population", "67M", source="a", conf=0.7),
    claim("germany", "capital", "Berlin", source="a", conf=0.8),
    claim("germany", "capital", "Berlin", source="b", conf=0.6,
          locator="page-7"),
    claim("spain", "capital", "Madrid", source="c", extractor="dom"),
]


class TestSegmentFile:
    def test_round_trips_rows_and_tombstones(self, tmp_path):
        rows = [(i + 1, scored) for i, scored in enumerate(CORPUS)]
        tombs = [(Triple("old", "p", Value("v")), 99)]
        path = tmp_path / "one.seg"
        path.write_bytes(build_segment_bytes(rows, tombs))
        reader = SegmentReader(path)
        assert reader.n_rows == len(CORPUS)
        assert [reader.row_scored(i) for i in range(reader.n_rows)] == CORPUS
        assert list(reader.iter_tombstones()) == tombs
        assert not reader.canonical
        reader.close()

    def test_columns_are_zero_copy_views(self, tmp_path):
        rows = [(i + 1, scored) for i, scored in enumerate(CORPUS)]
        path = tmp_path / "one.seg"
        path.write_bytes(build_segment_bytes(rows, []))
        reader = SegmentReader(path)
        assert isinstance(reader.col_seq, memoryview)
        assert isinstance(reader.col_confidence, memoryview)
        assert reader.col_confidence[0] == pytest.approx(0.9)
        reader.close()

    def test_subject_slice_finds_all_rows(self, tmp_path):
        rows = [(i + 1, scored) for i, scored in enumerate(CORPUS)]
        path = tmp_path / "one.seg"
        path.write_bytes(build_segment_bytes(rows, []))
        reader = SegmentReader(path)
        france = sorted(reader.subject_rows("france"))
        assert france == [0, 1, 2]
        assert list(reader.subject_rows("narnia")) == []
        reader.close()

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "junk.seg"
        path.write_bytes(b"NOTASEGMENT-----plus some trailing bytes")
        with pytest.raises(StoreError):
            SegmentReader(path)


class TestSegmentBackendSemantics:
    def test_mirrors_memory_backend_on_basics(self, tmp_path):
        mem, seg = TripleStore(), seg_store(tmp_path)
        for scored in CORPUS:
            mem.add(scored)
            seg.add(scored)
        assert len(seg) == len(mem)
        assert seg.claims() == mem.claims()
        assert seg.subjects() == mem.subjects()
        assert seg.predicates() == mem.predicates()
        assert seg.predicates("france") == mem.predicates("france")
        assert seg.sources() == mem.sources()
        assert seg.extractors() == mem.extractors()
        assert seg.objects("france", "capital") == mem.objects(
            "france", "capital"
        )
        for triple in [s.triple for s in CORPUS]:
            assert (triple in seg) == (triple in mem)
            assert seg.claims(triple) == mem.claims(triple)
        assert sorted(map(str, seg.match(subject="france"))) == sorted(
            map(str, mem.match(subject="france"))
        )
        assert seg.match() == mem.match()

    def test_confidence_refresh_keeps_position(self, tmp_path):
        seg = seg_store(tmp_path, memtable_limit=2)  # forces flushes
        for scored in CORPUS:
            seg.add(scored)
        refreshed = CORPUS[0].with_confidence(0.95)
        seg.add(refreshed)
        assert len(seg) == len(CORPUS)
        assert seg.claims()[0].confidence == pytest.approx(0.95)

    def test_lower_confidence_duplicate_is_noop(self, tmp_path):
        seg = seg_store(tmp_path, memtable_limit=2)
        for scored in CORPUS:
            seg.add(scored)
        seg.flush()
        seg.add(CORPUS[0].with_confidence(0.1))
        assert seg.claims()[0].confidence == pytest.approx(0.9)
        assert len(seg) == len(CORPUS)

    def test_remove_then_readd_moves_to_end(self, tmp_path):
        mem, seg = TripleStore(), seg_store(tmp_path, memtable_limit=3)
        for store in (mem, seg):
            store.add_all(CORPUS)
            store.flush()
            assert store.remove(CORPUS[0].triple) == 1
            store.add(CORPUS[0])
        assert seg.claims() == mem.claims()
        assert seg.claims()[-1] == CORPUS[0]

    def test_remove_covers_segment_and_memtable_copies(self, tmp_path):
        seg = seg_store(tmp_path, memtable_limit=100)
        berlin = Triple("germany", "capital", Value("Berlin"))
        seg.add_all(CORPUS)
        seg.flush()  # both Berlin claims now segment-resident
        seg.add(claim("germany", "capital", "Berlin", source="b",
                      conf=0.99, locator="page-7"))  # memtable shadow
        assert seg.remove(berlin) == 2
        assert berlin not in seg
        assert seg.claims(berlin) == []
        assert "germany" not in seg.subjects()
        assert len(seg) == len(CORPUS) - 2

    def test_remove_of_memtable_only_keys_writes_no_tombstone(
        self, tmp_path
    ):
        backend = SegmentBackend(tmp_path / "s", memtable_limit=100)
        store = TripleStore(backend)
        store.add(CORPUS[0])
        assert store.remove(CORPUS[0].triple) == 1
        assert backend._tomb == {}
        assert len(store) == 0

    def test_missing_remove_returns_zero(self, tmp_path):
        seg = seg_store(tmp_path)
        seg.add_all(CORPUS)
        assert seg.remove(Triple("narnia", "capital", Value("x"))) == 0

    def test_add_all_enforces_memtable_limit_mid_batch(self, tmp_path):
        registry = MetricsRegistry()
        backend = SegmentBackend(
            tmp_path / "s", memtable_limit=2, metrics=registry
        )
        TripleStore(backend).add_all(CORPUS)
        # A 6-claim batch with a 2-entry memtable spills three times —
        # the batch never accumulates past the limit.
        assert registry.snapshot().counters["storage_flushes_total"] == 3
        assert len(backend._mem) == 0

    def test_add_all_accepts_a_one_shot_stream(self, tmp_path):
        backend = SegmentBackend(tmp_path / "s", memtable_limit=2)
        store = TripleStore(backend)
        store.add_all(iter(CORPUS))
        reference = TripleStore()
        reference.add_all(CORPUS)
        assert store.claims() == reference.claims()

    def test_journal_identity_contract_survives_flush_pressure(
        self, tmp_path
    ):
        # The delta journal checks `existing is scored` right after a
        # refreshing add; a refresh install must never trigger the
        # auto-flush that would replace the object with a segment copy.
        # memtable_limit=1 makes any flush check fire immediately, so
        # the refresh surviving proves refreshes skip the check.
        seg = seg_store(tmp_path, memtable_limit=1)
        seg.add_all(CORPUS)
        seg.flush()
        refreshed = CORPUS[3].with_confidence(0.99)
        seg.add(refreshed)
        assert any(
            existing is refreshed
            for existing in seg.claims(refreshed.triple)
        )


class TestDurability:
    def test_reopen_recovers_last_flush(self, tmp_path):
        directory = tmp_path / "s"
        store = TripleStore(SegmentBackend(directory, memtable_limit=100))
        store.add_all(CORPUS)
        store.remove(CORPUS[1].triple)
        store.flush()
        reopened = TripleStore(SegmentBackend(directory))
        assert reopened.claims() == store.claims()
        assert len(reopened) == len(store)
        assert reopened.subjects() == store.subjects()

    def test_unflushed_memtable_is_volatile(self, tmp_path):
        directory = tmp_path / "s"
        store = TripleStore(SegmentBackend(directory, memtable_limit=100))
        store.add_all(CORPUS)
        store.flush()
        store.add(claim("late", "p", "v"))  # never flushed
        reopened = TripleStore(SegmentBackend(directory))
        assert len(reopened) == len(CORPUS)

    def test_open_sweeps_unreferenced_segments_and_temps(self, tmp_path):
        directory = tmp_path / "s"
        store = TripleStore(SegmentBackend(directory, memtable_limit=100))
        store.add_all(CORPUS)
        store.flush()
        (directory / "seg-999-999.seg").write_bytes(b"orphan")
        (directory / "whatever.tmp").write_bytes(b"orphan")
        TripleStore(SegmentBackend(directory))
        assert not (directory / "seg-999-999.seg").exists()
        assert not (directory / "whatever.tmp").exists()


class TestCompaction:
    def test_compaction_folds_to_one_canonical_segment(self, tmp_path):
        directory = tmp_path / "s"
        backend = SegmentBackend(directory, memtable_limit=2)
        store = TripleStore(backend)
        store.add_all(CORPUS)
        store.flush()
        store.remove(CORPUS[0].triple)
        store.flush()
        before = store.claims()
        store.compact()
        readers = backend.segment_readers()
        assert len(readers) == 1
        assert readers[0].canonical
        assert readers[0].n_tombs == 0
        assert store.claims() == before
        # Old segment files are gone from disk.
        assert len(list(directory.glob("seg-*.seg"))) == 1

    def test_canonical_fast_path_matches_general_merge(self, tmp_path):
        backend = SegmentBackend(tmp_path / "s", memtable_limit=2)
        store = TripleStore(backend)
        store.add_all(CORPUS)
        store.compact()
        fast = list(iter(store))
        # Defeat the fast path by adding a memtable entry.
        extra = claim("zz", "p", "v")
        store.add(extra)
        general = list(iter(store))
        assert general[:-1] == fast
        assert general[-1] == extra

    def test_auto_compaction_bounds_segment_count(self, tmp_path):
        backend = SegmentBackend(
            tmp_path / "s", memtable_limit=1, compact_threshold=3
        )
        store = TripleStore(backend)
        for i in range(30):
            store.add(claim(f"s{i}", "p", f"v{i}"))
        assert len(backend.segment_readers()) < 3 + 1


class TestCopyAndLifecycle:
    def test_copy_is_independent_for_mutations(self, tmp_path):
        seg = seg_store(tmp_path, memtable_limit=100)
        seg.add_all(CORPUS)
        seg.flush()
        staged = seg.copy()
        staged.add(claim("new", "p", "v"))
        staged.remove(CORPUS[0].triple)
        assert len(seg) == len(CORPUS)
        assert CORPUS[0].triple in seg
        assert CORPUS[0].triple not in staged
        assert len(staged) == len(CORPUS)  # -1 removed, +1 added

    def test_close_releases_mmaps(self, tmp_path):
        backend = SegmentBackend(tmp_path / "s", memtable_limit=2)
        store = TripleStore(backend)
        store.add_all(CORPUS)
        store.flush()
        store.close()
        assert backend.segment_readers() == []

    def test_merge_between_backends(self, tmp_path):
        seg = seg_store(tmp_path)
        seg.add_all(CORPUS[:3])
        other = TripleStore()
        other.add_all(CORPUS[3:])
        seg.merge(other)
        mem = TripleStore()
        mem.add_all(CORPUS)
        assert seg.claims() == mem.claims()

    def test_validates_knobs(self, tmp_path):
        with pytest.raises(StoreError):
            SegmentBackend(tmp_path / "a", memtable_limit=0)
        with pytest.raises(StoreError):
            SegmentBackend(tmp_path / "b", compact_threshold=1)


class TestStorageMetrics:
    def test_storage_metrics_publish_and_validate(self, tmp_path):
        registry = MetricsRegistry()
        backend = SegmentBackend(
            tmp_path / "s", memtable_limit=2, compact_threshold=3,
            metrics=registry,
        )
        store = TripleStore(backend)
        store.add_all(CORPUS)
        store.flush()
        store.remove(CORPUS[0].triple)
        store.flush()
        store.compact()
        snapshot = registry.snapshot()
        counters = snapshot.counters
        assert counters["storage_flushes_total"] >= 2
        assert counters["storage_compactions_total"] >= 1
        assert counters["storage_tombstones_total"] >= 1
        assert counters["storage_segments_written_total"] >= 3
        assert snapshot.gauges["storage_segments"] == 1
        assert snapshot.gauges["storage_segment_bytes"] > 0
        assert snapshot.gauges["storage_open_mmaps"] == 1
        histograms = snapshot.histograms
        assert histograms["storage_flush_seconds"].count >= 2
        assert histograms["storage_compaction_seconds"].count >= 1
        # The exported document passes the obs schema validator.
        assert validate_metrics(snapshot.to_json_dict()) == []

    def test_timing_metrics_stay_out_of_deterministic_subset(
        self, tmp_path
    ):
        registry = MetricsRegistry()
        backend = SegmentBackend(
            tmp_path / "s", memtable_limit=2, metrics=registry
        )
        TripleStore(backend).add_all(CORPUS)
        backend.flush()
        deterministic = registry.snapshot().deterministic_subset()
        assert "storage_flush_seconds" not in deterministic["histograms"]
        assert "storage_flushes_total" in deterministic["counters"]


class TestMemoryBackendBatchAddAll:
    def test_batch_add_all_equals_repeated_add(self):
        one, batch = MemoryBackend(), MemoryBackend()
        corpus = CORPUS + [
            CORPUS[0].with_confidence(0.95),  # refresh inside the batch
            CORPUS[2].with_confidence(0.1),  # dedup no-op
        ]
        for scored in corpus:
            one.add(scored)
        batch.add_all(corpus)
        assert list(one.iter_claims()) == list(batch.iter_claims())
        assert one.subjects() == batch.subjects()
        assert one.predicates() == batch.predicates()
        assert one.match() == batch.match()
        assert len(one) == len(batch)
