"""Unit tests for table rendering."""

from repro.evalx.tables import format_ratio, render_table


class TestRenderTable:
    def test_alignment(self):
        table = render_table(
            ["Class", "Count"], [["Book", 21], ["University", 9]]
        )
        lines = table.splitlines()
        assert lines[0].startswith("Class")
        assert "University" in lines[3]
        # All rows equally wide (aligned columns).
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_title(self):
        table = render_table(["A"], [["x"]], title="Table 1")
        assert table.splitlines()[0] == "Table 1"

    def test_empty_rows(self):
        table = render_table(["A", "B"], [])
        assert "A" in table and "B" in table

    def test_wide_cells_stretch_columns(self):
        table = render_table(["H"], [["a-very-long-cell-value"]])
        header, rule, row = table.splitlines()
        assert len(header) == len(row)


class TestFormatRatio:
    def test_default_digits(self):
        assert format_ratio(0.98765) == "0.988"

    def test_custom_digits(self):
        assert format_ratio(0.5, digits=1) == "0.5"
