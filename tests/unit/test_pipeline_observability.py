"""Pipeline observability: report accuracy fixes and instrumentation.

Covers the two report-accuracy regressions (``total_seconds``
double-counting overlapped concurrent stages; ``_timed`` silently
dropping a raising stage's timing) plus the integration surface:
``PipelineReport.metrics`` / ``.trace`` populated across every
instrumented layer, the deterministic metric subset byte-identical
across same-seed runs, and a fatal mid-run crash leaving an
inspectable ``pipeline.last_report``.
"""

import json

import pytest

from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
    PipelineReport,
    StageTiming,
    _timed,
)
from repro.faults import FaultPlan, InjectedFault
from repro.mapreduce.engine import RetryPolicy
from repro.obs import MetricsRegistry, SpanTracer, validate_metrics, \
    validate_trace
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig
from repro.synth.world import WorldConfig


def _config(**overrides) -> PipelineConfig:
    return PipelineConfig(
        world=WorldConfig(
            entities_per_class={
                "Book": 15, "Film": 15, "Country": 12,
                "University": 12, "Hotel": 10,
            }
        ),
        querylog=QueryLogConfig(seed=17, scale=0.0005),
        websites=WebsiteConfig(sites_per_class=2, pages_per_site=6),
        webtext=WebTextConfig(sources_per_class=2, documents_per_source=6),
        **overrides,
    )


class TestTotalSeconds:
    """Regression: concurrent stage timings overlap on the wall clock.

    Summing per-stage seconds double-counts whenever stages ran in
    parallel; ``total_seconds()`` must report measured wall time, with
    the sum available separately as ``cumulative_stage_seconds()``.
    """

    def test_total_is_wall_not_the_overlapping_sum(self):
        report = PipelineReport()
        # Two stages that ran concurrently for 3s each: 4s of wall.
        report.timings.append(StageTiming("dom-extraction", 3.0))
        report.timings.append(StageTiming("webtext-extraction", 3.0))
        report.wall_seconds = 4.0
        assert report.cumulative_stage_seconds() == 6.0
        assert report.total_seconds() == 4.0

    def test_fallback_to_cumulative_when_wall_unmeasured(self):
        report = PipelineReport()
        report.timings.append(StageTiming("fusion", 2.0))
        assert report.total_seconds() == 2.0

    def test_json_dict_carries_both(self):
        report = PipelineReport()
        report.timings.append(StageTiming("fusion", 2.0))
        report.wall_seconds = 2.5
        payload = report.to_json_dict()
        assert payload["wall_seconds"] == 2.5
        assert payload["cumulative_stage_seconds"] == 2.0


class TestTimedFailure:
    """Regression: a raising stage must not lose its timing."""

    def test_timing_appended_with_failure_marker(self):
        report = PipelineReport()
        with pytest.raises(ValueError):
            with _timed(report, "confidence"):
                raise ValueError("boom")
        (timing,) = report.timings
        assert timing.stage == "confidence"
        assert timing.seconds >= 0.0
        assert timing.detail == "failed: ValueError"
        assert report.health.degraded["confidence"] == "ValueError: boom"

    def test_marker_appends_to_existing_detail(self):
        report = PipelineReport()
        with pytest.raises(RuntimeError):
            with _timed(report, "fusion") as timing:
                timing.detail = "120 claims"
                raise RuntimeError("dead")
        assert report.timings[0].detail == "120 claims; failed: RuntimeError"

    def test_success_path_unchanged(self):
        report = PipelineReport()
        with _timed(report, "fusion") as timing:
            timing.detail = "ok"
        assert report.timings[0].detail == "ok"
        assert report.health.status == "ok"

    def test_tracer_and_metrics_see_the_failure(self):
        report = PipelineReport()
        tracer = SpanTracer()
        metrics = MetricsRegistry()
        with pytest.raises(ValueError):
            with _timed(report, "fusion", tracer=tracer, metrics=metrics):
                raise ValueError("boom")
        span = tracer.to_json_dict()["spans"][0]
        assert span["status"] == "failed"
        assert span["detail"] == "failed: ValueError"
        counters = metrics.snapshot().counters
        assert counters["pipeline_stage_failed_total{stage=fusion}"] == 1
        histograms = metrics.snapshot().histograms
        assert histograms["pipeline_stage_seconds{stage=fusion}"].count == 1


@pytest.fixture(scope="module")
def observed_runs(tmp_path_factory):
    """Two same-seed full runs with every instrumented layer active."""
    reports = []
    for name in ("first", "second"):
        config = _config(
            checkpoint_dir=tmp_path_factory.mktemp(name),
            fusion_parallelism=2,
            fusion_executor="serial",
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        reports.append(KnowledgeBaseConstructionPipeline(config).run())
    return reports


class TestInstrumentationIntegration:
    def test_metrics_cover_every_layer(self, observed_runs):
        counters = observed_runs[0].metrics.counters
        for prefix in (
            "pipeline_", "mapreduce_", "fusion_", "simcache_",
            "quarantine_", "checkpoint_",
        ):
            assert any(key.startswith(prefix) for key in counters), (
                f"no {prefix}* counter in {sorted(counters)}"
            )

    def test_exports_satisfy_their_schemas(self, observed_runs):
        report = observed_runs[0]
        assert validate_metrics(report.metrics.to_json_dict()) == []
        assert validate_trace(report.trace) == []

    def test_wall_seconds_measured(self, observed_runs):
        report = observed_runs[0]
        assert report.wall_seconds > 0.0
        assert report.total_seconds() == report.wall_seconds

    def test_trace_rooted_at_the_pipeline_span(self, observed_runs):
        root = observed_runs[0].trace["spans"][0]
        assert root["name"] == "pipeline"
        assert root["status"] == "ok"
        child_names = {span["name"] for span in root["children"]}
        assert "fusion" in child_names

    def test_stage_metrics_match_the_timings(self, observed_runs):
        report = observed_runs[0]
        counters = report.metrics.counters
        successes = sum(
            value for key, value in counters.items()
            if key.startswith("pipeline_stage_success_total")
        )
        assert successes == len(report.timings)

    def test_deterministic_subset_identical_across_runs(self, observed_runs):
        first, second = observed_runs
        assert json.dumps(
            first.metrics.deterministic_subset(), sort_keys=True
        ) == json.dumps(
            second.metrics.deterministic_subset(), sort_keys=True
        )

    def test_fusion_kernel_metrics_present(self, observed_runs):
        snapshot = observed_runs[0].metrics
        assert snapshot.counters["fusion_rounds_total"] > 0
        assert snapshot.gauges["fusion_components"] >= 1
        assert snapshot.histograms["fusion_component_claims"].count >= 1


class TestFatalCrashReport:
    def test_last_report_keeps_the_failed_stage(self):
        """A mid-run crash leaves timings/metrics/trace inspectable."""
        plan = FaultPlan(seed=5).crash("stage:fusion", attempts=0)
        pipeline = KnowledgeBaseConstructionPipeline(
            _config(fault_plan=plan)
        )
        with pytest.raises(InjectedFault):
            pipeline.run()
        report = pipeline.last_report
        assert report is not None
        fusion_timings = [
            timing for timing in report.timings if timing.stage == "fusion"
        ]
        assert fusion_timings, "failed stage timing was dropped"
        assert "failed: InjectedFault" in fusion_timings[0].detail
        assert report.health.status == "degraded"
        assert "fusion" in report.health.degraded
        # The finally block still published metrics and the trace.
        assert report.metrics is not None
        assert report.wall_seconds > 0.0
        assert report.trace["spans"][0]["status"] == "failed"
