"""Unit tests for DOM serialisation."""

from repro.htmldom.node import Document, ElementNode, TextNode
from repro.htmldom.parser import parse_html
from repro.htmldom.serialize import to_html


class TestSerialize:
    def test_simple_roundtrip(self):
        markup = "<div><p>hello</p></div>"
        assert to_html(parse_html(markup)) == markup

    def test_attributes_rendered(self):
        markup = '<a href="x.html">link</a>'
        assert to_html(parse_html(markup)) == markup

    def test_text_escaped(self):
        doc = Document()
        doc.append_element("p").append_text("a < b & c")
        assert to_html(doc) == "<p>a &lt; b &amp; c</p>"

    def test_attribute_quotes_escaped(self):
        doc = Document()
        doc.append_element("div", {"title": 'say "hi"'})
        assert '&quot;hi&quot;' in to_html(doc)

    def test_void_element(self):
        doc = Document()
        doc.append_element("br")
        assert to_html(doc) == "<br/>"

    def test_document_root_invisible(self):
        doc = Document()
        doc.append_element("p").append_text("x")
        assert to_html(doc) == "<p>x</p>"

    def test_bare_text_node(self):
        assert to_html(TextNode("plain")) == "plain"

    def test_nested_roundtrip_stable(self):
        markup = (
            '<html><head><title>t</title></head><body>'
            '<table class="x"><tr><th>K</th><td>V</td></tr></table>'
            "</body></html>"
        )
        once = to_html(parse_html(markup))
        twice = to_html(parse_html(once))
        assert once == twice == markup

    def test_manual_tree(self):
        root = ElementNode("ul")
        li = root.append_element("li")
        li.append_text("item")
        assert to_html(root) == "<ul><li>item</li></ul>"
