"""Unit tests for the unified confidence criterion."""

import pytest

from repro.core.confidence import ConfidenceConfig, ConfidenceScorer
from repro.extract.base import DiscoveredAttribute
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


def scored(subject, predicate, value, source, extractor):
    return ScoredTriple(
        Triple(subject, predicate, Value(value)),
        Provenance(source, extractor),
    )


class TestScoreBatch:
    def test_scores_within_unit_interval(self):
        scorer = ConfidenceScorer()
        batch = scorer.score_batch(
            [
                scored("s", "p", "v", "a", "kb"),
                scored("s", "p", "v", "b", "dom"),
                scored("s", "p", "w", "c", "webtext"),
            ]
        )
        assert all(0 < item.confidence < 1 for item in batch)

    def test_order_preserved(self):
        scorer = ConfidenceScorer()
        inputs = [
            scored("s1", "p", "v", "a", "kb"),
            scored("s2", "p", "v", "a", "kb"),
        ]
        outputs = scorer.score_batch(inputs)
        assert [o.triple.subject for o in outputs] == ["s1", "s2"]

    def test_kb_prior_beats_webtext_prior(self):
        scorer = ConfidenceScorer()
        batch = scorer.score_batch(
            [
                scored("s", "p", "v", "a", "kb"),
                scored("t", "p", "v", "a", "webtext"),
            ]
        )
        assert batch[0].confidence > batch[1].confidence

    def test_replication_raises_confidence(self):
        scorer = ConfidenceScorer()
        lonely = scorer.score_batch([scored("s", "p", "v", "a", "dom")])
        replicated = scorer.score_batch(
            [
                scored("s", "p", "v", "a", "dom"),
                scored("s", "p", "v", "b", "dom"),
                scored("s", "p", "v", "c", "dom"),
            ]
        )
        assert replicated[0].confidence > lonely[0].confidence

    def test_disagreement_lowers_confidence(self):
        scorer = ConfidenceScorer()
        agreed = scorer.score_batch(
            [
                scored("s", "p", "v", "a", "dom"),
                scored("s", "p", "v", "b", "dom"),
            ]
        )
        contested = scorer.score_batch(
            [
                scored("s", "p", "v", "a", "dom"),
                scored("s", "p", "w", "b", "dom"),
            ]
        )
        assert agreed[0].confidence > contested[0].confidence

    def test_unknown_extractor_uses_default_prior(self):
        scorer = ConfidenceScorer()
        batch = scorer.score_batch([scored("s", "p", "v", "a", "alien")])
        assert 0 < batch[0].confidence < 1

    def test_empty_batch(self):
        assert ConfidenceScorer().score_batch([]) == []

    def test_custom_priors(self):
        config = ConfidenceConfig(extractor_priors={"dom": 0.99})
        scorer = ConfidenceScorer(config)
        high = scorer.score_batch([scored("s", "p", "v", "a", "dom")])
        low = ConfidenceScorer().score_batch(
            [scored("s", "p", "v", "a", "dom")]
        )
        assert high[0].confidence > low[0].confidence


class TestScoreAttribute:
    def test_support_increases_confidence(self):
        scorer = ConfidenceScorer()
        weak = DiscoveredAttribute("a", "Book", "dom", support=1,
                                   entity_support=1)
        strong = DiscoveredAttribute("a", "Book", "dom", support=20,
                                     entity_support=10)
        assert scorer.score_attribute(strong) > scorer.score_attribute(weak)

    def test_extractor_prior_matters(self):
        scorer = ConfidenceScorer()
        kb = DiscoveredAttribute("a", "Book", "kb", support=5,
                                 entity_support=5)
        text = DiscoveredAttribute("a", "Book", "webtext", support=5,
                                   entity_support=5)
        assert scorer.score_attribute(kb) > scorer.score_attribute(text)

    def test_bounded(self):
        scorer = ConfidenceScorer()
        record = DiscoveredAttribute("a", "Book", "kb", support=10**6,
                                     entity_support=10**6)
        assert scorer.score_attribute(record) <= 1.0
