"""Unit tests for the delta model and its JSON wire format."""

import pytest

from repro.errors import DeltaError
from repro.incremental import (
    ClaimDelta,
    DeltaJournal,
    delta_from_json_dict,
    delta_to_json_dict,
    load_delta,
    save_delta,
)
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


def scored(subject, predicate, value, source="src", extractor="ex", conf=0.9):
    return ScoredTriple(
        Triple(subject, predicate, Value(value)),
        Provenance(source, extractor, f"loc:{subject}"),
        conf,
    )


@pytest.fixture
def delta():
    return ClaimDelta(
        added=[
            scored("country/au", "capital", "Canberra"),
            scored("country/au", "capital", "Sydney", source="bad-site"),
        ],
        retracted=[Triple("country/nz", "capital", Value("Auckland"))],
        label="crawl 2026-08-06",
    )


class TestClaimDelta:
    def test_empty(self):
        assert ClaimDelta().is_empty()

    def test_not_empty(self, delta):
        assert not delta.is_empty()

    def test_items_union_of_both_sides(self, delta):
        assert delta.items() == {
            ("country/au", "capital"),
            ("country/nz", "capital"),
        }

    def test_validate_accepts_well_formed(self, delta):
        delta.validate()

    def test_validate_rejects_raw_triple_addition(self):
        bad = ClaimDelta(added=[Triple("s", "p", Value("v"))])
        with pytest.raises(DeltaError):
            bad.validate()

    def test_validate_rejects_scored_retraction(self):
        bad = ClaimDelta(retracted=[scored("s", "p", "v")])
        with pytest.raises(DeltaError):
            bad.validate()


class TestJsonWireFormat:
    def test_round_trip(self, delta):
        payload = delta_to_json_dict(delta)
        back = delta_from_json_dict(payload)
        assert back.label == delta.label
        assert [s.triple for s in back.added] == [s.triple for s in delta.added]
        assert [s.provenance for s in back.added] == [
            s.provenance for s in delta.added
        ]
        assert [s.confidence for s in back.added] == [
            s.confidence for s in delta.added
        ]
        assert back.retracted == delta.retracted

    def test_file_round_trip(self, delta, tmp_path):
        path = tmp_path / "delta.json"
        save_delta(delta, str(path))
        back = load_delta(str(path))
        assert delta_to_json_dict(back) == delta_to_json_dict(delta)

    def test_non_dict_document_rejected(self):
        with pytest.raises(DeltaError):
            delta_from_json_dict(["not", "a", "delta"])

    def test_missing_subject_rejected(self):
        with pytest.raises(DeltaError):
            delta_from_json_dict(
                {"added": [{"predicate": "p", "object": "v",
                            "source": "s", "extractor": "e"}]}
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(DeltaError):
            delta_from_json_dict(
                {"retracted": [{"subject": "s", "predicate": "p",
                                "object": "v", "kind": "hologram"}]}
            )

    def test_bad_confidence_rejected(self):
        with pytest.raises(DeltaError):
            delta_from_json_dict(
                {"added": [{"subject": "s", "predicate": "p", "object": "v",
                            "source": "a", "extractor": "e",
                            "confidence": "plenty"}]}
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DeltaError):
            load_delta(str(tmp_path / "nope.json"))

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DeltaError):
            load_delta(str(path))


class TestDeltaJournal:
    def test_receipt_accounting(self):
        store = TripleStore()
        store.add(scored("france", "capital", "Paris", source="a"))
        store.add(scored("france", "capital", "Paris", source="b"))
        journal = DeltaJournal(store)
        receipt = journal.apply(
            ClaimDelta(
                added=[
                    scored("france", "capital", "Lyon", source="c"),
                    # Exact duplicate of an existing claim — a no-op.
                    scored("france", "capital", "Paris", source="a"),
                ],
                retracted=[
                    Triple("france", "capital", Value("Paris")),
                    Triple("mars", "capital", Value("Olympus")),
                ],
                label="fix",
            )
        )
        assert receipt.sequence == 0
        assert receipt.label == "fix"
        # Paris removed across both provenances, then re-added by "a".
        assert receipt.removed_claims == 2
        assert receipt.missing_retractions == 1
        assert receipt.added == 2
        assert receipt.noop_additions == 0
        assert receipt.dirty_items == {("france", "capital")}
        assert receipt.dirty_sources == {"a", "b", "c"}
        assert journal.receipts == [receipt]

    def test_retractions_apply_before_additions(self):
        store = TripleStore()
        store.add(scored("x", "p", "old"))
        journal = DeltaJournal(store)
        journal.apply(
            ClaimDelta(
                added=[scored("x", "p", "new")],
                retracted=[Triple("x", "p", Value("old"))],
            )
        )
        assert Triple("x", "p", Value("old")) not in store
        assert Triple("x", "p", Value("new")) in store

    def test_duplicate_addition_is_noop(self):
        store = TripleStore()
        store.add(scored("x", "p", "v", conf=0.9))
        receipt = DeltaJournal(store).apply(
            ClaimDelta(added=[scored("x", "p", "v", conf=0.5)])
        )
        assert receipt.added == 0
        assert receipt.noop_additions == 1
        # Dirty anyway: the journal cannot know fusion ignores it.
        assert receipt.dirty_items == {("x", "p")}

    def test_receipt_json_sorted(self):
        store = TripleStore()
        journal = DeltaJournal(store)
        receipt = journal.apply(
            ClaimDelta(added=[scored("b", "p", "v"), scored("a", "p", "v")])
        )
        payload = receipt.to_json_dict()
        assert list(payload["dirty_items"]) == [("a", "p"), ("b", "p")]
        assert payload["sequence"] == 0
