"""PipelineReport serialization: health + shard fields survive JSON.

The chaos CI step diffs two ``to_json_dict()`` outputs, so the schema
must round-trip through ``json.dumps``/``json.loads`` unchanged and
stay deterministically ordered.
"""

import json

from repro.core.pipeline import (
    PipelineHealth,
    PipelineReport,
    StageTiming,
)


def _populated_report() -> PipelineReport:
    report = PipelineReport()
    report.timings.append(StageTiming("kb-extraction", 1.25, "900 claims"))
    report.timings.append(StageTiming("fusion", 0.5, "4000 claims"))
    report.seed_sizes = {"Film": 12, "Book": 9}
    report.attribute_counts = {"kb": {"Book": 11, "Film": 13}}
    report.triple_counts = {"kb": 900, "dom": 4100}
    report.extraction_wall = {"phase-a": 0.7, "phase-b": 2.1}
    report.fusion_wall = 0.42
    report.fusion_shards = {
        "components": 5,
        "workers": 2,
        "executor": "process",
        "largest_claims": 1800,
        "component_claims": [1800, 900, 700, 400, 200],
    }
    health = report.health
    health.status = "degraded"
    health.degraded["webtext-extraction"] = "InjectedFault: worker died"
    health.active_sources = ["dom", "kb", "querystream"]
    health.min_sources = 2
    health.resumed_stages = ["extraction"]
    health.quarantined = {
        "total": 2,
        "counts": {"querystream": 2},
        "samples": {"querystream": ["malformed: ''"]},
    }
    health.retry = {"attempts": 7, "retries": 2, "timed_out_tasks": 1}
    return report


class TestReportSerialization:
    def test_round_trip_is_lossless(self):
        payload = _populated_report().to_json_dict()
        restored = json.loads(json.dumps(payload))
        assert restored == payload

    def test_health_section_shape(self):
        health = _populated_report().to_json_dict()["health"]
        assert health["status"] == "degraded"
        assert health["degraded"] == {
            "webtext-extraction": "InjectedFault: worker died"
        }
        assert health["active_sources"] == ["dom", "kb", "querystream"]
        assert health["min_sources"] == 2
        assert health["resumed_stages"] == ["extraction"]
        assert health["quarantined"]["total"] == 2
        assert health["retry"]["retries"] == 2

    def test_fusion_fields_survive(self):
        payload = _populated_report().to_json_dict()
        assert payload["fusion_wall"] == 0.42
        assert payload["fusion_shards"]["components"] == 5
        assert payload["fusion_shards"]["component_claims"][0] == 1800

    def test_empty_report_serializes_with_defaults(self):
        payload = PipelineReport().to_json_dict()
        restored = json.loads(json.dumps(payload))
        assert restored["health"]["status"] == "ok"
        assert restored["health"]["quarantined"] == {
            "total": 0, "counts": {}, "samples": {},
        }
        assert restored["fused_items"] is None
        assert restored["timings"] == []

    def test_dict_keys_are_sorted_for_determinism(self):
        payload = _populated_report().to_json_dict()
        assert list(payload["seed_sizes"]) == ["Book", "Film"]
        assert list(payload["triple_counts"]) == ["dom", "kb"]
        assert list(payload["health"]["degraded"]) == ["webtext-extraction"]

    def test_health_default_factory_is_per_report(self):
        first, second = PipelineReport(), PipelineReport()
        first.health.mark_degraded("dom-extraction", "boom")
        assert second.health.status == "ok"
        assert isinstance(first.health, PipelineHealth)
