"""Unit tests for name generation primitives."""

import random

import pytest

from repro.synth import names


@pytest.fixture
def rng():
    return random.Random(123)


class TestDeterminism:
    def test_same_seed_same_names(self):
        first = [names.title_name(random.Random(7)) for _ in range(5)]
        second = [names.title_name(random.Random(7)) for _ in range(5)]
        assert first == second

    def test_different_seed_differs(self):
        assert [names.place_name(random.Random(1)) for _ in range(10)] != [
            names.place_name(random.Random(2)) for _ in range(10)
        ]


class TestShapes:
    def test_invented_word_capitalised(self, rng):
        word = names.invented_word(rng)
        assert word[0].isupper()
        assert word[1:].islower()

    def test_syllable_nonempty(self, rng):
        assert names.syllable(rng)

    def test_person_name_two_parts(self, rng):
        assert len(names.person_name(rng).split(" ")) == 2

    def test_university_name_contains_university(self, rng):
        for _ in range(10):
            assert "University" in names.university_name(rng)

    def test_university_name_uses_anchor(self, rng):
        name = names.university_name(rng, place="Testville")
        assert "Testville" in name

    def test_hotel_name_ends_with_hotel(self, rng):
        assert names.hotel_name(rng).endswith("Hotel")

    def test_country_name_nonempty(self, rng):
        assert names.country_name(rng)

    def test_title_name_multiword(self, rng):
        for _ in range(20):
            assert len(names.title_name(rng).split(" ")) >= 2


class TestWordPool:
    def test_size_and_uniqueness(self, rng):
        pool = names.word_pool(rng, 50)
        assert len(pool) == 50
        assert len(set(pool)) == 50

    def test_lowercase(self, rng):
        assert all(word == word.lower() for word in names.word_pool(rng, 10))

    def test_sorted(self, rng):
        pool = names.word_pool(rng, 20)
        assert pool == sorted(pool)
