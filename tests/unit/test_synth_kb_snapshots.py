"""Unit tests for synthetic KB snapshots."""

import pytest

from repro.synth.kb_snapshots import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    KbPairConfig,
    build_kb_pair,
    build_representative_snapshots,
    decamelize,
    render_name,
)


class TestNaming:
    def test_render_camel(self):
        assert render_name("publication date", "Book", "camel") == (
            "publicationDate"
        )

    def test_render_snake(self):
        assert render_name("publication date", "Book", "snake") == (
            "book/publication_date"
        )

    def test_render_label(self):
        assert render_name("publication date", "Book", "label") == (
            "publication date"
        )

    def test_render_unknown_rejected(self):
        with pytest.raises(Exception):
            render_name("x", "Book", "yaml")

    def test_decamelize(self):
        assert decamelize("publicationDate") == "publication date"
        assert decamelize("isbn") == "isbn"

    def test_roundtrip_camel(self):
        rendered = render_name("number of pages", "Book", "camel")
        assert decamelize(rendered) == "number of pages"


class TestKbPair:
    def test_naming_conventions(self, kb_pair):
        freebase, dbpedia = kb_pair
        assert freebase.naming == "snake"
        assert dbpedia.naming == "camel"

    def test_schema_counts_match_calibration(self, kb_pair, world):
        freebase, dbpedia = kb_pair
        for class_name, (db_schema, _, fb_schema, _, _) in PAPER_TABLE2.items():
            universe = len(world.attribute_names(class_name))
            assert dbpedia.schema_attribute_count(class_name) == min(
                db_schema, universe
            )
            assert freebase.schema_attribute_count(class_name) == min(
                fb_schema, universe
            )

    def test_instance_attribute_counts_clamped(self, kb_pair, world):
        freebase, dbpedia = kb_pair
        for class_name, (_, db_inst, _, fb_inst, _) in PAPER_TABLE2.items():
            universe = len(world.attribute_names(class_name))
            assert len(dbpedia.classes[class_name].instance_attributes) == min(
                db_inst, universe
            )
            assert len(freebase.classes[class_name].instance_attributes) == min(
                fb_inst, universe
            )

    def test_entity_ratio_respected(self, kb_pair, world):
        freebase, dbpedia = kb_pair
        total = sum(len(world.entities(c)) for c in world.classes())
        assert freebase.entity_count() == total
        assert dbpedia.entity_count() < total

    def test_every_instance_attribute_used(self, kb_pair):
        freebase, _ = kb_pair
        for class_name, view in freebase.classes.items():
            used = {
                scored.triple.predicate for scored in freebase.store.claims()
            }
            for attribute in view.instance_attributes:
                assert attribute in used

    def test_claims_have_kb_provenance(self, kb_pair):
        freebase, _ = kb_pair
        for scored in freebase.store.claims()[:50]:
            assert scored.provenance.source_id == "freebase"

    def test_deterministic(self, world):
        pair_one = build_kb_pair(world, KbPairConfig(seed=2))
        pair_two = build_kb_pair(world, KbPairConfig(seed=2))
        assert len(pair_one[0].store) == len(pair_two[0].store)
        assert pair_one[1].attribute_count() == pair_two[1].attribute_count()


class TestRepresentativeSnapshots:
    def test_all_four_kbs(self, world):
        snapshots = build_representative_snapshots(world)
        assert set(snapshots) == set(PAPER_TABLE1)

    def test_entity_counts_ordered_like_paper(self, world):
        snapshots = build_representative_snapshots(world)
        counts = {name: snap.entity_count() for name, snap in snapshots.items()}
        assert counts["Freebase"] > counts["YAGO"] > counts["DBpedia"] > (
            counts["NELL"]
        )

    def test_attribute_counts_ordered_like_paper(self, world):
        snapshots = build_representative_snapshots(world)
        counts = {
            name: snap.attribute_count() for name, snap in snapshots.items()
        }
        assert counts["DBpedia"] > counts["Freebase"] > counts["NELL"] > (
            counts["YAGO"]
        )
