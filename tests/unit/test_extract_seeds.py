"""Unit tests for seed-set management."""

from repro.extract.base import ExtractorOutput
from repro.extract.seeds import SeedSet, build_seed_sets


class TestSeedSet:
    def test_add_canonicalises(self):
        seeds = SeedSet("Book")
        assert seeds.add("Publication_Dates")
        assert "publication date" in seeds

    def test_add_duplicate_false(self):
        seeds = SeedSet("Book", ["author"])
        assert not seeds.add("Author")

    def test_add_empty_false(self):
        assert not SeedSet("Book").add("  ")

    def test_contains_normalises(self):
        seeds = SeedSet("Book", ["birth place"])
        assert "Birth-Place" in seeds
        assert "death place" not in seeds

    def test_iteration_sorted(self):
        seeds = SeedSet("Book", ["zeta", "alpha"])
        assert list(seeds) == ["alpha", "zeta"]

    def test_copy_independent(self):
        seeds = SeedSet("Book", ["author"])
        clone = seeds.copy()
        clone.add("genre")
        assert len(seeds) == 1
        assert len(clone) == 2


class TestBuildSeedSets:
    def _outputs(self):
        kb = ExtractorOutput("kb")
        kb.add_attribute("Book", "author", support=5)
        kb.add_attribute("Book", "rare", support=1)
        query = ExtractorOutput("querystream")
        query.add_attribute("Book", "author", support=2)
        query.add_attribute("Book", "price", support=3)
        return [kb, query]

    def test_union_across_extractors(self):
        seeds = build_seed_sets(self._outputs(), ["Book", "Film"])
        assert seeds["Book"].names() == {"author", "rare", "price"}
        assert len(seeds["Film"]) == 0

    def test_min_support_filters(self):
        seeds = build_seed_sets(self._outputs(), ["Book"], min_support=3)
        assert seeds["Book"].names() == {"author", "price"}

    def test_support_sums_across_extractors(self):
        seeds = build_seed_sets(self._outputs(), ["Book"], min_support=7)
        assert seeds["Book"].names() == {"author"}
