"""Unit tests for string similarity measures."""

import pytest

from repro.textproc.similarity import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    name_similarity,
    token_jaccard,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty_cases(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    def test_substitution(self):
        assert levenshtein("kitten", "sitten") == 1

    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_limit_early_exit(self):
        assert levenshtein("aaaa", "bbbb", limit=1) > 1

    def test_limit_length_gap(self):
        assert levenshtein("a", "abcdef", limit=2) > 2

    def test_within_limit_exact(self):
        assert levenshtein("abcd", "abed", limit=2) == 1


class TestLevenshteinSimilarity:
    def test_identical(self):
        assert levenshtein_similarity("x", "x") == 1.0

    def test_empty_pair(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_range(self):
        assert 0 <= levenshtein_similarity("abc", "xyz") <= 1


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_no_match(self):
        assert jaro("abc", "xyz") == 0.0


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("prefixed", "prefixes") > jaro(
            "prefixed", "prefixes"
        )

    def test_identical(self):
        assert jaro_winkler("same", "same") == 1.0

    def test_bounded(self):
        assert jaro_winkler("dwayne", "duane") <= 1.0


class TestTokenJaccard:
    def test_identical(self):
        assert token_jaccard("a b c", "a b c") == 1.0

    def test_reordered(self):
        assert token_jaccard("university of adelaide", "adelaide of university") == 1.0

    def test_partial(self):
        assert token_jaccard("a b", "b c") == pytest.approx(1 / 3)

    def test_case_insensitive(self):
        assert token_jaccard("Hello World", "hello world") == 1.0

    def test_both_empty(self):
        assert token_jaccard("", "") == 1.0

    def test_one_empty(self):
        assert token_jaccard("a", "") == 0.0


class TestNameSimilarity:
    def test_exact_after_normalisation(self):
        assert name_similarity("  Paris ", "paris") == 1.0

    def test_misspelling_scores_high(self):
        assert name_similarity("Adelaide", "Adelade") > 0.85

    def test_reordering_scores_high(self):
        assert (
            name_similarity("University of Adelaide", "Adelaide University")
            > 0.6
        )

    def test_unrelated_scores_low(self):
        assert name_similarity("Paris", "Tokyo") < 0.6
