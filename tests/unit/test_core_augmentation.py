"""Unit tests for KB augmentation."""

import pytest

from repro.core.augmentation import augment_kb
from repro.extract.base import ExtractorOutput
from repro.fusion.base import Claim, ClaimSet, FusionResult
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.kb_snapshots import KbClassView, KbSnapshot


@pytest.fixture
def snapshot():
    snap = KbSnapshot("freebase", "snake")
    snap.classes["Book"] = KbClassView(
        "Book",
        schema_attributes=("book/author",),
        instance_attributes=("book/author", "book/genre"),
        entities=(),
    )
    snap.store.add(
        ScoredTriple(
            Triple("book/0001", "book/author", Value("Jane")),
            Provenance("freebase", "kb-load"),
        )
    )
    return snap


def fusion_fixture():
    result = FusionResult("knowledge-fusion")
    result.truths[("book/0001", "author")] = {"jane"}
    result.truths[("book/0001", "price")] = {"42"}
    result.belief[(("book/0001", "author"), "jane")] = 0.95
    result.belief[(("book/0001", "price"), "42")] = 0.8
    claims = ClaimSet(
        [
            Claim(("book/0001", "author"), "jane", "Jane", "x", "dom"),
            Claim(("book/0001", "price"), "42", "42", "x", "dom"),
        ]
    )
    return result, claims


class TestAugmentation:
    def _augment(self, snapshot, discovered=None, min_conf=0.0):
        result, claims = fusion_fixture()
        return augment_kb(
            snapshot,
            discovered or [],
            result,
            claims,
            class_of_subject=lambda s: "Book" if s.startswith("book/") else None,
            min_attribute_confidence=min_conf,
        )

    def test_new_attribute_added_to_schema_view(self, snapshot):
        output = ExtractorOutput("dom")
        record = output.add_attribute("Book", "price")
        record.confidence = 0.9
        report = self._augment(snapshot, [output])
        assert report.new_attributes == {"Book": 1}
        assert "book/price" in snapshot.classes["Book"].instance_attributes

    def test_known_attribute_not_duplicated(self, snapshot):
        output = ExtractorOutput("dom")
        output.add_attribute("Book", "genre")  # already in instance attrs
        report = self._augment(snapshot, [output])
        assert report.total_new_attributes() == 0

    def test_low_confidence_attribute_skipped(self, snapshot):
        output = ExtractorOutput("dom")
        record = output.add_attribute("Book", "price")
        record.confidence = 0.1
        report = self._augment(snapshot, [output], min_conf=0.5)
        assert report.total_new_attributes() == 0

    def test_new_fact_attached_with_fusion_provenance(self, snapshot):
        report = self._augment(snapshot)
        assert report.new_facts == 1  # the price fact
        added = snapshot.store.claims_for_item("book/0001", "book/price")
        assert added
        assert added[0].provenance.extractor_id == "fusion"
        assert added[0].confidence == pytest.approx(0.8)

    def test_existing_fact_confirmed_not_duplicated(self, snapshot):
        report = self._augment(snapshot)
        assert report.confirmed_facts == 1  # author=jane already held
        author_claims = snapshot.store.claims_for_item(
            "book/0001", "book/author"
        )
        assert len(author_claims) == 1

    def test_subject_outside_kb_classes_ignored(self, snapshot):
        result = FusionResult("kf")
        result.truths[("film/0001", "director")] = {"someone"}
        report = augment_kb(
            snapshot, [], result, ClaimSet(),
            class_of_subject=lambda s: "Film",
        )
        assert report.new_facts == 0

    def test_lexical_form_recovered_from_claims(self, snapshot):
        self._augment(snapshot)
        added = snapshot.store.claims_for_item("book/0001", "book/price")
        assert added[0].triple.obj.lexical == "42"


class TestEntityAugmentation:
    def test_new_entities_registered(self, snapshot):
        from repro.rdf.ontology import Entity

        result, claims = fusion_fixture()
        report = augment_kb(
            snapshot, [], result, claims,
            class_of_subject=lambda s: "Book",
            new_entities=[
                Entity("new/book/0001", "Fresh Tale", "Book"),
                Entity("new/film/0001", "No Such Class", "Film"),
            ],
        )
        assert report.new_entities == 1  # Film class absent from the KB
        names = {e.name for e in snapshot.classes["Book"].entities}
        assert "Fresh Tale" in names

    def test_duplicate_entity_not_registered_twice(self, snapshot):
        from repro.rdf.ontology import Entity

        result, claims = fusion_fixture()
        entity = Entity("new/book/0001", "Fresh Tale", "Book")
        augment_kb(
            snapshot, [], result, claims,
            class_of_subject=lambda s: "Book", new_entities=[entity],
        )
        report = augment_kb(
            snapshot, [], result, claims,
            class_of_subject=lambda s: "Book", new_entities=[entity],
        )
        assert report.new_entities == 0
