"""Unit tests for the dirty-component incremental fusion engine."""

import pytest

from repro.errors import DeltaError
from repro.fusion.correlations import CorrelationEstimator
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.fusion.sharding import shard_claims
from repro.incremental import ClaimDelta, IncrementalFusion, canonical_claims
from repro.obs import MetricsRegistry
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.deltas import scored_from_claims


def _corpus(n_worlds=6, n_items=6, n_sources=4):
    """Disjoint claim worlds — one connected component per world."""
    scored = []
    for index in range(n_worlds):
        world = generate_claim_world(
            ClaimWorldConfig(
                seed=400 + index, n_items=n_items, n_sources=n_sources
            )
        )
        for one in scored_from_claims(world.claims):
            triple = one.triple
            scored.append(
                ScoredTriple(
                    Triple(
                        f"w{index}/{triple.subject}",
                        triple.predicate,
                        triple.obj,
                    ),
                    Provenance(
                        f"w{index}/{one.provenance.source_id}",
                        one.provenance.extractor_id,
                        one.provenance.locator,
                    ),
                    one.confidence,
                )
            )
    store = TripleStore()
    store.add_all(scored)
    return store


def _fusion(**kwargs):
    return KnowledgeFusion(tolerance=0.0, max_iterations=8, **kwargs)


def _component_delta(store, value="fresh-value"):
    """A delta confined to the component of the first subject."""
    first = min(scored.triple.subject for scored in store.claims())
    prefix = first.split("/", 1)[0]
    return ClaimDelta(
        added=[
            ScoredTriple(
                Triple(first, "capital", Value(value)),
                Provenance(f"{prefix}/source00", "synthetic"),
                0.8,
            )
        ],
        label="one-component",
    )


class TestPrime:
    def test_prime_matches_full_fusion(self):
        store = _corpus()
        reference = _fusion().fuse(canonical_claims(store.copy()))
        engine = _fusion().begin_incremental(store)
        assert engine.result.canonical_bytes() == reference.canonical_bytes()

    def test_components_counted(self):
        engine = _fusion().begin_incremental(_corpus(n_worlds=5))
        assert engine.components == 5

    def test_sequence_starts_at_zero(self):
        engine = _fusion().begin_incremental(_corpus(n_worlds=2))
        assert engine.sequence == 0

    def test_unprimed_engine_refuses_state_access(self):
        engine = IncrementalFusion(_fusion(), _corpus(n_worlds=2))
        with pytest.raises(DeltaError):
            engine.claims
        with pytest.raises(DeltaError):
            engine.result
        with pytest.raises(DeltaError):
            engine.apply_delta(ClaimDelta())

    def test_apply_delta_before_begin_incremental_rejected(self):
        with pytest.raises(DeltaError):
            _fusion().apply_delta(ClaimDelta())


class TestApplyDelta:
    def test_single_component_delta_reuses_the_rest(self):
        engine = _fusion().begin_incremental(_corpus())
        outcome = engine.apply_delta(_component_delta(engine.store))
        assert outcome.sequence == 1
        assert outcome.components == 6
        assert outcome.dirty_components == 1
        assert outcome.reused_components == 5
        assert outcome.reused_verdicts > 0
        assert not outcome.degenerate
        assert outcome.receipt.added == 1

    def test_delta_result_matches_full_refusion(self):
        engine = _fusion().begin_incremental(_corpus())
        engine.apply_delta(_component_delta(engine.store))
        reference = _fusion().fuse(canonical_claims(engine.store.copy()))
        assert engine.result.canonical_bytes() == reference.canonical_bytes()

    def test_empty_delta_dirties_nothing(self):
        engine = _fusion().begin_incremental(_corpus(n_worlds=4))
        before = engine.result.canonical_bytes()
        outcome = engine.apply_delta(ClaimDelta(label="noop"))
        assert outcome.dirty_components == 0
        assert outcome.reused_components == 4
        assert engine.result.canonical_bytes() == before

    def test_retraction_dirties_its_component(self):
        engine = _fusion().begin_incremental(_corpus())
        victim = engine.store.claims()[0].triple
        outcome = engine.apply_delta(ClaimDelta(retracted=[victim]))
        assert outcome.dirty_components == 1
        assert outcome.receipt.removed_claims >= 1
        assert victim not in engine.store
        reference = _fusion().fuse(canonical_claims(engine.store.copy()))
        assert engine.result.canonical_bytes() == reference.canonical_bytes()

    def test_sequence_advances_per_delta(self):
        engine = _fusion().begin_incremental(_corpus(n_worlds=3))
        for expected in (1, 2, 3):
            outcome = engine.apply_delta(
                _component_delta(engine.store, value=f"v{expected}")
            )
            assert outcome.sequence == expected
        assert engine.sequence == 3

    def test_retracting_every_claim_rejected_and_state_kept(self):
        engine = _fusion().begin_incremental(_corpus(n_worlds=2))
        before_bytes = engine.result.canonical_bytes()
        before_claims = len(engine.store)
        wipe = ClaimDelta(
            retracted=[scored.triple for scored in engine.store.claims()]
        )
        with pytest.raises(DeltaError):
            engine.apply_delta(wipe)
        # The failed delta must not leak into the visible state.
        assert len(engine.store) == before_claims
        assert engine.result.canonical_bytes() == before_bytes
        assert engine.sequence == 0

    def test_cached_results_survive_caller_mutation(self):
        engine = _fusion().begin_incremental(_corpus(n_worlds=3))
        outcome = engine.apply_delta(ClaimDelta(label="noop"))
        # Trash the returned truth sets...
        for values in outcome.result.truths.values():
            values.clear()
        # ...then re-apply: the merged result must be rebuilt intact.
        fresh = engine.apply_delta(ClaimDelta(label="noop-2"))
        assert all(values for values in fresh.result.truths.values())
        reference = _fusion().fuse(canonical_claims(engine.store.copy()))
        assert fresh.result.canonical_bytes() == reference.canonical_bytes()

    def test_outcome_json_dict_shape(self):
        engine = _fusion().begin_incremental(_corpus(n_worlds=2))
        payload = engine.apply_delta(_component_delta(engine.store)).to_json_dict()
        assert payload["sequence"] == 1
        assert payload["components"] == 2
        assert payload["dirty_components"] == 1
        assert payload["receipt"]["added"] == 1
        assert payload["fused_items"] == len(engine.result.truths)
        assert payload["wall_seconds"] >= 0.0


class TestMetrics:
    def test_counters_and_gauges_published(self):
        registry = MetricsRegistry()
        engine = _fusion(metrics=registry).begin_incremental(
            _corpus(n_worlds=3)
        )
        engine.apply_delta(_component_delta(engine.store))
        snapshot = registry.snapshot()
        assert snapshot.counters["incremental_primes_total"] == 1
        assert snapshot.counters["incremental_deltas_total"] == 1
        assert snapshot.counters["incremental_dirty_components"] == 1
        assert snapshot.counters["incremental_reused_verdicts"] > 0
        assert snapshot.counters["incremental_claims_added_total"] == 1
        assert snapshot.gauges["incremental_components"] == 3
        assert snapshot.histograms["incremental_delta_seconds"].count == 1


class TestPerComponentEquivalence:
    def test_source_weights_split_like_components(self):
        """Per-component source-correlation weights equal the global
        estimate restricted to the component (no cross-component pair
        ever shares an item)."""
        store = _corpus(n_worlds=4)
        claims = canonical_claims(store)
        global_weights = CorrelationEstimator(by="source").estimate(
            claims
        ).weights
        for shard in shard_claims(claims):
            local = CorrelationEstimator(by="source").estimate(shard).weights
            for source in shard.sources():
                assert local.get(source, 1.0) == pytest.approx(
                    global_weights.get(source, 1.0)
                )
