"""Unit tests for the query-stream generator."""

import pytest

from repro.errors import GenerationError
from repro.synth.querylog import (
    PAPER_TABLE3_RELEVANT,
    QueryLogConfig,
    generate_query_log,
)


@pytest.fixture(scope="module")
def log(world):
    return generate_query_log(world, QueryLogConfig(seed=31, scale=0.002))


class TestValidation:
    def test_bad_scale_rejected(self, world):
        with pytest.raises(GenerationError):
            generate_query_log(world, QueryLogConfig(scale=0))

    def test_bad_zipf_rejected(self, world):
        with pytest.raises(GenerationError):
            generate_query_log(world, QueryLogConfig(zipf_exponent=0))


class TestVolumes:
    def test_relevant_counts_scale_with_paper(self, log):
        relevant = {}
        for record in log:
            if record.gold_class:
                relevant[record.gold_class] = (
                    relevant.get(record.gold_class, 0) + 1
                )
        for class_name, paper_count in PAPER_TABLE3_RELEVANT.items():
            expected = max(1, round(paper_count * 0.002))
            assert relevant[class_name] == expected

    def test_noise_dominates(self, log):
        noise = sum(1 for record in log if record.gold_class is None)
        relevant = len(log) - noise
        assert noise > relevant * 5

    def test_record_ids_unique(self, log):
        ids = [record.record_id for record in log]
        assert len(ids) == len(set(ids))


class TestContent:
    def test_hotel_has_no_attribute_intent(self, log):
        hotel_with_attribute = [
            record
            for record in log
            if record.gold_class == "Hotel" and record.gold_attribute
        ]
        hotel_total = [r for r in log if r.gold_class == "Hotel"]
        assert hotel_total
        assert len(hotel_with_attribute) <= max(1, len(hotel_total) // 10)

    def test_attribute_intent_uses_known_attributes(self, world, log):
        for record in log:
            if record.gold_attribute:
                assert record.gold_attribute in world.attribute_names(
                    record.gold_class
                )

    def test_gold_entities_valid(self, world, log):
        valid_ids = {
            entity.entity_id
            for class_name in world.classes()
            for entity in world.entities(class_name)
        }
        for record in log:
            if record.gold_entity:
                assert record.gold_entity in valid_ids

    def test_texts_nonempty(self, log):
        assert all(record.text.strip() for record in log)

    def test_deterministic(self, world):
        config = QueryLogConfig(seed=77, scale=0.001)
        first = generate_query_log(world, config)
        second = generate_query_log(world, config)
        assert [r.text for r in first[:50]] == [r.text for r in second[:50]]
