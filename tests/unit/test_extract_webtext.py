"""Unit tests for the Web-text extractor (pattern learning + harvest)."""

import pytest

from repro.extract.seeds import SeedSet
from repro.extract.webtext import WebTextExtractor, WebTextExtractorConfig
from repro.rdf.ontology import Entity
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.webtext import TextDocument


@pytest.fixture
def entity_index():
    return {
        "france": Entity("country/1", "France", "Country"),
        "japan": Entity("country/2", "Japan", "Country"),
    }


def seed_claim(subject, predicate, value):
    return ScoredTriple(
        Triple(subject, predicate, Value(value)),
        Provenance("freebase", "kb"),
    )


def doc(doc_id, text, class_name="Country", source="text.example.net"):
    return TextDocument(doc_id, source, class_name, text, ())


def make_extractor(entity_index, seeds=("capital",), claims=(), **kwargs):
    return WebTextExtractor(
        entity_index,
        {"Country": SeedSet("Country", seeds)},
        claims,
        WebTextExtractorConfig(min_pattern_support=1,
                               min_new_attribute_support=1, **kwargs),
    )


class TestLearning:
    def test_learns_from_seed_sentence(self, entity_index):
        extractor = make_extractor(
            entity_index,
            claims=[seed_claim("country/1", "capital", "Paris")],
        )
        adopted = extractor.learn(
            [doc("d1", "The capital of France is Paris.")]
        )
        assert adopted == 1
        assert "the <A> of <E> is <V> ." in extractor.learned_patterns

    def test_no_learning_without_seed_value(self, entity_index):
        extractor = make_extractor(entity_index, claims=[])
        adopted = extractor.learn(
            [doc("d1", "The capital of France is Paris.")]
        )
        assert adopted == 0

    def test_no_learning_without_entity(self, entity_index):
        extractor = make_extractor(
            entity_index,
            claims=[seed_claim("country/1", "capital", "Paris")],
        )
        adopted = extractor.learn(
            [doc("d1", "The capital of Atlantis is Paris.")]
        )
        assert adopted == 0

    def test_pattern_support_threshold(self, entity_index):
        extractor = WebTextExtractor(
            entity_index,
            {"Country": SeedSet("Country", ["capital"])},
            [seed_claim("country/1", "capital", "Paris")],
            WebTextExtractorConfig(min_pattern_support=2),
        )
        adopted = extractor.learn(
            [doc("d1", "The capital of France is Paris.")]
        )
        assert adopted == 0  # support 1 < 2

    def test_unknown_class_documents_ignored(self, entity_index):
        extractor = make_extractor(
            entity_index,
            claims=[seed_claim("country/1", "capital", "Paris")],
        )
        adopted = extractor.learn(
            [doc("d1", "The capital of France is Paris.", class_name="Comet")]
        )
        assert adopted == 0


class TestExtraction:
    def _learned(self, entity_index):
        extractor = make_extractor(
            entity_index,
            claims=[seed_claim("country/1", "capital", "Paris")],
        )
        extractor.learn([doc("d1", "The capital of France is Paris.")])
        return extractor

    def test_harvests_new_fact_via_pattern(self, entity_index):
        extractor = self._learned(entity_index)
        output = extractor.extract(
            [doc("d2", "The currency of Japan is Yen.")]
        )
        facts = {
            (s.triple.subject, s.triple.predicate, s.triple.obj.lexical)
            for s in output.triples
        }
        assert ("country/2", "currency", "Yen") in facts

    def test_new_attribute_reported(self, entity_index):
        extractor = self._learned(entity_index)
        output = extractor.extract(
            [doc("d2", "The currency of Japan is Yen.")]
        )
        assert "currency" in output.attribute_names("Country")

    def test_seed_attribute_not_reported_as_new(self, entity_index):
        extractor = self._learned(entity_index)
        output = extractor.extract(
            [doc("d2", "The capital of Japan is Tokyo.")]
        )
        assert "capital" not in output.attribute_names("Country")
        assert output.triples  # but the fact is still harvested

    def test_numeric_attribute_filtered(self, entity_index):
        extractor = self._learned(entity_index)
        output = extractor.extract([doc("d2", "The 99 of Japan is Yen.")])
        assert not output.triples

    def test_provenance_carries_doc(self, entity_index):
        extractor = self._learned(entity_index)
        output = extractor.extract(
            [doc("d2", "The currency of Japan is Yen.", source="text.abc.net")]
        )
        assert output.triples[0].provenance.source_id == "text.abc.net"
        assert output.triples[0].provenance.locator == "d2"


class TestOnGeneratedCorpus:
    def test_end_to_end(self, world, seed_sets, combined_kb_output,
                        webtext_documents):
        extractor = WebTextExtractor(
            world.entity_index(), seed_sets, combined_kb_output.triples
        )
        adopted = extractor.learn(webtext_documents)
        assert adopted >= 3  # the corpus realises four templates
        output = extractor.extract(webtext_documents)
        assert output.triples
        from repro.evalx.metrics import triple_precision

        assert triple_precision(world, output.triples) > 0.6
