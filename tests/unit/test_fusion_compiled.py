"""Unit tests for the compiled fusion engine.

The contract of :mod:`repro.fusion.compiled` is exact equivalence: the
flat-array kernels replay the float operation order of the dict-based
implementations, so decided truths must be identical and beliefs /
source qualities must agree within 1e-9 (they are bit-equal in
practice) at the same iteration counts.
"""

import pytest

from repro.fusion.accu import Accu, PopAccu
from repro.fusion.base import Claim, ClaimSet, value_key
from repro.fusion.compiled import compile_claims
from repro.fusion.confidence_weighted import GeneralizedSums, Investment
from repro.fusion.multitruth import MultiTruth
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


def claim(item, value, source, extractor="ex", confidence=1.0):
    return Claim(item, value_key(value), value, source, extractor, confidence)


def small_claims():
    return ClaimSet(
        [
            claim(("s1", "p"), "v1", "a", confidence=0.9),
            claim(("s1", "p"), "v1", "b", confidence=0.6),
            claim(("s1", "p"), "v2", "c", confidence=0.8),
            claim(("s2", "p"), "v1", "a", confidence=0.7),
            claim(("s2", "p"), "v3", "b", "other", confidence=0.5),
        ]
    )


class TestCompileClaims:
    def test_interning_and_shapes(self):
        claims = small_claims()
        compiled = compile_claims(claims)
        assert compiled.n_claims == len(claims) == 5
        assert compiled.n_items == 2
        assert compiled.n_pairs == 4
        assert set(compiled.sources) == {"a", "b", "c"}
        assert set(compiled.extractors) == {"ex", "other"}
        assert compiled.items == list(claims.items())

    def test_pairs_follow_values_of_order(self):
        claims = small_claims()
        compiled = compile_claims(claims)
        expected = [
            (item, value)
            for item in claims.items()
            for value in claims.values_of(item)
        ]
        assert [
            compiled.pair_key(p) for p in range(compiled.n_pairs)
        ] == expected

    def test_pair_claims_csr(self):
        claims = small_claims()
        compiled = compile_claims(claims)
        claim_list = list(claims)
        for pair in range(compiled.n_pairs):
            item, value = compiled.pair_key(pair)
            start = compiled.pair_claim_start[pair]
            stop = compiled.pair_claim_start[pair + 1]
            got = [claim_list[c] for c in compiled.pair_claim_ids[start:stop]]
            assert got == claims.values_of(item)[value]

    def test_source_claims_csr(self):
        claims = small_claims()
        compiled = compile_claims(claims)
        claim_list = list(claims)
        for s, name in enumerate(compiled.sources):
            start = compiled.source_claim_start[s]
            stop = compiled.source_claim_start[s + 1]
            got = [claim_list[c] for c in compiled.source_claim_ids[start:stop]]
            assert got == [c for c in claim_list if c.source_id == name]

    def test_item_sources_cover_claimants(self):
        claims = small_claims()
        compiled = compile_claims(claims)
        for i, item in enumerate(compiled.items):
            start = compiled.item_source_start[i]
            stop = compiled.item_source_start[i + 1]
            names = {
                compiled.sources[s]
                for s in compiled.item_sources[start:stop]
            }
            assert names == claims.sources_claiming(item)

    def test_pair_claimers_keep_max_confidence(self):
        claims = small_claims()
        compiled = compile_claims(claims)
        pair = [
            p for p in range(compiled.n_pairs)
            if compiled.pair_key(p) == (("s1", "p"), "v1")
        ][0]
        by_name = {
            compiled.sources[s]: conf
            for s, conf in compiled.pair_claimers[pair].items()
        }
        assert by_name == {"a": 0.9, "b": 0.6}

    def test_decode_beliefs_roundtrip(self):
        compiled = compile_claims(small_claims())
        scores = [float(p) for p in range(compiled.n_pairs)]
        decoded = compiled.decode_beliefs(scores)
        assert decoded[compiled.pair_key(2)] == 2.0
        assert len(decoded) == compiled.n_pairs


WORLDS = {
    "plain": ClaimWorldConfig(seed=5, n_items=80, n_sources=8),
    "multi-truth": ClaimWorldConfig(
        seed=6, n_items=60, n_sources=9, truths_per_item=2,
        source_accuracies=[0.85] * 9,
    ),
    "confidence": ClaimWorldConfig(
        seed=7, n_items=60, n_sources=8, confidence_informative=True,
    ),
    "copiers": ClaimWorldConfig(
        seed=8, n_items=60, n_sources=8, copier_cliques=2,
    ),
}

METHODS = {
    "accu": lambda compiled: Accu(compiled=compiled),
    "accu-tol0": lambda compiled: Accu(tolerance=0.0, compiled=compiled),
    "popaccu": lambda compiled: PopAccu(compiled=compiled),
    "multitruth": lambda compiled: MultiTruth(compiled=compiled),
    "multitruth-conf": lambda compiled: MultiTruth(
        use_confidence=True, compiled=compiled
    ),
    "gensums": lambda compiled: GeneralizedSums(compiled=compiled),
    "investment": lambda compiled: Investment(compiled=compiled),
}


class TestCompiledEquivalence:
    @pytest.mark.parametrize("world_name", sorted(WORLDS))
    @pytest.mark.parametrize("method_name", sorted(METHODS))
    def test_matches_legacy(self, world_name, method_name):
        claims = generate_claim_world(WORLDS[world_name]).claims
        make = METHODS[method_name]
        legacy = make(False).fuse(claims)
        compiled = make(True).fuse(claims)
        assert compiled.truths == legacy.truths
        assert compiled.iterations == legacy.iterations
        assert compiled.converged_at == legacy.converged_at
        assert compiled.belief.keys() == legacy.belief.keys()
        for key, score in legacy.belief.items():
            assert compiled.belief[key] == pytest.approx(score, abs=1e-9)
        assert (
            compiled.source_quality.keys() == legacy.source_quality.keys()
        )
        for source, quality in legacy.source_quality.items():
            assert compiled.source_quality[source] == pytest.approx(
                quality, abs=1e-9
            )

    def test_source_weights_respected(self):
        claims = generate_claim_world(WORLDS["copiers"]).claims
        weights = {
            source: 0.5 + 0.02 * i
            for i, source in enumerate(sorted(claims.sources()))
        }
        legacy = MultiTruth(source_weights=weights, compiled=False).fuse(
            claims
        )
        compiled = MultiTruth(source_weights=weights, compiled=True).fuse(
            claims
        )
        assert compiled.truths == legacy.truths
        for key, score in legacy.belief.items():
            assert compiled.belief[key] == pytest.approx(score, abs=1e-9)

    def test_initial_accuracies_respected(self):
        claims = generate_claim_world(WORLDS["plain"]).claims
        initial = {
            source: 0.6 + 0.03 * i
            for i, source in enumerate(sorted(claims.sources()))
        }
        legacy = Accu(initial_accuracies=initial, compiled=False).fuse(claims)
        compiled = Accu(initial_accuracies=initial, compiled=True).fuse(
            claims
        )
        assert compiled.truths == legacy.truths
        for key, score in legacy.belief.items():
            assert compiled.belief[key] == pytest.approx(score, abs=1e-9)
