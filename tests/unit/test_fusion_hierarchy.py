"""Unit tests for hierarchy-aware fusion."""

import pytest

from repro.fusion.accu import Accu
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.hierarchy import CasefoldHierarchy, HierarchicalFusion
from repro.fusion.multitruth import MultiTruth
from repro.rdf.hierarchy import ValueHierarchy
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


def claim(item, value, source):
    return Claim(item, value.casefold(), value, source, "ex")


@pytest.fixture
def locations():
    hierarchy = ValueHierarchy()
    hierarchy.add_chain(["Adelaide", "South Australia", "Australia"])
    hierarchy.add_chain(["Wuhan", "Hubei", "China"])
    return hierarchy


class TestCasefoldHierarchy:
    def test_ancestors_casefolded(self, locations):
        view = CasefoldHierarchy(locations)
        assert view.ancestors("adelaide") == ["south australia", "australia"]

    def test_depth(self, locations):
        view = CasefoldHierarchy(locations)
        assert view.depth("adelaide") == 2
        assert view.depth("australia") == 0

    def test_on_same_chain(self, locations):
        view = CasefoldHierarchy(locations)
        assert view.on_same_chain("adelaide", "australia")
        assert not view.on_same_chain("adelaide", "china")

    def test_contains(self, locations):
        view = CasefoldHierarchy(locations)
        assert "wuhan" in view
        assert "mars" not in view


class TestHierarchicalFusion:
    def test_invalid_decay_rejected(self, locations):
        with pytest.raises(ValueError):
            HierarchicalFusion(Accu(), locations, decay=0)

    def test_invalid_share_rejected(self, locations):
        with pytest.raises(ValueError):
            HierarchicalFusion(Accu(), locations, specialize_share=0)

    def test_related_values_support_each_other(self, locations):
        # Three sources: Adelaide, South Australia, Australia — all on
        # one chain — vs two sources on the wrong value.  Flat fusion
        # splits the chain's votes; hierarchical fusion pools them.
        claims = ClaimSet(
            [
                claim(("fang", "birth place"), "Adelaide", "s1"),
                claim(("fang", "birth place"), "South Australia", "s2"),
                claim(("fang", "birth place"), "Australia", "s3"),
                claim(("fang", "birth place"), "Wuhan", "s4"),
                claim(("fang", "birth place"), "Wuhan", "s5"),
            ]
        )
        flat = Accu().fuse(claims)
        assert flat.truths[("fang", "birth place")] == {"wuhan"}
        fused = HierarchicalFusion(Accu(), locations).fuse(claims)
        decided = fused.truths[("fang", "birth place")]
        assert "wuhan" not in decided
        assert decided & {"adelaide", "south australia", "australia"}

    def test_specialises_to_leaf(self, locations):
        claims = ClaimSet(
            [
                claim(("fang", "birth place"), "Adelaide", "s1"),
                claim(("fang", "birth place"), "Adelaide", "s2"),
                claim(("fang", "birth place"), "Australia", "s3"),
            ]
        )
        fused = HierarchicalFusion(Accu(), locations).fuse(claims)
        assert "adelaide" in fused.truths[("fang", "birth place")]

    def test_chain_generalisations_reported_true(self, locations):
        claims = ClaimSet(
            [
                claim(("fang", "birth place"), "Adelaide", "s1"),
                claim(("fang", "birth place"), "Adelaide", "s2"),
                claim(("fang", "birth place"), "Australia", "s3"),
            ]
        )
        fused = HierarchicalFusion(Accu(), locations).fuse(claims)
        decided = fused.truths[("fang", "birth place")]
        # Australia was observed and generalises the winner: also true.
        assert "australia" in decided

    def test_weak_minority_leaf_not_specialised(self, locations):
        claims = ClaimSet(
            [claim(("f", "bp"), "Australia", f"s{i}") for i in range(9)]
            + [claim(("f", "bp"), "Adelaide", "s9")]
        )
        fused = HierarchicalFusion(
            Accu(), locations, specialize_share=0.5
        ).fuse(claims)
        assert "adelaide" not in fused.truths[("f", "bp")]

    def test_non_hierarchical_values_untouched(self, locations):
        claims = ClaimSet(
            [
                claim(("b", "author"), "Jane", "s1"),
                claim(("b", "author"), "Jane", "s2"),
                claim(("b", "author"), "Tom", "s3"),
            ]
        )
        fused = HierarchicalFusion(Accu(), locations).fuse(claims)
        assert fused.truths[("b", "author")] == {"jane"}

    def test_improves_f1_on_hierarchical_world(self, locations):
        world = generate_claim_world(
            ClaimWorldConfig(
                seed=17, n_items=50, n_sources=8, hierarchical=True
            )
        )
        flat = Accu().fuse(world.claims)
        fused = HierarchicalFusion(Accu(), world.hierarchy).fuse(world.claims)

        def f1(truths):
            precision = world.precision_of(truths)
            recall = world.recall_of(truths)
            return (
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )

        assert f1(fused.truths) > f1(flat.truths)

    def test_works_with_multitruth_base(self, locations):
        world = generate_claim_world(
            ClaimWorldConfig(seed=19, n_items=30, n_sources=6,
                             hierarchical=True)
        )
        fused = HierarchicalFusion(MultiTruth(), world.hierarchy).fuse(
            world.claims
        )
        assert world.precision_of(fused.truths) > 0.8

    def test_method_name_wraps_base(self, locations):
        assert HierarchicalFusion(Accu(), locations).name == "hier(accu)"
