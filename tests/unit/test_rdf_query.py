"""Unit tests for the conjunctive query engine."""

import pytest

from repro.errors import StoreError
from repro.rdf.query import GraphQuery, TriplePattern, Var, select
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


@pytest.fixture
def store():
    s = TripleStore()
    prov = Provenance("src", "ex")
    facts = [
        ("uni/1", "location", "Adelaide"),
        ("uni/1", "founded", "1874"),
        ("uni/2", "location", "Melbourne"),
        ("uni/2", "founded", "1853"),
        ("uni/3", "location", "Adelaide"),
        ("uni/3", "founded", "1991"),
        ("city/adelaide", "state", "South Australia"),
    ]
    for subject, predicate, obj in facts:
        s.add(ScoredTriple(Triple(subject, predicate, Value(obj)), prov))
    return s


class TestValidation:
    def test_empty_query_rejected(self):
        with pytest.raises(StoreError):
            GraphQuery([])

    def test_filter_on_unknown_variable_rejected(self):
        with pytest.raises(StoreError):
            GraphQuery(
                [TriplePattern(Var("s"), "location", Var("o"))],
                filters={"ghost": lambda v: True},
            )

    def test_empty_var_name_rejected(self):
        with pytest.raises(StoreError):
            Var("")


class TestSinglePattern:
    def test_select_all(self, store):
        assert len(select(store)) == 7

    def test_bound_predicate(self, store):
        rows = select(store, predicate="location")
        assert {row["s"] for row in rows} == {"uni/1", "uni/2", "uni/3"}

    def test_bound_object(self, store):
        rows = select(store, predicate="location", obj="Adelaide")
        assert {row["s"] for row in rows} == {"uni/1", "uni/3"}

    def test_variable_predicate(self, store):
        rows = select(store, subject="uni/1")
        assert {row["p"] for row in rows} == {"location", "founded"}

    def test_no_match(self, store):
        assert select(store, subject="uni/9") == []


class TestJoins:
    def test_two_pattern_join(self, store):
        query = GraphQuery(
            [
                TriplePattern(Var("u"), "location", "Adelaide"),
                TriplePattern(Var("u"), "founded", Var("year")),
            ]
        )
        rows = query.solve(store)
        assert {(row["u"], row["year"]) for row in rows} == {
            ("uni/1", "1874"),
            ("uni/3", "1991"),
        }

    def test_chain_join_across_subjects(self, store):
        store.add(
            ScoredTriple(
                Triple("uni/1", "city ref", Value("city/adelaide")),
                Provenance("src", "ex"),
            )
        )
        query = GraphQuery(
            [
                TriplePattern(Var("u"), "city ref", Var("c")),
                TriplePattern(Var("c"), "state", Var("st")),
            ]
        )
        rows = query.solve(store)
        assert rows == [
            {"u": "uni/1", "c": "city/adelaide", "st": "South Australia"}
        ]

    def test_shared_variable_consistency(self, store):
        # u bound by first pattern must satisfy the second.
        query = GraphQuery(
            [
                TriplePattern(Var("u"), "location", Var("city")),
                TriplePattern(Var("u"), "founded", "1853"),
            ]
        )
        rows = query.solve(store)
        assert rows == [{"u": "uni/2", "city": "Melbourne"}]

    def test_cartesian_when_disjoint(self, store):
        query = GraphQuery(
            [
                TriplePattern(Var("a"), "founded", "1874"),
                TriplePattern(Var("b"), "founded", "1853"),
            ]
        )
        rows = query.solve(store)
        assert rows == [{"a": "uni/1", "b": "uni/2"}]


class TestFilters:
    def test_filter_applies(self, store):
        query = GraphQuery(
            [TriplePattern(Var("u"), "founded", Var("year"))],
            filters={"year": lambda year: year < "1900"},
        )
        rows = query.solve(store)
        assert {row["u"] for row in rows} == {"uni/1", "uni/2"}

    def test_filter_can_reject_everything(self, store):
        query = GraphQuery(
            [TriplePattern(Var("u"), "founded", Var("year"))],
            filters={"year": lambda year: False},
        )
        assert query.solve(store) == []


class TestTermForms:
    def test_value_object_term(self, store):
        query = GraphQuery(
            [TriplePattern(Var("u"), "location", Value("Adelaide"))]
        )
        assert len(query.solve(store)) == 2

    def test_iterator_interface(self, store):
        query = GraphQuery([TriplePattern(Var("u"), "founded", Var("y"))])
        assert len(list(query.iter_solutions(store))) == 3
