"""Unit tests for the multi-truth Bayesian model."""

import pytest

from repro.errors import FusionError
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.multitruth import MultiTruth
from repro.fusion.vote import Vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


def claim(item, value, source, confidence=1.0):
    return Claim(item, value, value, source, "ex", confidence)


class TestValidation:
    def test_bad_prior(self):
        with pytest.raises(FusionError):
            MultiTruth(prior=0.0)

    def test_bad_threshold(self):
        with pytest.raises(FusionError):
            MultiTruth(threshold=1.0)


class TestMultiTruthDecisions:
    def test_multiple_truths_decided(self):
        # Three of four sources assert both values; both should pass.
        claims = ClaimSet(
            [
                claim(("film", "cast"), "alice", "s1"),
                claim(("film", "cast"), "bob", "s1"),
                claim(("film", "cast"), "alice", "s2"),
                claim(("film", "cast"), "bob", "s2"),
                claim(("film", "cast"), "alice", "s3"),
                claim(("film", "cast"), "bob", "s3"),
                claim(("film", "cast"), "carol", "s4"),
            ]
        )
        result = MultiTruth().fuse(claims)
        assert {"alice", "bob"} <= result.truths[("film", "cast")]
        assert "carol" not in result.truths[("film", "cast")]

    def test_never_returns_empty_decision(self):
        claims = ClaimSet([claim(("s", "p"), "lonely", "s1")])
        result = MultiTruth(prior=0.05).fuse(claims)
        assert result.truths[("s", "p")] == {"lonely"}

    def test_posteriors_are_probabilities(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=2, n_items=30, n_sources=6)
        )
        result = MultiTruth().fuse(world.claims)
        assert all(0 <= p <= 1 for p in result.belief.values())

    def test_outperforms_vote_on_multi_truth_items(self):
        world = generate_claim_world(
            ClaimWorldConfig(
                seed=9, n_items=60, n_sources=10, truths_per_item=2,
                source_accuracies=[0.85] * 10,
            )
        )
        vote_result = Vote().fuse(world.claims)
        multi_result = MultiTruth().fuse(world.claims)
        # VOTE picks exactly one value, capping recall near 50%.
        assert world.recall_of(vote_result.truths) < 0.6
        assert world.recall_of(multi_result.truths) > (
            world.recall_of(vote_result.truths) + 0.2
        )

    def test_quality_estimates_separate_good_and_bad(self):
        world = generate_claim_world(
            ClaimWorldConfig(
                seed=4, n_items=80, n_sources=8,
                source_accuracies=[0.95, 0.95, 0.95, 0.9, 0.4, 0.4, 0.35, 0.35],
                false_pool=3,
            )
        )
        result = MultiTruth().fuse(world.claims)
        good = [s for s, a in world.source_accuracy.items() if a > 0.85]
        bad = [s for s, a in world.source_accuracy.items() if a < 0.5]
        avg = lambda xs: sum(result.source_quality[s] for s in xs) / len(xs)
        assert avg(good) > avg(bad)

    def test_converges(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=7, n_items=40, n_sources=6)
        )
        result = MultiTruth(max_iterations=50).fuse(world.claims)
        assert result.iterations < 50


class TestConfidenceHandling:
    def test_confidence_tempered_evidence(self):
        # Two bold wrong sources vs three timid right ones: with
        # confidence on, the timid majority still wins because the
        # bold pair's ratio is not amplified.
        claims = ClaimSet(
            [
                claim(("s", "p"), "wrong", "w1", confidence=1.0),
                claim(("s", "p"), "wrong", "w2", confidence=1.0),
                claim(("s", "p"), "right", "r1", confidence=0.9),
                claim(("s", "p"), "right", "r2", confidence=0.9),
                claim(("s", "p"), "right", "r3", confidence=0.9),
            ]
        )
        result = MultiTruth(use_confidence=True).fuse(claims)
        assert "right" in result.truths[("s", "p")]

    def test_informative_confidence_helps(self):
        base_config = dict(
            seed=13, n_items=70, n_sources=8,
            source_accuracies=[0.6] * 8, false_pool=3,
        )
        world = generate_claim_world(
            ClaimWorldConfig(confidence_informative=True, **base_config)
        )
        without = MultiTruth(use_confidence=False).fuse(world.claims)
        with_conf = MultiTruth(use_confidence=True).fuse(world.claims)
        assert world.precision_of(with_conf.truths) >= world.precision_of(
            without.truths
        )


class TestSourceWeights:
    def test_weights_discount_copier_clique(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=2, n_items=60, n_sources=8, copier_cliques=2)
        )
        weights = {
            source: (0.25 if source in world.copier_of else 1.0)
            for source in world.claims.sources()
        }
        unweighted = MultiTruth().fuse(world.claims)
        weighted = MultiTruth(source_weights=weights).fuse(world.claims)
        assert world.precision_of(weighted.truths) > world.precision_of(
            unweighted.truths
        )
