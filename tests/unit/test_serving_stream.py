"""Unit tests for the serving event log (offsets, groups, backpressure)."""

import pytest

from repro.errors import BackpressureError, ServingError
from repro.incremental.delta import ClaimDelta
from repro.obs.metrics import MetricsRegistry
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.serving.stream import EventLog, delta_event_id


def delta(subject="e1", value="v1", label="d"):
    return ClaimDelta(
        added=[
            ScoredTriple(
                Triple(subject, "attr", Value(value)),
                Provenance("src", "ex"),
                0.7,
            )
        ],
        retracted=[],
        label=label,
    )


class TestEventIds:
    def test_content_digest_is_stable_and_content_sensitive(self):
        assert delta_event_id(delta()) == delta_event_id(delta())
        assert delta_event_id(delta()) != delta_event_id(delta(value="v2"))
        assert delta_event_id(delta()).startswith("sha:")

    def test_append_defaults_to_content_id_and_accepts_override(self):
        log = EventLog()
        auto = log.append(delta())
        manual = log.append(delta(), event_id="explicit-7")
        assert auto.event_id == delta_event_id(delta())
        assert manual.event_id == "explicit-7"


class TestOffsets:
    def test_offsets_are_dense_append_order(self):
        log = EventLog()
        events = [log.append(delta(value=f"v{i}")) for i in range(4)]
        assert [event.offset for event in events] == [0, 1, 2, 3]
        assert log.head == 4
        assert log.read(2) is events[2]

    def test_read_out_of_range_raises(self):
        log = EventLog()
        log.append(delta())
        with pytest.raises(ServingError):
            log.read(1)
        with pytest.raises(ServingError):
            log.read(-1)

    def test_delivery_does_not_advance_only_commit_does(self):
        log = EventLog()
        log.register("g")
        first = log.append(delta(value="a"))
        log.append(delta(value="b"))
        # Re-reading redelivers the same event: at-least-once.
        assert log.next_event("g") is first
        assert log.next_event("g") is first
        assert log.lag("g") == 2
        log.commit_offset("g", 1)
        assert log.next_event("g").offset == 1
        assert log.committed("g") == 1

    def test_caught_up_group_gets_none(self):
        log = EventLog()
        log.register("g")
        assert log.next_event("g") is None

    def test_commit_cannot_rewind_or_overrun(self):
        log = EventLog()
        log.register("g")
        log.append(delta())
        log.commit_offset("g", 1)
        with pytest.raises(ServingError):
            log.commit_offset("g", 0)  # rewind
        with pytest.raises(ServingError):
            log.commit_offset("g", 2)  # past head


class TestGroups:
    def test_unknown_group_raises(self):
        log = EventLog()
        with pytest.raises(ServingError):
            log.next_event("ghost")
        with pytest.raises(ServingError):
            log.lag("ghost")

    def test_reregister_is_a_noop(self):
        log = EventLog()
        log.register("g")
        log.append(delta())
        log.commit_offset("g", 1)
        log.register("g")  # reconnect must not reset durable progress
        assert log.committed("g") == 1

    def test_register_beyond_head_rejected(self):
        log = EventLog()
        with pytest.raises(ServingError):
            log.register("g", offset=1)


class TestBackpressure:
    def test_backlog_bound_sheds_load_with_reason(self):
        metrics = MetricsRegistry()
        log = EventLog(capacity=2, metrics=metrics)
        log.register("g")
        log.append(delta(value="a"))
        log.append(delta(value="b"))
        with pytest.raises(BackpressureError) as excinfo:
            log.append(delta(value="c"))
        assert excinfo.value.reason == "consumer-lag"
        # Rejected, not silently dropped: the log is untouched and the
        # rejection is counted.
        assert log.head == 2
        assert (
            metrics.counter(
                "stream_rejected_total", reason="consumer-lag"
            ).value
            == 1
        )

    def test_consumer_progress_relieves_backpressure(self):
        log = EventLog(capacity=2)
        log.register("g")
        log.append(delta(value="a"))
        log.append(delta(value="b"))
        log.commit_offset("g", 1)
        assert log.append(delta(value="c")).offset == 2

    def test_slowest_group_governs_the_bound(self):
        log = EventLog(capacity=2)
        log.register("fast")
        log.register("slow")
        log.append(delta(value="a"))
        log.append(delta(value="b"))
        log.commit_offset("fast", 2)
        with pytest.raises(BackpressureError):
            log.append(delta(value="c"))

    def test_groupless_log_is_absolutely_capped(self):
        log = EventLog(capacity=1)
        log.append(delta(value="a"))
        with pytest.raises(BackpressureError):
            log.append(delta(value="b"))


class TestUnregister:
    def test_unregister_unknown_group_raises(self):
        log = EventLog()
        with pytest.raises(ServingError, match="unknown consumer group"):
            log.unregister("ghost")

    def test_dead_group_unwedges_append(self):
        # Regression: a decommissioned consumer group that is never
        # unregistered clamps slowest_committed() forever; once it lags
        # `capacity` events every publish rejects even though the live
        # consumers are fully caught up.
        log = EventLog(capacity=2)
        log.register("dead", offset=0)
        log.register("live", offset=0)
        log.append(delta(value="v1"))
        log.append(delta(value="v2"))
        log.commit_offset("live", 2)  # live fully caught up

        with pytest.raises(BackpressureError):
            log.append(delta(value="v3"))  # wedged by the dead group

        log.unregister("dead")
        event = log.append(delta(value="v3"))  # unwedged
        assert event.offset == 2
        assert log.lag("live") == 1

    def test_unregister_releases_the_compaction_bound_too(self):
        log = EventLog(capacity=8)
        log.register("dead", offset=0)
        log.register("live", offset=0)
        for i in range(4):
            log.append(delta(value=f"v{i}"))
        log.commit_offset("live", 4)
        assert log.base == 0  # dead group pins the committed prefix
        log.unregister("dead")
        log.commit_offset("live", 4)  # no-op commit triggers compaction
        assert log.base == 4


class TestCompaction:
    def fill(self, log, n, *, start=0):
        return [log.append(delta(value=f"v{start + i}")) for i in range(n)]

    def test_committed_prefix_compacts_behind_logical_offsets(self):
        metrics = MetricsRegistry()
        log = EventLog(capacity=1024, metrics=metrics)
        log.register("g", offset=0)
        self.fill(log, 4)
        log.commit_offset("g", 3)

        assert log.base == 3  # 3 droppable of 4 buffered -> compacted
        assert log.head == 4  # logical offsets unaffected
        assert log.lag("g") == 1
        assert log.read(3).offset == 3  # retained suffix readable
        assert metrics.counter("stream_compacted_total").value == 3

    def test_read_below_base_raises_like_never_written(self):
        log = EventLog()
        log.register("g", offset=0)
        self.fill(log, 4)
        log.commit_offset("g", 4)
        assert log.base == 4
        for offset in (0, 3, 4):
            with pytest.raises(ServingError, match="out of range"):
                log.read(offset)

    def test_compaction_waits_for_the_slowest_group(self):
        log = EventLog()
        log.register("fast", offset=0)
        log.register("slow", offset=0)
        self.fill(log, 4)
        log.commit_offset("fast", 4)
        assert log.base == 0  # slow still needs offset 0
        log.commit_offset("slow", 2)
        assert log.base == 2  # now only the uncommitted suffix is held

    def test_groupless_log_never_compacts(self):
        log = EventLog()
        self.fill(log, 4)
        assert log.compact() == 0
        assert log.base == 0

    def test_has_id_tracks_retained_occurrences(self):
        log = EventLog()
        log.register("g", offset=0)
        first = log.append(delta(value="dup"))
        log.append(delta(value="dup"))  # same content id, second offset
        log.append(delta(value="other"))
        assert log.has_id(first.event_id)

        log.commit_offset("g", 1)
        log.compact()  # drops one of the two occurrences
        assert log.has_id(first.event_id)  # one occurrence retained

        log.commit_offset("g", 3)
        assert log.base == 3
        assert not log.has_id(first.event_id)  # every occurrence gone

    def test_register_below_base_is_rejected(self):
        log = EventLog()
        log.register("g", offset=0)
        self.fill(log, 4)
        log.commit_offset("g", 4)
        assert log.base == 4
        with pytest.raises(ServingError, match="retains"):
            log.register("late", offset=2)

    def test_slowest_committed_is_base_when_groupless(self):
        # Regression: the docstring used to promise "head if none"
        # while the code returned 0; the contract is the log's base.
        log = EventLog()
        log.register("g", offset=0)
        self.fill(log, 4)
        log.commit_offset("g", 4)
        log.unregister("g")
        assert log.slowest_committed() == log.base == 4
