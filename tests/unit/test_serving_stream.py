"""Unit tests for the serving event log (offsets, groups, backpressure)."""

import pytest

from repro.errors import BackpressureError, ServingError
from repro.incremental.delta import ClaimDelta
from repro.obs.metrics import MetricsRegistry
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.serving.stream import EventLog, delta_event_id


def delta(subject="e1", value="v1", label="d"):
    return ClaimDelta(
        added=[
            ScoredTriple(
                Triple(subject, "attr", Value(value)),
                Provenance("src", "ex"),
                0.7,
            )
        ],
        retracted=[],
        label=label,
    )


class TestEventIds:
    def test_content_digest_is_stable_and_content_sensitive(self):
        assert delta_event_id(delta()) == delta_event_id(delta())
        assert delta_event_id(delta()) != delta_event_id(delta(value="v2"))
        assert delta_event_id(delta()).startswith("sha:")

    def test_append_defaults_to_content_id_and_accepts_override(self):
        log = EventLog()
        auto = log.append(delta())
        manual = log.append(delta(), event_id="explicit-7")
        assert auto.event_id == delta_event_id(delta())
        assert manual.event_id == "explicit-7"


class TestOffsets:
    def test_offsets_are_dense_append_order(self):
        log = EventLog()
        events = [log.append(delta(value=f"v{i}")) for i in range(4)]
        assert [event.offset for event in events] == [0, 1, 2, 3]
        assert log.head == 4
        assert log.read(2) is events[2]

    def test_read_out_of_range_raises(self):
        log = EventLog()
        log.append(delta())
        with pytest.raises(ServingError):
            log.read(1)
        with pytest.raises(ServingError):
            log.read(-1)

    def test_delivery_does_not_advance_only_commit_does(self):
        log = EventLog()
        log.register("g")
        first = log.append(delta(value="a"))
        log.append(delta(value="b"))
        # Re-reading redelivers the same event: at-least-once.
        assert log.next_event("g") is first
        assert log.next_event("g") is first
        assert log.lag("g") == 2
        log.commit_offset("g", 1)
        assert log.next_event("g").offset == 1
        assert log.committed("g") == 1

    def test_caught_up_group_gets_none(self):
        log = EventLog()
        log.register("g")
        assert log.next_event("g") is None

    def test_commit_cannot_rewind_or_overrun(self):
        log = EventLog()
        log.register("g")
        log.append(delta())
        log.commit_offset("g", 1)
        with pytest.raises(ServingError):
            log.commit_offset("g", 0)  # rewind
        with pytest.raises(ServingError):
            log.commit_offset("g", 2)  # past head


class TestGroups:
    def test_unknown_group_raises(self):
        log = EventLog()
        with pytest.raises(ServingError):
            log.next_event("ghost")
        with pytest.raises(ServingError):
            log.lag("ghost")

    def test_reregister_is_a_noop(self):
        log = EventLog()
        log.register("g")
        log.append(delta())
        log.commit_offset("g", 1)
        log.register("g")  # reconnect must not reset durable progress
        assert log.committed("g") == 1

    def test_register_beyond_head_rejected(self):
        log = EventLog()
        with pytest.raises(ServingError):
            log.register("g", offset=1)


class TestBackpressure:
    def test_backlog_bound_sheds_load_with_reason(self):
        metrics = MetricsRegistry()
        log = EventLog(capacity=2, metrics=metrics)
        log.register("g")
        log.append(delta(value="a"))
        log.append(delta(value="b"))
        with pytest.raises(BackpressureError) as excinfo:
            log.append(delta(value="c"))
        assert excinfo.value.reason == "consumer-lag"
        # Rejected, not silently dropped: the log is untouched and the
        # rejection is counted.
        assert log.head == 2
        assert (
            metrics.counter(
                "stream_rejected_total", reason="consumer-lag"
            ).value
            == 1
        )

    def test_consumer_progress_relieves_backpressure(self):
        log = EventLog(capacity=2)
        log.register("g")
        log.append(delta(value="a"))
        log.append(delta(value="b"))
        log.commit_offset("g", 1)
        assert log.append(delta(value="c")).offset == 2

    def test_slowest_group_governs_the_bound(self):
        log = EventLog(capacity=2)
        log.register("fast")
        log.register("slow")
        log.append(delta(value="a"))
        log.append(delta(value="b"))
        log.commit_offset("fast", 2)
        with pytest.raises(BackpressureError):
            log.append(delta(value="c"))

    def test_groupless_log_is_absolutely_capped(self):
        log = EventLog(capacity=1)
        log.append(delta(value="a"))
        with pytest.raises(BackpressureError):
            log.append(delta(value="b"))
