"""Unit tests for tag paths and tag-path similarity."""

import pytest

from repro.htmldom.parser import parse_html
from repro.htmldom.tagpath import (
    RelativeTagPath,
    absolute_path,
    relative_path,
    sequence_similarity,
)

MARKUP = """
<html><body>
  <h1 class="entity-name">France</h1>
  <table class="infobox">
    <tr><th>Capital</th><td><b>Paris</b></td></tr>
    <tr><th>Population</th><td>67M</td></tr>
  </table>
</body></html>
"""


@pytest.fixture
def nodes():
    doc = parse_html(MARKUP)
    return {t.text: t for t in doc.iter_text_nodes()}


class TestAbsolutePath:
    def test_text_node_path(self, nodes):
        assert absolute_path(nodes["Capital"]) == (
            "html", "body", "table", "tr", "th",
        )

    def test_noisy_tags_removed(self, nodes):
        assert absolute_path(nodes["Paris"]) == (
            "html", "body", "table", "tr", "td",
        )

    def test_noisy_tags_kept_when_clean_false(self, nodes):
        assert absolute_path(nodes["Paris"], clean=False)[-1] == "b"

    def test_with_classes(self, nodes):
        path = absolute_path(nodes["France"], with_classes=True)
        assert path[-1] == "h1.entity-name"

    def test_element_path_includes_self(self, nodes):
        table = nodes["Capital"].parent.parent.parent
        assert absolute_path(table)[-1] == "table"


class TestSequenceSimilarity:
    def test_identical(self):
        assert sequence_similarity(("a", "b"), ("a", "b")) == 1.0

    def test_empty_both(self):
        assert sequence_similarity((), ()) == 1.0

    def test_disjoint(self):
        assert sequence_similarity(("a",), ("b",)) == 0.0

    def test_one_edit(self):
        assert sequence_similarity(("a", "b", "c"), ("a", "x", "c")) == (
            pytest.approx(2 / 3)
        )

    def test_length_mismatch(self):
        assert 0 < sequence_similarity(("a", "b"), ("a", "b", "c")) < 1

    def test_symmetry(self):
        left, right = ("a", "b", "c"), ("a", "c")
        assert sequence_similarity(left, right) == sequence_similarity(
            right, left
        )


class TestRelativePath:
    def test_between_heading_and_label(self, nodes):
        path = relative_path(nodes["France"], nodes["Capital"])
        assert path.up == ("h1",)
        assert path.lca == "body"
        assert path.down == ("table", "tr", "th")

    def test_same_shape_labels_have_equal_paths(self, nodes):
        path_one = relative_path(nodes["France"], nodes["Capital"])
        path_two = relative_path(nodes["France"], nodes["Population"])
        assert path_one == path_two
        assert path_one.similarity(path_two) == 1.0

    def test_label_vs_value_differ(self, nodes):
        label = relative_path(nodes["France"], nodes["Capital"])
        value = relative_path(nodes["France"], nodes["Paris"])
        assert label != value
        assert label.similarity(value) < 1.0

    def test_lca_mismatch_halves_similarity(self):
        left = RelativeTagPath(("h1",), "body", ("table", "tr", "th"))
        right = RelativeTagPath(("h1",), "div", ("table", "tr", "th"))
        assert right.similarity(left) == 0.5

    def test_different_documents_rejected(self, nodes):
        other = parse_html(MARKUP)
        foreign = next(other.iter_text_nodes())
        with pytest.raises(ValueError):
            relative_path(nodes["France"], foreign)

    def test_str_rendering(self):
        path = RelativeTagPath(("h1",), "body", ("table", "tr"))
        assert str(path) == "h1 ^body table/tr"

    def test_with_classes(self, nodes):
        path = relative_path(
            nodes["France"], nodes["Capital"], with_classes=True
        )
        assert path.up == ("h1.entity-name",)
        assert path.down == ("table.infobox", "tr", "th")
