"""Unit tests for functionality-degree estimation."""

import pytest

from repro.errors import FusionError
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.functionality import (
    FunctionalityEstimator,
    functional_oracle_from_claims,
)
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


def claim(subject, predicate, value, source):
    return Claim((subject, predicate), value, value, source, "ex")


def functional_vs_multivalued_claims():
    """'birthdate' single-valued per source; 'child' multi-valued."""
    claims = ClaimSet()
    for index in range(6):
        subject = f"p{index}"
        for source in ("s1", "s2"):
            claims.add(claim(subject, "birthdate", f"date-{index}", source))
            claims.add(claim(subject, "child", f"kid-{index}-a", source))
            claims.add(claim(subject, "child", f"kid-{index}-b", source))
            claims.add(claim(subject, "child", f"kid-{index}-c", source))
    return claims


class TestEstimator:
    def test_bad_min_observations(self):
        with pytest.raises(FusionError):
            FunctionalityEstimator(min_observations=0)

    def test_functional_predicate_degree_one(self):
        estimate = FunctionalityEstimator().estimate(
            functional_vs_multivalued_claims()
        )
        assert estimate.of("birthdate") == 1.0

    def test_multivalued_predicate_low_degree(self):
        estimate = FunctionalityEstimator().estimate(
            functional_vs_multivalued_claims()
        )
        assert estimate.of("child") == pytest.approx(1 / 3)

    def test_cross_source_conflict_not_multivalued(self):
        # Two sources disagreeing on one value each: still functional.
        claims = ClaimSet()
        for index in range(6):
            claims.add(claim(f"e{index}", "capital", f"a{index}", "s1"))
            claims.add(claim(f"e{index}", "capital", f"b{index}", "s2"))
        estimate = FunctionalityEstimator().estimate(claims)
        assert estimate.of("capital") == 1.0

    def test_sparse_predicates_keep_default(self):
        claims = ClaimSet(
            [claim("e1", "rare", "v1", "s1"), claim("e1", "rare", "v2", "s1")]
        )
        estimate = FunctionalityEstimator(min_observations=5).estimate(claims)
        assert estimate.of("rare") == 1.0

    def test_is_functional_threshold(self):
        estimate = FunctionalityEstimator().estimate(
            functional_vs_multivalued_claims()
        )
        assert estimate.is_functional("birthdate")
        assert not estimate.is_functional("child")


class TestOracle:
    def test_oracle_on_synthetic_world(self):
        # truths_per_item up to 3 and honest sources assert all truths.
        multi = generate_claim_world(
            ClaimWorldConfig(
                seed=3, n_items=60, n_sources=8, truths_per_item=3,
                source_accuracies=[0.9] * 8,
            )
        )
        oracle = functional_oracle_from_claims(multi.claims)
        assert not oracle("attr")  # the generator's single predicate

        single = generate_claim_world(
            ClaimWorldConfig(
                seed=3, n_items=60, n_sources=8, truths_per_item=1,
                source_accuracies=[0.9] * 8,
            )
        )
        oracle = functional_oracle_from_claims(single.claims)
        assert oracle("attr")

    def test_oracle_unknown_predicate_defaults_functional(self):
        world = generate_claim_world(ClaimWorldConfig(seed=1, n_items=20))
        oracle = functional_oracle_from_claims(world.claims)
        assert oracle("never seen")


class TestPipelineAgreement:
    def test_estimated_functionality_matches_schema(self, world,
                                                    combined_kb_output):
        """The unsupervised estimate agrees with the ground-truth schema
        on the majority of well-observed attributes."""
        from repro.fusion.base import ClaimSet as CS
        from repro.fusion.functionality import FunctionalityEstimator

        claims = CS.from_scored_triples(combined_kb_output.triples)
        estimate = FunctionalityEstimator(min_observations=8).estimate(claims)
        schema = {}
        for class_name in world.classes():
            for spec in world.catalogs[class_name].attributes:
                schema.setdefault(spec.name, spec.functional)
        checked = 0
        agreements = 0
        for predicate, degree in estimate.degree.items():
            if predicate not in schema:
                continue
            checked += 1
            agreements += (
                estimate.is_functional(predicate) == schema[predicate]
            )
        assert checked > 20
        assert agreements / checked > 0.8
