"""Unit tests for the HTML parser (tree construction)."""

from repro.htmldom.node import ElementNode, TextNode
from repro.htmldom.parser import parse_fragment, parse_html


class TestBasicTrees:
    def test_nested_structure(self):
        doc = parse_html("<html><body><p>hi</p></body></html>")
        body = doc.body
        assert body is not None
        paragraph = body.find("p")
        assert paragraph.text_content() == "hi"

    def test_document_root_tag(self):
        doc = parse_html("<p>x</p>")
        assert doc.tag == "#document"

    def test_html_property(self):
        assert parse_html("<html></html>").html is not None
        assert parse_html("<p>x</p>").html is None

    def test_attributes_preserved(self):
        doc = parse_html('<div id="main" class="wide"></div>')
        div = doc.find("div")
        assert div.get("id") == "main"
        assert div.get("missing", "d") == "d"

    def test_void_element_has_no_children(self):
        doc = parse_html("<p>a<br>b</p>")
        paragraph = doc.find("p")
        tags = [
            child.tag
            for child in paragraph.children
            if isinstance(child, ElementNode)
        ]
        assert tags == ["br"]
        assert paragraph.text_content() == "a b"

    def test_parent_links(self):
        doc = parse_html("<div><span>x</span></div>")
        span = doc.find("span")
        assert span.parent.tag == "div"
        text = span.children[0]
        assert isinstance(text, TextNode)
        assert text.root() is doc


class TestImpliedEndTags:
    def test_li_closes_li(self):
        doc = parse_html("<ul><li>a<li>b<li>c</ul>")
        items = doc.find_all("li")
        assert [li.text_content() for li in items] == ["a", "b", "c"]
        # siblings, not nested
        assert all(li.parent.tag == "ul" for li in items)

    def test_p_closes_p(self):
        doc = parse_html("<p>one<p>two")
        paragraphs = doc.find_all("p")
        assert len(paragraphs) == 2

    def test_table_cells_close_each_other(self):
        doc = parse_html("<table><tr><td>a<td>b<tr><td>c</table>")
        rows = doc.find_all("tr")
        assert len(rows) == 2
        assert len(rows[0].find_all("td")) == 2

    def test_dt_dd_close_each_other(self):
        doc = parse_html("<dl><dt>k<dd>v<dt>k2<dd>v2</dl>")
        assert len(doc.find_all("dt")) == 2
        assert len(doc.find_all("dd")) == 2


class TestRecovery:
    def test_stray_end_tag_ignored(self):
        doc = parse_html("<div>a</span>b</div>")
        # Adjacent text runs are normalised into one node.
        div = doc.find("div")
        assert div.text_content() == "ab"
        assert len(div.children) == 1

    def test_unclosed_elements_at_eof(self):
        doc = parse_html("<div><p>open")
        assert doc.find("p").text_content() == "open"

    def test_mismatched_close_pops_to_match(self):
        doc = parse_html("<div><span>x</div>y")
        div = doc.find("div")
        assert div.text_content() == "x"

    def test_comments_dropped(self):
        doc = parse_html("<div><!-- note -->x</div>")
        assert doc.find("div").text_content() == "x"


class TestTraversal:
    def test_iter_text_nodes_skips_blank(self):
        doc = parse_html("<div>  <p>a</p>\n<p>b</p> </div>")
        assert [t.text for t in doc.iter_text_nodes()] == ["a", "b"]

    def test_iter_elements_by_tag(self):
        doc = parse_html("<div><p>a</p><span><p>b</p></span></div>")
        assert len(list(doc.iter_elements("p"))) == 2

    def test_document_order(self):
        doc = parse_html("<div><p>1</p><p>2</p><p>3</p></div>")
        texts = [t.text for t in doc.iter_text_nodes()]
        assert texts == ["1", "2", "3"]

    def test_parse_fragment(self):
        nodes = parse_fragment("<p>a</p><p>b</p>")
        assert len(nodes) == 2
