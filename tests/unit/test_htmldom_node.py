"""Unit tests for the DOM node model (direct construction)."""

from repro.htmldom.node import Document, ElementNode, TextNode


def sample_tree():
    doc = Document()
    html = doc.append_element("html")
    body = html.append_element("body")
    div = body.append_element("div", {"class": "main", "id": "content"})
    div.append_text("hello")
    span = div.append_element("span")
    span.append_text("world")
    body.append_element("div", {"class": "footer"})
    return doc


class TestConstruction:
    def test_append_sets_parent(self):
        doc = sample_tree()
        div = doc.find("div")
        assert div.parent.tag == "body"

    def test_append_text_returns_node(self):
        element = ElementNode("p")
        text = element.append_text("x")
        assert isinstance(text, TextNode)
        assert text.parent is element

    def test_tag_lowercased(self):
        assert ElementNode("DIV").tag == "div"

    def test_root(self):
        doc = sample_tree()
        deepest = list(doc.iter_text_nodes())[-1]
        assert deepest.root() is doc


class TestTraversal:
    def test_iter_nodes_preorder(self):
        doc = sample_tree()
        tags = [
            node.tag
            for node in doc.iter_nodes()
            if isinstance(node, ElementNode)
        ]
        assert tags == ["#document", "html", "body", "div", "span", "div"]

    def test_iter_elements_filtered(self):
        doc = sample_tree()
        assert len(list(doc.iter_elements("div"))) == 2

    def test_find_first_match(self):
        doc = sample_tree()
        assert doc.find("div").get("id") == "content"

    def test_find_missing_returns_none(self):
        assert sample_tree().find("table") is None

    def test_find_all_excludes_self(self):
        doc = sample_tree()
        div = doc.find("div")
        assert div.find_all("div") == []

    def test_text_content_joins_with_space(self):
        assert sample_tree().text_content() == "hello world"

    def test_get_with_default(self):
        doc = sample_tree()
        assert doc.find("div").get("missing", "?") == "?"

    def test_document_properties(self):
        doc = sample_tree()
        assert doc.html.tag == "html"
        assert doc.body.tag == "body"

    def test_empty_document_properties(self):
        doc = Document()
        assert doc.html is None
        assert doc.body is None
