"""Unit tests for the drifting-world scenario generator."""

import pytest

from repro.errors import GenerationError
from repro.synth.drift import DriftConfig, DriftingWorld


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_items": 0},
            {"n_sources": 0},
            {"epochs": 0},
            {"coverage": 0.0},
            {"coverage": 1.5},
            {"value_change_rate": -0.1},
            {"birth_rate": 2.0},
            {"death_rate": -1.0},
            {"rename_rate": 1.5},
            {"false_pool": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(GenerationError):
            DriftConfig(**kwargs).validate()


class TestGeneration:
    def test_base_and_epochs_generated(self):
        world = DriftingWorld(DriftConfig(seed=3, n_items=20, epochs=4))
        assert world.base
        assert len(world.epochs) == 4
        assert world.current_epoch == 4
        assert len(world.deltas()) == 4

    def test_truth_snapshots_per_epoch(self):
        world = DriftingWorld(DriftConfig(seed=3, n_items=20, epochs=3))
        # One snapshot per epoch plus the base truth.
        for epoch in range(4):
            truth = world.truth_at(epoch)
            assert truth
            for values in truth.values():
                assert len(values) == 1  # single-truth items
        with pytest.raises(IndexError):
            world.truth_at(5)

    def test_epoch_labels_and_events(self):
        world = DriftingWorld(DriftConfig(seed=5, n_items=20, epochs=3))
        for index, epoch in enumerate(world.epochs, start=1):
            assert epoch.delta.label == f"epoch-{index}"
            assert epoch.truth.epoch == index
            payload = epoch.truth.to_json_dict()
            assert payload["epoch"] == index
            assert payload["items"] == len(epoch.truth.truths)

    def test_value_changes_bump_generation(self):
        world = DriftingWorld(
            DriftConfig(
                seed=1, n_items=20, epochs=2, value_change_rate=1.0,
                birth_rate=0.0, death_rate=0.0, rename_rate=0.0,
            )
        )
        before = world.truth_at(0)
        after = world.truth_at(1)
        assert set(before) == set(after)  # no births/deaths/renames
        changed = sum(
            1 for item in before if before[item] != after[item]
        )
        assert changed == len(before)

    def test_renames_change_the_predicate(self):
        world = DriftingWorld(
            DriftConfig(
                seed=2, n_items=20, epochs=1, value_change_rate=0.0,
                birth_rate=0.0, death_rate=0.0, rename_rate=0.5,
            )
        )
        truth = world.epochs[0].truth
        assert truth.renamed
        for subject, old_predicate, new_predicate in truth.renamed:
            assert old_predicate == "attr"
            assert new_predicate == "attr~r1"

    def test_deaths_never_empty_the_world(self):
        world = DriftingWorld(
            DriftConfig(
                seed=4, n_items=3, epochs=6, death_rate=1.0,
                birth_rate=0.0, value_change_rate=0.0, rename_rate=0.0,
            )
        )
        for epoch in range(world.current_epoch + 1):
            assert world.truth_at(epoch)

    def test_observations_match_provenance(self):
        world = DriftingWorld(DriftConfig(seed=6, n_items=10, epochs=1))
        for scored in world.base:
            assert scored.provenance.source_id in world.sources
            assert scored.provenance.extractor_id == "drift"
            assert scored.confidence == 1.0
