"""Unit tests for the synthetic delta-stream generator.

The digests below were computed against the original
``list.remove``-based retraction bookkeeping; they pin the generator's
byte-exact output for a spread of seeds and configurations so the
tombstone/swap-free rewrite (O(1) retractions instead of O(n)) is
provably a pure performance change.  Any edit that reorders the
retraction candidate list — and hence shifts every later ``rng.sample``
draw — fails here before it can silently invalidate the incremental
replay corpora.
"""

import hashlib
import json

from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.deltas import (
    DeltaStreamConfig,
    generate_delta_stream,
    scored_from_claims,
)

# name -> (world config, stream config, sha256 of the canonical stream)
PINNED = {
    "prop-3": (
        ClaimWorldConfig(seed=3, n_items=10, n_sources=5),
        DeltaStreamConfig(seed=3, parts=3),
        "d20f7595cf66b607f3faf63c0506b1338e7a8773af8cb05a52fc16cb437837c4",
    ),
    "prop-11": (
        ClaimWorldConfig(seed=11, n_items=10, n_sources=5),
        DeltaStreamConfig(seed=11, parts=3),
        "e881a11122945aca4774118176ee1f0ed5934693c55eb33423a144b9fd024667",
    ),
    "prop-29": (
        ClaimWorldConfig(seed=29, n_items=10, n_sources=5),
        DeltaStreamConfig(seed=29, parts=3),
        "98aae2cbc554b8e9b10dbab48324aee88a458bfafdcb542597f0bdec0883e697",
    ),
    "heavy-23": (
        ClaimWorldConfig(seed=23, n_items=30, n_sources=6),
        DeltaStreamConfig(
            seed=23, parts=8, base_fraction=0.3,
            retract_fraction=0.5, readd_fraction=0.5,
        ),
        "186c3cbb30a15c0ac7692de5a03ffee237d912b462ed509b9e86e36de5fb8fbc",
    ),
    "churn-41": (
        ClaimWorldConfig(seed=41, n_items=25, n_sources=5),
        DeltaStreamConfig(
            seed=41, parts=12, base_fraction=0.2,
            retract_fraction=0.8, readd_fraction=0.25,
        ),
        "671e410f59a647edc455bd4186adc94542d42e55ee83760fdf91f0a5f70b9d84",
    ),
}


def _key(scored):
    triple = scored.triple
    return [
        triple.subject,
        triple.predicate,
        triple.obj.lexical,
        scored.provenance.source_id,
        scored.provenance.extractor_id,
        round(scored.confidence, 12),
    ]


def stream_digest(base, deltas) -> str:
    """Order-sensitive sha256 of a (base, deltas) decomposition."""
    payload = {
        "base": [_key(scored) for scored in base],
        "deltas": [
            {
                "label": delta.label,
                "added": [_key(scored) for scored in delta.added],
                "retracted": [
                    [triple.subject, triple.predicate, triple.obj.lexical]
                    for triple in delta.retracted
                ],
            }
            for delta in deltas
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TestPinnedStreams:
    def test_streams_match_pre_rewrite_bytes(self):
        for name, (world_cfg, stream_cfg, expected) in PINNED.items():
            world = generate_claim_world(world_cfg)
            base, deltas = generate_delta_stream(
                scored_from_claims(world.claims), stream_cfg
            )
            assert stream_digest(base, deltas) == expected, (
                f"stream {name} diverged from the pinned pre-rewrite bytes"
            )


class TestInvariants:
    def test_retractions_only_target_live_triples(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=23, n_items=30, n_sources=6)
        )
        base, deltas = generate_delta_stream(
            scored_from_claims(world.claims),
            DeltaStreamConfig(
                seed=23, parts=8, base_fraction=0.3,
                retract_fraction=0.5, readd_fraction=0.5,
            ),
        )
        live = {scored.triple for scored in base}
        for delta in deltas:
            for triple in delta.retracted:
                assert triple in live, "retracted a non-live triple"
            live -= set(delta.retracted)
            live |= {scored.triple for scored in delta.added}
            assert live, "stream emptied the store"

    def test_no_duplicate_retractions_within_a_delta(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=41, n_items=25, n_sources=5)
        )
        _base, deltas = generate_delta_stream(
            scored_from_claims(world.claims),
            DeltaStreamConfig(
                seed=41, parts=12, base_fraction=0.2,
                retract_fraction=0.8, readd_fraction=0.25,
            ),
        )
        for delta in deltas:
            assert len(delta.retracted) == len(set(delta.retracted))

    def test_long_stream_smoke(self):
        """A long, churny stream generates without quadratic blowup."""
        world = generate_claim_world(
            ClaimWorldConfig(seed=9, n_items=40, n_sources=8)
        )
        base, deltas = generate_delta_stream(
            scored_from_claims(world.claims),
            DeltaStreamConfig(
                seed=9, parts=40, base_fraction=0.1,
                retract_fraction=0.9, readd_fraction=0.5,
            ),
        )
        assert len(deltas) == 40
        assert base
