"""Unit tests for the paper's combined knowledge-fusion method."""

from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.fusion.multitruth import MultiTruth
from repro.fusion.vote import Vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


class TestCopierRobustness:
    def test_correlations_neutralise_copier_cliques(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=2, n_items=80, n_sources=8, copier_cliques=2)
        )
        without = KnowledgeFusion(
            use_source_correlations=False, use_extractor_correlations=False
        ).fuse(world.claims)
        with_corr = KnowledgeFusion(
            use_source_correlations=True, use_extractor_correlations=False
        ).fuse(world.claims)
        assert world.precision_of(with_corr.truths) > world.precision_of(
            without.truths
        )

    def test_beats_vote_with_copiers(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=3, n_items=60, n_sources=8, copier_cliques=2)
        )
        vote = Vote().fuse(world.claims)
        fused = KnowledgeFusion().fuse(world.claims)
        assert world.precision_of(fused.truths) > world.precision_of(
            vote.truths
        )


class TestHierarchyIntegration:
    def test_hierarchy_improves_f1(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=5, n_items=60, n_sources=8,
                             hierarchical=True)
        )

        def f1(truths):
            precision = world.precision_of(truths)
            recall = world.recall_of(truths)
            return (
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )

        flat = KnowledgeFusion(hierarchy=None).fuse(world.claims)
        hier = KnowledgeFusion(hierarchy=world.hierarchy).fuse(world.claims)
        assert f1(hier.truths) > f1(flat.truths)


class TestFunctionalConstraint:
    def test_functional_items_single_truth(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=7, n_items=40, n_sources=8, false_pool=3,
                             source_accuracies=[0.55] * 8)
        )
        fused = KnowledgeFusion(functional_of=lambda p: True).fuse(
            world.claims
        )
        assert all(len(values) == 1 for values in fused.truths.values())

    def test_nonfunctional_items_allow_multiple(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=8, n_items=40, n_sources=8,
                             truths_per_item=2,
                             source_accuracies=[0.9] * 8)
        )
        fused = KnowledgeFusion(functional_of=lambda p: False).fuse(
            world.claims
        )
        multi = [v for v in fused.truths.values() if len(v) > 1]
        assert multi

    def test_functional_hierarchical_keeps_single_chain(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=9, n_items=30, n_sources=8,
                             hierarchical=True)
        )
        fused = KnowledgeFusion(
            hierarchy=world.hierarchy, functional_of=lambda p: True
        ).fuse(world.claims)
        view = fused  # decided values must lie on one chain per item
        from repro.fusion.hierarchy import CasefoldHierarchy

        chains = CasefoldHierarchy(world.hierarchy)
        for item, values in view.truths.items():
            ordered = sorted(values, key=chains.depth, reverse=True)
            deepest = ordered[0]
            assert all(
                chains.on_same_chain(deepest, value) for value in ordered
            )


class TestConfidence:
    def test_confidence_helps_when_informative(self):
        world = generate_claim_world(
            ClaimWorldConfig(
                seed=11, n_items=80, n_sources=8,
                source_accuracies=[0.6] * 8, false_pool=3,
                confidence_informative=True,
            )
        )
        off = KnowledgeFusion(
            use_confidence=False,
            use_source_correlations=False,
            use_extractor_correlations=False,
        ).fuse(world.claims)
        on = KnowledgeFusion(
            use_confidence=True,
            use_source_correlations=False,
            use_extractor_correlations=False,
        ).fuse(world.claims)
        assert world.precision_of(on.truths) >= world.precision_of(off.truths)


class TestGeneralBehaviour:
    def test_method_name(self):
        world = generate_claim_world(ClaimWorldConfig(seed=1, n_items=5))
        result = KnowledgeFusion().fuse(world.claims)
        assert result.method == "knowledge-fusion"

    def test_at_least_as_good_as_multitruth_baseline(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=13, n_items=80, n_sources=10,
                             copier_cliques=1)
        )
        baseline = MultiTruth().fuse(world.claims)
        fused = KnowledgeFusion().fuse(world.claims)
        assert world.precision_of(fused.truths) >= world.precision_of(
            baseline.truths
        )
