"""Unit tests for class catalogs and location hierarchies."""

import random

import pytest

from repro.errors import GenerationError
from repro.synth.catalog import (
    CLASS_NAMES,
    DEFAULT_UNIVERSE_SIZES,
    build_all_catalogs,
    build_catalog,
    generate_locations,
)


class TestBuildCatalog:
    def test_unknown_class_rejected(self):
        with pytest.raises(GenerationError):
            build_catalog("Spaceship", random.Random(1))

    def test_default_size(self):
        catalog = build_catalog("Book", random.Random(1))
        assert len(catalog) == DEFAULT_UNIVERSE_SIZES["Book"]

    def test_custom_size(self):
        catalog = build_catalog("Book", random.Random(1), universe_size=30)
        assert len(catalog) == 30

    def test_truncation_below_core(self):
        catalog = build_catalog("Book", random.Random(1), universe_size=5)
        assert len(catalog) == 5

    def test_names_unique(self):
        catalog = build_catalog("Country", random.Random(1))
        names = catalog.names()
        assert len(names) == len(set(names))

    def test_core_attributes_first(self):
        catalog = build_catalog("Country", random.Random(1))
        assert catalog.names()[0] == "capital"

    def test_deterministic(self):
        first = build_catalog("Hotel", random.Random(5)).names()
        second = build_catalog("Hotel", random.Random(5)).names()
        assert first == second

    def test_spec_lookup(self):
        catalog = build_catalog("Film", random.Random(1))
        assert catalog.spec("director").functional
        with pytest.raises(GenerationError):
            catalog.spec("warp drive")

    def test_propensities_in_range(self):
        catalog = build_catalog("University", random.Random(1))
        for spec in catalog.attributes:
            assert 0 <= spec.query_propensity <= 1
            assert 0 <= spec.web_propensity <= 1

    def test_hierarchical_attributes_exist(self):
        catalog = build_catalog("Country", random.Random(1))
        assert any(spec.hierarchical for spec in catalog.attributes)


class TestBuildAllCatalogs:
    def test_all_classes_present(self):
        catalogs = build_all_catalogs(random.Random(1))
        assert set(catalogs) == set(CLASS_NAMES)

    def test_override_sizes(self):
        catalogs = build_all_catalogs(random.Random(1), {"Book": 25})
        assert len(catalogs["Book"]) == 25
        assert len(catalogs["Film"]) == DEFAULT_UNIVERSE_SIZES["Film"]


class TestGenerateLocations:
    def test_structure(self):
        hierarchy, cities = generate_locations(random.Random(1), 3, 2, 4)
        assert len(cities) == 3 * 2 * 4
        assert len(hierarchy.roots()) == 3

    def test_city_chains_have_three_levels(self):
        hierarchy, cities = generate_locations(random.Random(1), 2, 2, 2)
        for city in cities:
            assert len(hierarchy.chain(city)) == 3

    def test_invalid_sizes_rejected(self):
        with pytest.raises(GenerationError):
            generate_locations(random.Random(1), 0, 1, 1)

    def test_names_unique(self):
        hierarchy, cities = generate_locations(random.Random(1), 4, 3, 5)
        assert len(set(cities)) == len(cities)
