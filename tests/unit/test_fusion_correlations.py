"""Unit tests for correlation (copy) detection."""

import pytest

from repro.fusion.base import Claim, ClaimSet
from repro.fusion.correlations import CorrelationEstimator
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


def claim(item, value, source, extractor="ex"):
    return Claim(item, value, value, source, extractor)


class TestValidation:
    def test_bad_dimension_rejected(self):
        with pytest.raises(ValueError):
            CorrelationEstimator(by="planet")


class TestPairDependence:
    def test_perfect_copiers_high_dependence(self):
        claims = ClaimSet()
        for index in range(10):
            item = (f"e{index}", "a")
            value = f"v{index}"
            claims.add(claim(item, value, "left"))
            claims.add(claim(item, value, "right"))
            # Independent witnesses claiming other values make the
            # pair's persistent agreement on unseen values suspicious.
            claims.add(claim(item, f"w{index}-1", f"bg{index % 4}-1"))
            claims.add(claim(item, f"w{index}-2", f"bg{index % 4}-2"))
        estimate = CorrelationEstimator(min_common_items=3).estimate(claims)
        assert estimate.pair("left", "right") > 0.9

    def test_unwitnessed_agreement_weakly_informative(self):
        claims = ClaimSet()
        for index in range(10):
            item = (f"e{index}", "a")
            claims.add(claim(item, f"v{index}", "left"))
            claims.add(claim(item, f"v{index}", "right"))
        estimate = CorrelationEstimator(min_common_items=3).estimate(claims)
        # Two honest sources on two-source items look the same; the
        # dependence stays below the discount threshold.
        assert estimate.pair("left", "right") < 0.25

    def test_disagreeing_sources_low_dependence(self):
        claims = ClaimSet()
        for index in range(10):
            item = (f"e{index}", "a")
            claims.add(claim(item, f"v{index}-l", "left"))
            claims.add(claim(item, f"v{index}-r", "right"))
        estimate = CorrelationEstimator(min_common_items=3).estimate(claims)
        assert estimate.pair("left", "right") < 0.1

    def test_insufficient_overlap_skipped(self):
        claims = ClaimSet(
            [
                claim(("e1", "a"), "v", "left"),
                claim(("e1", "a"), "v", "right"),
            ]
        )
        estimate = CorrelationEstimator(min_common_items=3).estimate(claims)
        assert estimate.pair("left", "right") == 0.0

    def test_rare_agreement_weighs_more_than_popular(self):
        claims = ClaimSet()
        # Ten independent sources agree on the popular value for items
        # 0-9; 'a' and 'b' also agree, so their agreements are popular.
        for index in range(10):
            item = (f"e{index}", "x")
            for source in [f"s{i}" for i in range(10)] + ["a", "b"]:
                claims.add(claim(item, "popular", source))
        # 'c' and 'd' agree on values nobody else claims.
        for index in range(10):
            item = (f"e{index}", "x")
            claims.add(claim(item, f"rare{index}", "c"))
            claims.add(claim(item, f"rare{index}", "d"))
        estimate = CorrelationEstimator(min_common_items=3).estimate(claims)
        assert estimate.pair("c", "d") > estimate.pair("a", "b")


class TestWeights:
    def test_copiers_get_discounted(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=3, n_items=60, n_sources=6, copier_cliques=1)
        )
        estimate = CorrelationEstimator().estimate(world.claims)
        copier_weights = [
            estimate.weights[s] for s in world.copier_of
        ]
        independent_weights = [
            estimate.weights[s]
            for s in world.claims.sources()
            if s not in world.copier_of and not s.startswith("leader")
        ]
        assert max(copier_weights) < min(independent_weights)

    def test_weights_in_unit_interval(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=5, n_items=40, n_sources=6)
        )
        estimate = CorrelationEstimator().estimate(world.claims)
        assert all(0 < w <= 1 for w in estimate.weights.values())


class TestExtractorDimension:
    def test_correlates_extractors(self):
        claims = ClaimSet()
        for index in range(8):
            item = (f"e{index}", "a")
            claims.add(claim(item, f"v{index}", "s1", extractor="dom"))
            claims.add(claim(item, f"v{index}", "s2", extractor="domcopy"))
            claims.add(claim(item, f"w{index}", "s3", extractor="text"))
        estimate = CorrelationEstimator(
            by="extractor", min_common_items=3
        ).estimate(claims)
        assert estimate.pair("dom", "domcopy") > estimate.pair("dom", "text")


class TestWitnessBlending:
    """Regression tests for the <2-witness rarity cliff (ISSUE 9).

    ``_pair_dependence`` used to credit a flat 0.2 rarity to any
    agreement on an item with fewer than two independent witnesses,
    discarding the evidence of the one witness an item *did* have.
    Rarity is now blended between the uninformative prior (0.2) and
    the observed popularity, weighted by witness count; the ≥2-witness
    arithmetic is unchanged.
    """

    def test_single_dissenting_witness_crosses_threshold(self):
        # Pre-fix failing: every item has exactly ONE independent
        # witness, and it always disagrees with the left/right pair.
        # Old code scored a flat 0.2 (below the 0.25 discount
        # threshold); the blend gives 0.5*0.2 + 0.5*1.0 = 0.6.
        claims = ClaimSet()
        for index in range(10):
            item = (f"e{index}", "a")
            claims.add(claim(item, f"v{index}", "left"))
            claims.add(claim(item, f"v{index}", "right"))
            claims.add(claim(item, f"other{index}", "witness"))
        estimate = CorrelationEstimator(min_common_items=3).estimate(claims)
        assert estimate.pair("left", "right") == pytest.approx(0.6)
        assert estimate.pair("left", "right") >= 0.25

    def test_single_agreeing_witness_stays_weak(self):
        # One witness that always AGREES: popularity 1.0, so the blend
        # gives 0.5*0.2 + 0.5*0.0 = 0.1 — weaker than no witness at
        # all, as it should be.
        claims = ClaimSet()
        for index in range(10):
            item = (f"e{index}", "a")
            for source in ("left", "right", "witness"):
                claims.add(claim(item, f"v{index}", source))
        estimate = CorrelationEstimator(min_common_items=3).estimate(claims)
        assert estimate.pair("left", "right") == pytest.approx(0.1)
        assert estimate.pair("left", "right") < 0.25

    def test_two_source_world_pins_constant_dependence(self):
        # Audit outcome, documented + pinned: in a PURE two-source
        # world there are no witnesses, so dependence is exactly
        # 0.2 * |shared| / |union| regardless of the values' content.
        # Full agreement -> 0.2 (below threshold, never discounted).
        claims = ClaimSet()
        for index in range(10):
            item = (f"e{index}", "a")
            claims.add(claim(item, f"v{index}", "left"))
            claims.add(claim(item, f"v{index}", "right"))
        estimate = CorrelationEstimator(min_common_items=3).estimate(claims)
        assert estimate.pair("left", "right") == pytest.approx(0.2)

    def test_union_normalization_pinned(self):
        # Audit outcome, documented + pinned: the per-item divisor is
        # the pair's value-UNION size (Jaccard style), so private
        # disagreements dilute the score: each item shares one value
        # but unions three ({v, l, r}), giving 10 agreements at rarity
        # 0.2 over a union of 30.
        claims = ClaimSet()
        for index in range(10):
            item = (f"e{index}", "a")
            claims.add(claim(item, f"v{index}", "left"))
            claims.add(claim(item, f"v{index}", "right"))
            claims.add(claim(item, f"l{index}", "left"))
            claims.add(claim(item, f"r{index}", "right"))
        estimate = CorrelationEstimator(min_common_items=3).estimate(claims)
        assert estimate.pair("left", "right") == pytest.approx(
            (10 * 0.2) / 30
        )

    def test_two_or_more_witnesses_unchanged(self):
        # The ≥2-witness formula is byte-for-byte the pre-fix one:
        # two witnesses, one agreeing -> popularity 0.5, rarity 0.5.
        claims = ClaimSet()
        for index in range(10):
            item = (f"e{index}", "a")
            claims.add(claim(item, f"v{index}", "left"))
            claims.add(claim(item, f"v{index}", "right"))
            claims.add(claim(item, f"v{index}", "w1"))
            claims.add(claim(item, f"other{index}", "w2"))
        estimate = CorrelationEstimator(min_common_items=3).estimate(claims)
        assert estimate.pair("left", "right") == pytest.approx(0.5)
