"""Unit tests for the KB extractor (Table 2 mechanics)."""

from repro.extract.kb import (
    KbExtractor,
    canonicalize_kb_name,
    combine_kb_outputs,
)
from repro.synth.kb_snapshots import PAPER_TABLE2


class TestCanonicalize:
    def test_camel(self):
        assert canonicalize_kb_name("publicationDate", "camel") == (
            "publication date"
        )

    def test_snake_with_prefix(self):
        assert canonicalize_kb_name("book/publication_date", "snake") == (
            "publication date"
        )

    def test_label_passthrough(self):
        assert canonicalize_kb_name("Publication Dates", "label") == (
            "publication date"
        )


class TestKbExtractor:
    def test_extraction_exceeds_schema(self, kb_pair):
        freebase, dbpedia = kb_pair
        for snapshot in (freebase, dbpedia):
            extractor = KbExtractor(snapshot)
            output = extractor.extract()
            for class_name in snapshot.classes:
                schema = extractor.schema_attribute_names(class_name)
                extracted = output.attribute_names(class_name)
                assert schema <= extracted
                assert len(extracted) >= len(schema)

    def test_extracted_counts_equal_instance_sets(self, kb_pair, world):
        freebase, dbpedia = kb_pair
        for snapshot, column in ((dbpedia, 1), (freebase, 3)):
            output = KbExtractor(snapshot).extract()
            for class_name, calibration in PAPER_TABLE2.items():
                expected = min(
                    calibration[column],
                    len(world.attribute_names(class_name)),
                )
                assert output.attribute_count(class_name) == expected

    def test_triples_canonicalised(self, kb_pair):
        freebase, _ = kb_pair
        output = KbExtractor(freebase).extract()
        for scored in output.triples[:50]:
            assert "/" not in scored.triple.predicate
            assert "_" not in scored.triple.predicate
            assert scored.provenance.extractor_id == "kb"
            assert scored.provenance.source_id == "freebase"

    def test_attributes_canonical_names(self, kb_pair, world):
        _, dbpedia = kb_pair
        output = KbExtractor(dbpedia).extract()
        universe = set(world.attribute_names("Book"))
        assert output.attribute_names("Book") <= universe


class TestCombine:
    def test_union_matches_paper_combined(self, kb_outputs, world):
        combined = combine_kb_outputs(list(kb_outputs))
        for class_name, calibration in PAPER_TABLE2.items():
            expected = min(
                calibration[4], len(world.attribute_names(class_name))
            )
            assert combined.attribute_count(class_name) == expected

    def test_combined_at_least_each_input(self, kb_outputs):
        combined = combine_kb_outputs(list(kb_outputs))
        for output in kb_outputs:
            for class_name in output.attributes:
                assert output.attribute_names(class_name) <= (
                    combined.attribute_names(class_name)
                )

    def test_triples_concatenated(self, kb_outputs):
        combined = combine_kb_outputs(list(kb_outputs))
        assert len(combined.triples) == sum(
            len(output.triples) for output in kb_outputs
        )

    def test_sources_merged(self, kb_outputs):
        combined = combine_kb_outputs(list(kb_outputs))
        shared = [
            record
            for per_class in combined.attributes.values()
            for record in per_class.values()
            if len(record.sources) == 2
        ]
        assert shared  # overlap between the two KBs exists by design
