"""Unit tests for hierarchical value spaces."""

import pytest

from repro.errors import HierarchyError
from repro.rdf.hierarchy import ValueHierarchy


@pytest.fixture
def locations():
    hierarchy = ValueHierarchy()
    hierarchy.add_chain(["Adelaide", "South Australia", "Australia"])
    hierarchy.add_chain(["Melbourne", "Victoria", "Australia"])
    hierarchy.add_chain(["Wuhan", "Hubei", "China"])
    return hierarchy


class TestConstruction:
    def test_self_loop_rejected(self):
        with pytest.raises(HierarchyError):
            ValueHierarchy().add_edge("x", "x")

    def test_empty_value_rejected(self):
        with pytest.raises(HierarchyError):
            ValueHierarchy().add_edge("", "y")

    def test_reparenting_rejected(self, locations):
        with pytest.raises(HierarchyError):
            locations.add_edge("Adelaide", "Victoria")

    def test_same_edge_twice_ok(self, locations):
        locations.add_edge("Adelaide", "South Australia")

    def test_cycle_rejected(self, locations):
        with pytest.raises(HierarchyError):
            locations.add_edge("Australia", "Adelaide")

    def test_contains(self, locations):
        assert "Adelaide" in locations
        assert "Australia" in locations
        assert "Mars" not in locations


class TestQueries:
    def test_parent(self, locations):
        assert locations.parent("Adelaide") == "South Australia"
        assert locations.parent("Australia") is None

    def test_children(self, locations):
        assert locations.children("Australia") == {
            "South Australia",
            "Victoria",
        }

    def test_ancestors_ordered_near_to_far(self, locations):
        assert locations.ancestors("Adelaide") == [
            "South Australia",
            "Australia",
        ]

    def test_descendants(self, locations):
        assert locations.descendants("Australia") == {
            "South Australia",
            "Victoria",
            "Adelaide",
            "Melbourne",
        }

    def test_chain(self, locations):
        assert locations.chain("Wuhan") == ["Wuhan", "Hubei", "China"]

    def test_roots(self, locations):
        assert locations.roots() == {"Australia", "China"}

    def test_depth(self, locations):
        assert locations.depth("Australia") == 0
        assert locations.depth("Adelaide") == 2

    def test_len_and_iter(self, locations):
        assert len(locations) == 8
        assert set(locations) == {
            "Adelaide", "South Australia", "Australia", "Melbourne",
            "Victoria", "Wuhan", "Hubei", "China",
        }


class TestFusionSupport:
    def test_related_on_chain(self, locations):
        assert locations.related("Adelaide", "Australia")
        assert locations.related("Australia", "Adelaide")
        assert locations.related("Adelaide", "Adelaide")

    def test_unrelated_across_chains(self, locations):
        assert not locations.related("Adelaide", "Victoria")
        assert not locations.related("Adelaide", "China")

    def test_specific_fully_supports_general(self, locations):
        assert locations.support("Adelaide", "Australia") == 1.0
        assert locations.support("Adelaide", "South Australia") == 1.0

    def test_general_partially_supports_specific(self, locations):
        support_one = locations.support("South Australia", "Adelaide")
        support_two = locations.support("Australia", "Adelaide")
        assert 0 < support_two < support_one < 1

    def test_unrelated_support_zero(self, locations):
        assert locations.support("Adelaide", "Wuhan") == 0.0

    def test_equal_support_one(self, locations):
        assert locations.support("Adelaide", "Adelaide") == 1.0

    def test_lowest_common_ancestor(self, locations):
        assert (
            locations.lowest_common_ancestor("Adelaide", "Melbourne")
            == "Australia"
        )
        assert locations.lowest_common_ancestor("Adelaide", "Wuhan") is None
        assert (
            locations.lowest_common_ancestor("Adelaide", "South Australia")
            == "South Australia"
        )
