"""Unit tests for the span tracer."""

from repro.obs import validate_trace
from repro.obs.trace import SpanTracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestSpanNesting:
    def test_spans_nest_under_the_open_parent(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("pipeline"):
            clock.advance(1.0)
            with tracer.span("fusion"):
                clock.advance(2.0)
            clock.advance(0.5)
        doc = tracer.to_json_dict()
        assert len(doc["spans"]) == 1
        root = doc["spans"][0]
        assert root["name"] == "pipeline"
        assert root["start"] == 0.0
        assert root["seconds"] == 3.5
        (child,) = root["children"]
        assert child["name"] == "fusion"
        assert child["start"] == 1.0
        assert child["seconds"] == 2.0

    def test_siblings_attach_in_order(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("root"):
            for name in ("a", "b"):
                with tracer.span(name):
                    clock.advance(1.0)
        names = [
            span["name"]
            for span in tracer.to_json_dict()["spans"][0]["children"]
        ]
        assert names == ["a", "b"]

    def test_explicit_end_is_idempotent(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        handle = tracer.span("stage")
        clock.advance(2.0)
        handle.end(detail="done")
        clock.advance(5.0)
        handle.end(detail="later")  # no-op: already closed
        span = tracer.to_json_dict()["spans"][0]
        assert span["seconds"] == 2.0
        assert span["detail"] == "done"

    def test_exception_marks_the_span_failed(self):
        tracer = SpanTracer(clock=FakeClock())
        try:
            with tracer.span("stage"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.to_json_dict()["spans"][0]["status"] == "failed"


class TestRecord:
    def test_record_backdates_the_start(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        clock.advance(10.0)
        tracer.record("dom-extraction", 4.0, detail="12 claims")
        span = tracer.to_json_dict()["spans"][0]
        assert span["start"] == 6.0
        assert span["seconds"] == 4.0
        assert span["detail"] == "12 claims"

    def test_record_never_starts_before_the_epoch(self):
        tracer = SpanTracer(clock=FakeClock())
        tracer.record("stage", 99.0)
        assert tracer.to_json_dict()["spans"][0]["start"] == 0.0

    def test_record_nests_under_the_open_span(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("extraction-phase-a"):
            clock.advance(1.0)
            tracer.record("kb-extraction", 0.5, failed=True)
        root = tracer.to_json_dict()["spans"][0]
        (child,) = root["children"]
        assert child["name"] == "kb-extraction"
        assert child["status"] == "failed"


class TestExport:
    def test_export_passes_the_schema_validator(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("pipeline"):
            clock.advance(1.0)
            tracer.record("stage", 0.25, detail="ok")
        assert validate_trace(tracer.to_json_dict()) == []
