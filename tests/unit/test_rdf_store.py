"""Unit tests for the indexed triple store."""

import pytest

from repro.errors import StoreError
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


def claim(subject, predicate, value, source="src", extractor="ex", conf=1.0):
    return ScoredTriple(
        Triple(subject, predicate, Value(value)),
        Provenance(source, extractor),
        conf,
    )


@pytest.fixture
def store():
    s = TripleStore()
    s.add(claim("france", "capital", "Paris", source="a"))
    s.add(claim("france", "capital", "Lyon", source="b"))
    s.add(claim("france", "population", "67M", source="a"))
    s.add(claim("germany", "capital", "Berlin", source="a"))
    return s


class TestAdd:
    def test_len_counts_claims(self, store):
        assert len(store) == 4

    def test_same_triple_different_source_kept(self, store):
        store.add(claim("france", "capital", "Paris", source="c"))
        assert len(store) == 5

    def test_duplicate_claim_is_noop(self, store):
        store.add(claim("france", "capital", "Paris", source="a"))
        assert len(store) == 4

    def test_duplicate_keeps_max_confidence(self):
        store = TripleStore()
        store.add(claim("s", "p", "v", conf=0.3))
        store.add(claim("s", "p", "v", conf=0.8))
        store.add(claim("s", "p", "v", conf=0.5))
        assert store.claims()[0].confidence == 0.8

    def test_contains(self, store):
        assert Triple("france", "capital", Value("Paris")) in store
        assert Triple("france", "capital", Value("Nice")) not in store


class TestMatch:
    def test_fully_bound(self, store):
        found = store.match("france", "capital", Value("Paris"))
        assert len(found) == 1

    def test_subject_only(self, store):
        assert len(store.match(subject="france")) == 3

    def test_predicate_only(self, store):
        capitals = store.match(predicate="capital")
        assert {t.subject for t in capitals} == {"france", "germany"}

    def test_object_only(self, store):
        assert len(store.match(obj=Value("Berlin"))) == 1

    def test_unbound_enumerates_distinct(self, store):
        store.add(claim("france", "capital", "Paris", source="z"))
        assert len(store.match()) == 4  # distinct triples, not claims

    def test_no_match_empty(self, store):
        assert store.match(subject="spain") == []


class TestLookups:
    def test_objects(self, store):
        assert {v.lexical for v in store.objects("france", "capital")} == {
            "Paris",
            "Lyon",
        }

    def test_subjects(self, store):
        assert store.subjects() == {"france", "germany"}

    def test_predicates_global(self, store):
        assert store.predicates() == {"capital", "population"}

    def test_predicates_of_subject(self, store):
        assert store.predicates("germany") == {"capital"}

    def test_sources_and_extractors(self, store):
        assert store.sources() == {"a", "b"}
        assert store.extractors() == {"ex"}

    def test_claims_for_item(self, store):
        claims = store.claims_for_item("france", "capital")
        assert len(claims) == 2

    def test_claims_of_triple(self, store):
        triple = Triple("france", "capital", Value("Paris"))
        assert len(store.claims(triple)) == 1


class TestMutation:
    def test_remove(self, store):
        removed = store.remove(Triple("france", "capital", Value("Paris")))
        assert removed == 1
        assert Triple("france", "capital", Value("Paris")) not in store
        assert len(store) == 3

    def test_remove_missing_returns_zero(self, store):
        assert store.remove(Triple("x", "y", Value("z"))) == 0

    def test_merge(self, store):
        other = TripleStore()
        other.add(claim("spain", "capital", "Madrid"))
        store.merge(other)
        assert Triple("spain", "capital", Value("Madrid")) in store

    def test_merge_self_rejected(self, store):
        with pytest.raises(StoreError):
            store.merge(store)

    def test_copy_independent(self, store):
        clone = store.copy()
        clone.add(claim("spain", "capital", "Madrid"))
        assert len(clone) == len(store) + 1

    def test_iteration_yields_claims(self, store):
        assert len(list(store)) == 4


class TestIndexConsistencyAfterRemoval:
    """Regression: remove() used to leave ghost entries in the
    SPO/POS/OSP indexes (empty leaf sets and empty inner dicts), so
    subjects()/predicates() reported identifiers with no claims."""

    def test_no_ghost_subject_after_full_removal(self):
        s = TripleStore()
        s.add(claim("spain", "capital", "Madrid"))
        s.remove(Triple("spain", "capital", Value("Madrid")))
        assert s.subjects() == set()
        assert s.predicates() == set()
        assert s.match() == []

    def test_sibling_entries_survive_pruning(self, store):
        store.remove(Triple("france", "capital", Value("Paris")))
        assert "france" in store.subjects()
        assert store.predicates("france") == {"capital", "population"}
        assert store.objects("france", "capital") == {Value("Lyon")}
        store.remove(Triple("france", "capital", Value("Lyon")))
        assert store.predicates("france") == {"population"}
        assert "capital" in store.predicates()  # germany still has one

    def test_interleaved_add_remove_readd_agree(self):
        s = TripleStore()
        triple = Triple("france", "capital", Value("Paris"))
        s.add(claim("france", "capital", "Paris", source="a", conf=0.9))
        s.add(claim("france", "capital", "Paris", source="b", conf=0.7))
        s.remove(triple)
        s.add(claim("france", "capital", "Paris", source="b", conf=0.4))
        # __contains__, __len__ and iteration must tell one story.
        assert triple in s
        assert len(s) == 1
        listed = list(s)
        assert len(listed) == 1
        assert listed[0].provenance.source_id == "b"
        assert s.claims(triple) == listed
        assert {scored.triple for scored in s} == {triple}

    def test_lower_confidence_readd_after_remove_sticks(self):
        # After a removal the old max-confidence entry is gone, so a
        # re-add at lower confidence must install, not be dropped by
        # the max-confidence dedup.
        s = TripleStore()
        triple = Triple("x", "p", Value("v"))
        s.add(claim("x", "p", "v", conf=0.9))
        s.remove(triple)
        s.add(claim("x", "p", "v", conf=0.2))
        assert [scored.confidence for scored in s.claims(triple)] == [0.2]

    def test_removed_value_vanishes_from_all_match_paths(self, store):
        store.remove(Triple("france", "capital", Value("Paris")))
        assert store.match(subject="france", obj=Value("Paris")) == []
        assert store.match(predicate="capital", obj=Value("Paris")) == []
        assert store.match(obj=Value("Paris")) == []


class TestBackendFacade:
    def test_default_backend_is_memory(self, store):
        from repro.rdf.backend import MemoryBackend

        assert isinstance(store.backend, MemoryBackend)
        assert store.backend.name == "memory"

    def test_snapshot_is_a_stable_list(self, store):
        frozen = store.snapshot()
        assert isinstance(frozen, list)
        assert len(frozen) == 4
        store.add(claim("spain", "capital", "Madrid"))
        assert len(frozen) == 4  # snapshot unaffected by later adds
        assert frozen == store.snapshot()[:4]

    def test_iteration_is_zero_copy(self, store):
        """Regression: __iter__ used to materialize a full list of the
        store's claims on every call, which made each fusion compile
        pass O(n) in allocations.  Plain iteration must now walk the
        backend's live view without building an intermediate list."""
        unmaterialized = iter(store)
        first = next(unmaterialized)
        assert not isinstance(unmaterialized, type(iter([])))
        assert first in store.snapshot()

    def test_iter_claims_shares_backend_objects(self, store):
        # The objects coming out of iteration are the stored objects
        # themselves, not copies — the incremental journal's identity
        # checks (`existing is scored`) depend on this.
        via_iter = {id(scored) for scored in store}
        via_claims = {id(scored) for scored in store.claims()}
        assert via_iter == via_claims
