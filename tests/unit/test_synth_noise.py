"""Unit tests for noise models."""

import random

import pytest

from repro.synth.noise import (
    corrupt_value,
    format_variation,
    misspell,
    misspell_phrase,
    synonymize_attribute,
)


@pytest.fixture
def rng():
    return random.Random(99)


class TestMisspell:
    def test_short_words_untouched(self, rng):
        assert misspell("cat", rng) == "cat"

    def test_long_word_changed(self, rng):
        word = "publication"
        results = {misspell(word, random.Random(i)) for i in range(20)}
        assert any(result != word for result in results)

    def test_edit_distance_small(self, rng):
        from repro.textproc.similarity import levenshtein

        for seed in range(20):
            corrupted = misspell("population", random.Random(seed))
            assert levenshtein("population", corrupted) <= 2

    def test_deterministic(self):
        assert misspell("capital", random.Random(3)) == misspell(
            "capital", random.Random(3)
        )


class TestMisspellPhrase:
    def test_one_word_changed(self, rng):
        phrase = "publication date"
        corrupted = misspell_phrase(phrase, rng)
        words = corrupted.split(" ")
        assert len(words) == 2

    def test_all_short_words_untouched(self, rng):
        assert misspell_phrase("a of b", rng) == "a of b"


class TestSynonymize:
    def test_two_word_reorder(self):
        results = {
            synonymize_attribute("publication date", random.Random(i))
            for i in range(20)
        }
        assert "date of publication" in results

    def test_single_word_gets_qualifier(self, rng):
        result = synonymize_attribute("price", rng)
        assert result != "price" or True  # rewrite may no-op on reversal
        assert "price" in result


class TestCorruptValue:
    def test_prefers_pool_alternatives(self, rng):
        pool = ["alpha", "beta", "gamma"]
        results = {
            corrupt_value("alpha", random.Random(i), pool) for i in range(20)
        }
        assert results & {"beta", "gamma"}
        assert "alpha" not in results

    def test_without_pool_misspells(self, rng):
        corrupted = corrupt_value("alpha", rng, ["alpha"])
        assert corrupted != "alpha"

    def test_never_returns_original(self):
        for seed in range(30):
            assert corrupt_value("value", random.Random(seed), []) != "value"


class TestFormatVariation:
    def test_same_value_casefolded(self, rng):
        for seed in range(10):
            variant = format_variation("Mixed Case", random.Random(seed))
            assert variant.casefold() == "mixed case"
