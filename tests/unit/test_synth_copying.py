"""Unit tests for the source-copying scenario generator."""

import pytest

from repro.errors import GenerationError
from repro.synth.copying import CopyingConfig, generate_copying_world


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_items": 0},
            {"n_independent": 0},
            {"n_copiers": -1},
            {"coverage": 0.0},
            {"victim_accuracy": 1.5},
            {"copy_fraction": -0.1},
            {"mutation_rate": 2.0},
            {"correction_rate": -1.0},
            {"lag": -1},
            {"false_pool": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(GenerationError):
            CopyingConfig(**kwargs).validate()


class TestGeneration:
    def test_world_shape(self):
        world = generate_copying_world(CopyingConfig(seed=1))
        assert len(world.claims)
        assert len(world.truths) == 80
        assert len(world.independents) == 4
        assert len(world.copiers) == 3
        sources = world.claims.sources()
        assert world.victim in sources
        for copier in world.copiers:
            assert copier in sources

    def test_same_seed_is_deterministic(self):
        def signature(world):
            return sorted(
                (c.item, c.value, c.source_id) for c in world.claims
            )

        first = generate_copying_world(CopyingConfig(seed=5))
        second = generate_copying_world(CopyingConfig(seed=5))
        assert signature(first) == signature(second)
        assert first.copied_errors == second.copied_errors

    def test_copied_errors_are_victim_errors_echoed_by_copiers(self):
        world = generate_copying_world(CopyingConfig(seed=0))
        assert world.total_copied_errors() > 0
        claims_of = {}
        for claim in world.claims:
            claims_of.setdefault(claim.source_id, set()).add(
                (claim.item, claim.value)
            )
        for item, values in world.copied_errors.items():
            gold = world.truths[item]
            for value in values:
                assert value not in gold  # they are errors
                assert any(  # echoed verbatim by some copier
                    (item, value) in claims_of[copier]
                    for copier in world.copiers
                )

    def test_no_copiers_no_copied_errors(self):
        world = generate_copying_world(CopyingConfig(seed=2, n_copiers=0))
        assert world.total_copied_errors() == 0
        assert world.copiers == ()

    def test_lag_lets_victim_correct_but_copies_stay_wrong(self):
        # With full correction after the copy, the victim's published
        # claims are all true, yet copied errors persist.
        world = generate_copying_world(
            CopyingConfig(seed=3, lag=1, correction_rate=1.0)
        )
        victim_claims = [
            claim for claim in world.claims
            if claim.source_id == world.victim
        ]
        for claim in victim_claims:
            assert claim.value in world.truths[claim.item]
        assert world.total_copied_errors() > 0

    def test_outcome_partition(self):
        world = generate_copying_world(CopyingConfig(seed=0))
        total = world.total_copied_errors()
        # Nothing decided: every copied error counts as suppressed.
        suppressed, leaked = world.copied_error_outcome({})
        assert (suppressed, leaked) == (total, 0)
        # Everything decided true: every copied error leaks.
        suppressed, leaked = world.copied_error_outcome(
            {item: set(values) for item, values in world.copied_errors.items()}
        )
        assert (suppressed, leaked) == (0, total)

    def test_precision_recall_against_gold(self):
        world = generate_copying_world(CopyingConfig(seed=0))
        exact = {item: set(values) for item, values in world.truths.items()}
        assert world.precision_of(exact) == 1.0
        assert world.recall_of(exact) == 1.0
        assert world.precision_of({}) == 0.0
        assert world.recall_of({}) == 0.0
