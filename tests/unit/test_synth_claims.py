"""Unit tests for the synthetic claim-world generator."""

import pytest

from repro.errors import GenerationError
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


class TestValidation:
    def test_zero_items_rejected(self):
        with pytest.raises(GenerationError):
            generate_claim_world(ClaimWorldConfig(n_items=0))

    def test_bad_coverage_rejected(self):
        with pytest.raises(GenerationError):
            generate_claim_world(ClaimWorldConfig(coverage=0))

    def test_zero_truths_rejected(self):
        with pytest.raises(GenerationError):
            generate_claim_world(ClaimWorldConfig(truths_per_item=0))


class TestStructure:
    def test_accuracy_controls_quality(self):
        good = generate_claim_world(
            ClaimWorldConfig(seed=1, n_items=80,
                             source_accuracies=[0.95] * 10)
        )
        bad = generate_claim_world(
            ClaimWorldConfig(seed=1, n_items=80,
                             source_accuracies=[0.4] * 10)
        )

        def true_share(world):
            total = correct = 0
            for claim in world.claims:
                total += 1
                correct += claim.value in world.expanded_truths(claim.item)
            return correct / total

        assert true_share(good) > 0.9
        assert true_share(bad) < 0.6

    def test_coverage_controls_volume(self):
        dense = generate_claim_world(
            ClaimWorldConfig(seed=2, n_items=60, coverage=1.0)
        )
        sparse = generate_claim_world(
            ClaimWorldConfig(seed=2, n_items=60, coverage=0.4)
        )
        assert len(dense.claims) > len(sparse.claims) * 1.5

    def test_copier_cliques_add_sources(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=3, n_items=30, n_sources=5,
                             copier_cliques=2, clique_size=3)
        )
        # 5 independents + 2 leaders + 6 copiers.
        assert len(world.claims.sources()) == 13
        assert len(world.copier_of) == 6

    def test_hierarchical_truths_have_chains(self):
        world = generate_claim_world(
            ClaimWorldConfig(seed=4, n_items=10, hierarchical=True)
        )
        for truths in world.truths.values():
            for truth in truths:
                assert len(world.hierarchy.chain(truth)) == 3

    def test_informative_confidence_separates_truth(self):
        world = generate_claim_world(
            ClaimWorldConfig(
                seed=5, n_items=80, confidence_informative=True,
                source_accuracies=[0.6] * 8, n_sources=8,
            )
        )
        true_conf = []
        false_conf = []
        for claim in world.claims:
            if claim.value in world.expanded_truths(claim.item):
                true_conf.append(claim.confidence)
            else:
                false_conf.append(claim.confidence)
        assert sum(true_conf) / len(true_conf) > (
            sum(false_conf) / len(false_conf) + 0.2
        )

    def test_precision_and_recall_helpers(self):
        world = generate_claim_world(ClaimWorldConfig(seed=6, n_items=10))
        # Deciding one wrong value per item → precision 0.
        wrong = {item: {"false-000-0"} for item in world.truths}
        assert world.precision_of(wrong) <= 0.1
        assert world.recall_of(wrong) == 0.0
        assert world.precision_of({}) == 0.0
