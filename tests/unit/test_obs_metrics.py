"""Unit tests for the metrics registry and its merge semantics."""

import pickle

import pytest

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    HistogramSnapshot,
    LabeledRegistry,
    MetricsRegistry,
    MetricsSnapshot,
    base_name,
    is_timing_metric,
    metric_key,
    parse_key,
)


class TestMetricKeys:
    def test_plain_name_is_the_key(self):
        assert metric_key("jobs_total", {}) == "jobs_total"

    def test_labels_render_sorted(self):
        key = metric_key("stage_total", {"stage": "fusion", "a": 1})
        assert key == "stage_total{a=1,stage=fusion}"

    def test_base_name_strips_labels(self):
        assert base_name("wave_seconds{scope=map}") == "wave_seconds"
        assert base_name("runs_total") == "runs_total"

    def test_timing_classification(self):
        assert is_timing_metric("stage_seconds{stage=fusion}")
        assert is_timing_metric("fuse_seconds")
        assert not is_timing_metric("runs_total")
        assert not is_timing_metric("seconds_budget_total")


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("runs_total").inc()
        registry.counter("runs_total").inc(2)
        assert registry.counter("runs_total").value == 3

    def test_labelled_counters_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("claims_total", extractor="dom").inc(5)
        registry.counter("claims_total", extractor="kb").inc(1)
        snapshot = registry.snapshot()
        assert snapshot.counters["claims_total{extractor=dom}"] == 5
        assert snapshot.counters["claims_total{extractor=kb}"] == 1

    def test_registering_without_inc_pins_a_zero(self):
        registry = MetricsRegistry()
        registry.counter("quarantine_records_total")
        assert registry.snapshot().counters == {
            "quarantine_records_total": 0
        }

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("runs_total").inc(-1)


class TestGauges:
    def test_last_set_wins_locally(self):
        registry = MetricsRegistry()
        registry.gauge("active_sources").set(4)
        registry.gauge("active_sources").set(2)
        assert registry.snapshot().gauges["active_sources"] == 2


class TestHistograms:
    def test_exact_boundary_lands_in_its_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", buckets=(1, 5, 10))
        for value in (1, 5, 10):  # upper bounds are inclusive
            histogram.observe(value)
        snapshot = registry.snapshot().histograms["sizes"]
        assert snapshot.counts == [1, 1, 1, 0]

    def test_overflow_goes_to_the_inf_slot(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", buckets=(1, 5))
        histogram.observe(6)
        histogram.observe(5000)
        snapshot = registry.snapshot().histograms["sizes"]
        assert snapshot.counts == [0, 0, 2]
        assert snapshot.count == 2
        assert snapshot.sum == 5006

    def test_default_buckets_follow_timing_convention(self):
        registry = MetricsRegistry()
        registry.histogram("stage_seconds").observe(0.2)
        registry.histogram("component_claims").observe(3)
        snapshots = registry.snapshot().histograms
        assert snapshots["stage_seconds"].bounds == tuple(
            sorted(DEFAULT_SECONDS_BUCKETS)
        )
        assert snapshots["component_claims"].bounds == tuple(
            sorted(DEFAULT_COUNT_BUCKETS)
        )

    def test_conflicting_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("sizes", buckets=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("sizes", buckets=(1, 3))
        # Omitting buckets reuses the registered bounds.
        registry.histogram("sizes").observe(1)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("sizes", buckets=())

    def test_merge_requires_identical_bounds(self):
        left = HistogramSnapshot(bounds=(1.0, 2.0), counts=[0, 0, 0])
        right = HistogramSnapshot(bounds=(1.0, 3.0), counts=[0, 0, 0])
        with pytest.raises(ValueError):
            left.merge(right)


def _worker_registry(observations, counter_by):
    registry = MetricsRegistry()
    for value in observations:
        registry.histogram("sizes", buckets=(2, 8)).observe(value)
        registry.counter("records_total").inc()
    for label, amount in counter_by.items():
        registry.counter("per_shard_total", shard=label).inc(amount)
        registry.gauge("peak", shard=label).set(amount)
    return registry


class TestMergeSemantics:
    def test_merged_workers_equal_serial_run(self):
        """Worker-local snapshots folded together == one serial registry."""
        shards = [
            ([1, 3, 9], {"a": 2}),
            ([2, 2], {"a": 1, "b": 5}),
            ([8], {"b": 1}),
        ]
        serial = _worker_registry(
            [v for obs, _ in shards for v in obs],
            {"a": 3, "b": 6},
        )
        # Gauges merge by max, so emulate the serial maximum.
        serial.gauge("peak", shard="a").set(2)
        serial.gauge("peak", shard="b").set(5)

        parent = MetricsRegistry()
        for observations, counters in shards:
            parent.merge_snapshot(
                _worker_registry(observations, counters).snapshot()
            )
        assert (
            parent.snapshot().to_json_dict()
            == serial.snapshot().to_json_dict()
        )

    def test_merge_is_commutative(self):
        first = _worker_registry([1, 9], {"a": 2}).snapshot()
        second = _worker_registry([3], {"b": 4}).snapshot()
        left = MetricsSnapshot().merge(first).merge(second)
        right = MetricsSnapshot().merge(second).merge(first)
        assert left.to_json_dict() == right.to_json_dict()

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        counter = registry.counter("runs_total")
        counter.inc()
        snapshot = registry.snapshot()
        counter.inc()
        assert snapshot.counters["runs_total"] == 1

    def test_snapshot_pickles(self):
        registry = _worker_registry([1, 5], {"a": 2})
        snapshot = registry.snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.to_json_dict() == snapshot.to_json_dict()


class TestDeterministicSubset:
    def test_timing_metrics_are_excluded(self):
        registry = MetricsRegistry()
        registry.counter("runs_total").inc()
        registry.histogram("stage_seconds", stage="fusion").observe(0.5)
        registry.histogram("component_claims").observe(4)
        registry.gauge("fuse_seconds").set(1.0)
        subset = registry.snapshot().deterministic_subset()
        assert "runs_total" in subset["counters"]
        assert "component_claims" in subset["histograms"]
        assert "stage_seconds{stage=fusion}" not in subset["histograms"]
        assert "fuse_seconds" not in subset["gauges"]

    def test_json_dict_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta_total").inc()
        registry.counter("alpha_total").inc()
        payload = registry.snapshot().to_json_dict()
        assert list(payload["counters"]) == ["alpha_total", "zeta_total"]


class TestParseKey:
    def test_round_trips_metric_key(self):
        key = metric_key("stage_total", {"stage": "fusion", "a": 1})
        name, labels = parse_key(key)
        assert name == "stage_total"
        assert labels == {"a": "1", "stage": "fusion"}
        assert metric_key(name, labels) == key

    def test_plain_name_has_no_labels(self):
        assert parse_key("runs_total") == ("runs_total", {})


class TestLabeledRegistry:
    def test_writes_land_in_the_backing_registry(self):
        registry = MetricsRegistry()
        view = registry.labeled(tenant="t00")
        assert isinstance(view, LabeledRegistry)
        view.counter("stream_published_total").inc(2)
        view.gauge("serving_version").set(3)
        view.histogram("stream_apply_seconds").observe(0.1)
        snapshot = registry.snapshot()
        assert snapshot.counters[
            "stream_published_total{tenant=t00}"
        ] == 2
        assert snapshot.gauges["serving_version{tenant=t00}"] == 3
        assert "stream_apply_seconds{tenant=t00}" in snapshot.histograms

    def test_fixed_labels_win_over_call_site_labels(self):
        registry = MetricsRegistry()
        view = registry.labeled(tenant="t00")
        view.counter("claims_total", tenant="spoof", source="dom").inc()
        assert registry.snapshot().counters == {
            "claims_total{source=dom,tenant=t00}": 1
        }

    def test_views_nest(self):
        registry = MetricsRegistry()
        view = registry.labeled(tenant="t00").labeled(shard="3")
        assert view.labels == {"shard": "3", "tenant": "t00"}
        view.counter("rows_total").inc()
        assert "rows_total{shard=3,tenant=t00}" in (
            registry.snapshot().counters
        )

    def test_snapshot_delegates_to_the_shared_registry(self):
        registry = MetricsRegistry()
        registry.counter("other_total").inc()
        view = registry.labeled(tenant="t00")
        view.counter("stream_published_total").inc()
        assert "other_total" in view.snapshot().counters


class TestLabelSubset:
    def test_filters_every_section_by_label_pair(self):
        registry = MetricsRegistry()
        registry.labeled(tenant="a").counter("stream_total").inc(1)
        registry.labeled(tenant="b").counter("stream_total").inc(5)
        registry.labeled(tenant="a").gauge("serving_version").set(2)
        registry.labeled(tenant="a").histogram("sizes").observe(1)
        registry.counter("unlabeled_total").inc()
        subset = registry.snapshot().label_subset(tenant="a")
        assert subset.counters == {"stream_total{tenant=a}": 1}
        assert subset.gauges == {"serving_version{tenant=a}": 2}
        assert list(subset.histograms) == ["sizes{tenant=a}"]

    def test_subset_requires_every_given_pair(self):
        registry = MetricsRegistry()
        registry.counter("x_total", tenant="a", shard="1").inc()
        registry.counter("x_total", tenant="a", shard="2").inc()
        subset = registry.snapshot().label_subset(tenant="a", shard="2")
        assert list(subset.counters) == ["x_total{shard=2,tenant=a}"]

    def test_subset_composes_with_deterministic_subset(self):
        registry = MetricsRegistry()
        view = registry.labeled(tenant="a")
        view.counter("stream_total").inc()
        view.histogram("stream_apply_seconds").observe(0.5)
        subset = registry.snapshot().label_subset(
            tenant="a"
        ).deterministic_subset()
        assert subset["counters"] == {"stream_total{tenant=a}": 1}
        assert subset["histograms"] == {}
