"""Unit tests for the exception hierarchy and public package surface."""

import importlib

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for name in (
            "OntologyError", "HierarchyError", "StoreError", "ParseError",
            "ExtractionError", "FusionError", "PipelineError",
            "GenerationError", "RetryExhaustedError", "StageTimeoutError",
            "QuarantineOverflowError",
        ):
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError)

    def test_fault_tolerance_errors_documented_and_exported(self):
        for name in (
            "RetryExhaustedError", "StageTimeoutError",
            "QuarantineOverflowError",
        ):
            exc_type = getattr(errors, name)
            assert exc_type.__doc__, f"{name} needs a docstring"
            assert getattr(repro, name) is exc_type
            assert name in repro.__all__

    def test_base_catches_subclasses(self):
        with pytest.raises(errors.ReproError):
            raise errors.FusionError("boom")

    def test_distinct_branches(self):
        assert not issubclass(errors.FusionError, errors.StoreError)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_root_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.rdf", "repro.htmldom", "repro.textproc", "repro.synth",
            "repro.extract", "repro.entity", "repro.fusion",
            "repro.mapreduce", "repro.core", "repro.evalx",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert getattr(mod, name) is not None

    def test_quickstart_api_shape(self):
        pipeline_cls = repro.KnowledgeBaseConstructionPipeline
        assert callable(pipeline_cls)
        assert hasattr(pipeline_cls, "run")
