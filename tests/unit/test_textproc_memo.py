"""Tests for the bounded similarity-cache layer."""

import pytest

from repro.htmldom.tagpath import RelativeTagPath, path_similarity
from repro.textproc.memo import (
    BoundedCache,
    clear_similarity_caches,
    configure_similarity_caches,
    memoized_pair,
    similarity_cache_stats,
    similarity_caches_enabled,
)
from repro.textproc.similarity import (
    jaro_winkler,
    levenshtein,
    name_similarity,
    token_jaccard,
)


@pytest.fixture(autouse=True)
def _clean_caches():
    """Each test starts from empty caches and the enabled state."""
    clear_similarity_caches()
    configure_similarity_caches(enabled=True)
    yield
    clear_similarity_caches()
    configure_similarity_caches(enabled=True)


class TestBoundedCache:
    def test_hit_and_miss_counters(self):
        cache = BoundedCache("t", max_size=8)
        assert cache.lookup("k") is not None  # a miss sentinel
        assert cache.misses == 1 and cache.hits == 0
        cache.store("k", 42)
        assert cache.lookup("k") == 42
        assert cache.hits == 1 and cache.misses == 1
        assert cache.stats().hit_rate == 0.5

    def test_bounded_size_with_evictions(self):
        cache = BoundedCache("t", max_size=4)
        for i in range(10):
            cache.store(i, i)
        assert len(cache) == 4
        assert cache.evictions == 6
        # FIFO: the oldest keys are gone, the newest survive.
        assert cache.lookup(9) == 9
        from repro.textproc.memo import _MISS

        assert cache.lookup(0) is _MISS

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            BoundedCache("t", max_size=0)


class TestMemoizedPair:
    def test_computes_once_per_pair(self):
        calls = []

        @memoized_pair("test-pair-once", max_size=16)
        def f(a, b):
            calls.append((a, b))
            return len(a) + len(b)

        assert f("x", "yy") == 3
        assert f("x", "yy") == 3
        assert calls == [("x", "yy")]

    def test_symmetric_key_shares_entry(self):
        @memoized_pair("test-pair-sym", max_size=16)
        def f(a, b):
            return len(a) + len(b)

        f("aa", "b")
        assert f.cache.misses == 1
        f("b", "aa")
        assert f.cache.hits == 1

    def test_kwargs_partition_the_key(self):
        @memoized_pair("test-pair-kw", max_size=16)
        def f(a, b, scale=1):
            return (len(a) + len(b)) * scale

        assert f("a", "b", scale=1) == 2
        assert f("a", "b", scale=3) == 6  # no collision
        assert f.cache.misses == 2


class TestSimilarityFunctionsCached:
    def test_scores_identical_with_cache_on_and_off(self):
        pairs = [
            ("adelaide", "adelade"),
            ("university of adelaide", "adelaide university"),
            ("publication date", "date of publication"),
            ("", "x"),
            ("same", "same"),
        ]
        functions = [
            lambda a, b: levenshtein(a, b),
            lambda a, b: levenshtein(a, b, limit=2),
            jaro_winkler,
            token_jaccard,
            name_similarity,
        ]
        configure_similarity_caches(enabled=True)
        cached = [[f(a, b) for a, b in pairs] for f in functions]
        # Warm pass: answered from the tables, must not drift.
        warm = [[f(a, b) for a, b in pairs] for f in functions]
        configure_similarity_caches(enabled=False)
        plain = [[f(a, b) for a, b in pairs] for f in functions]
        assert cached == plain == warm

    def test_levenshtein_trivial_calls_bypass_cache(self):
        stats_before = similarity_cache_stats()["levenshtein"].lookups
        assert levenshtein("same", "same") == 0
        assert levenshtein("", "abc") == 3
        assert levenshtein("ab", "abcdef", limit=2) == 3
        assert similarity_cache_stats()["levenshtein"].lookups == stats_before

    def test_tagpath_similarity_cached_and_identical(self):
        left = RelativeTagPath(("tr", "td"), "table", ("td",))
        right = RelativeTagPath(("tr", "td"), "table", ("td", "div"))
        configure_similarity_caches(enabled=True)
        cached = path_similarity(left, right)
        again = path_similarity(left, right)
        configure_similarity_caches(enabled=False)
        plain = path_similarity(left, right)
        assert cached == again == plain
        assert left.similarity(right) == plain

    def test_global_toggle(self):
        configure_similarity_caches(enabled=False)
        assert not similarity_caches_enabled()
        before = similarity_cache_stats()["name-similarity"].lookups
        name_similarity("alpha", "beta")
        assert similarity_cache_stats()["name-similarity"].lookups == before
        configure_similarity_caches(enabled=True)
        assert similarity_caches_enabled()

    def test_resize_clears_and_bounds(self):
        from repro.textproc.memo import _REGISTRY

        sizes = {name: cache.max_size for name, cache in _REGISTRY.items()}
        configure_similarity_caches(max_size=4)
        try:
            for i in range(20):
                name_similarity(f"left {i}", f"right {i}")
            stats = similarity_cache_stats()["name-similarity"]
            assert stats.size <= 4
            assert stats.evictions > 0
        finally:
            for name, cache in _REGISTRY.items():
                cache.max_size = sizes[name]
                cache.clear()

    def test_stats_snapshot_shape(self):
        name_similarity("alpha", "beta")
        snapshot = similarity_cache_stats()
        assert {"levenshtein", "jaro-winkler", "token-jaccard",
                "name-similarity", "tagpath-sequence",
                "tagpath-relative"} <= set(snapshot)
        entry = snapshot["name-similarity"].as_dict()
        assert {"hits", "misses", "evictions", "size", "max_size",
                "hit_rate"} <= set(entry)
