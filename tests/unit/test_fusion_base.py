"""Unit tests for the fusion claim model."""

import pytest

from repro.errors import FusionError
from repro.fusion.base import (
    Claim,
    ClaimSet,
    FusionResult,
    normalize_beliefs,
    value_key,
)
from repro.fusion.vote import Vote
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


def claim(item, value, source, extractor="ex", confidence=1.0):
    return Claim(item, value_key(value), value, source, extractor, confidence)


class TestValueKey:
    def test_casefolds(self):
        assert value_key("Paris") == value_key("PARIS")

    def test_collapses_whitespace(self):
        assert value_key("  New   York ") == "new york"


class TestClaimSet:
    def test_deduplicates_identical_claims(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "v", "a"),
                claim(("s", "p"), "v", "a"),
            ]
        )
        assert len(claims) == 1

    def test_dedup_keeps_max_confidence(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "v", "a", confidence=0.2),
                claim(("s", "p"), "v", "a", confidence=0.9),
                claim(("s", "p"), "v", "a", confidence=0.5),
            ]
        )
        assert next(iter(claims)).confidence == 0.9

    def test_same_value_different_sources_kept(self):
        claims = ClaimSet(
            [claim(("s", "p"), "v", "a"), claim(("s", "p"), "v", "b")]
        )
        assert len(claims) == 2
        assert claims.sources() == {"a", "b"}

    def test_values_of(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "v1", "a"),
                claim(("s", "p"), "v2", "b"),
                claim(("s", "q"), "v1", "a"),
            ]
        )
        values = claims.values_of(("s", "p"))
        assert set(values) == {"v1", "v2"}

    def test_sources_claiming(self):
        claims = ClaimSet(
            [claim(("s", "p"), "v1", "a"), claim(("s", "p"), "v2", "b")]
        )
        assert claims.sources_claiming(("s", "p")) == {"a", "b"}
        assert claims.sources_claiming(("x", "y")) == set()

    def test_reindex_after_mutation(self):
        claims = ClaimSet([claim(("s", "p"), "v1", "a")])
        assert claims.items() == [("s", "p")]
        claims.add(claim(("s", "q"), "v1", "a"))
        assert set(claims.items()) == {("s", "p"), ("s", "q")}

    def test_add_after_read_marks_index_stale(self):
        claims = ClaimSet([claim(("s", "p"), "v1", "a")])
        # Force an index build, then mutate: every read API must see
        # the new claim, not the cached index.
        assert claims.values_of(("s", "p")).keys() == {"v1"}
        claims.add(claim(("s", "p"), "v2", "b"))
        assert claims._stale
        assert claims.values_of(("s", "p")).keys() == {"v1", "v2"}
        assert claims.sources_claiming(("s", "p")) == {"a", "b"}
        claims.add(claim(("t", "p"), "v1", "a"))
        assert claims.items() == [("s", "p"), ("t", "p")]

    def test_stats(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "v1", "a"),
                claim(("s", "p"), "v2", "b", extractor="other"),
                claim(("t", "p"), "v1", "a"),
            ]
        )
        stats = claims.stats()
        assert stats.n_items == 2
        assert stats.n_values == 3
        assert stats.n_sources == 2
        assert stats.n_extractors == 2
        assert stats.n_claims == 3

    def test_stats_track_mutation(self):
        claims = ClaimSet([claim(("s", "p"), "v1", "a")])
        assert claims.stats().n_items == 1
        claims.add(claim(("t", "p"), "v1", "a"))
        assert claims.stats().n_items == 2

    def test_from_scored_triples(self):
        scored = ScoredTriple(
            Triple("s", "p", Value("PARIS")),
            Provenance("src", "dom"),
            0.7,
        )
        claims = ClaimSet.from_scored_triples([scored])
        only = next(iter(claims))
        assert only.value == "paris"
        assert only.lexical == "PARIS"
        assert only.extractor_id == "dom"
        assert only.confidence == 0.7


class TestFusionResult:
    def test_is_true_and_belief(self):
        result = FusionResult("m")
        result.truths[("s", "p")] = {"v"}
        result.belief[(("s", "p"), "v")] = 0.9
        assert result.is_true(("s", "p"), "v")
        assert not result.is_true(("s", "p"), "w")
        assert result.belief_of(("s", "p"), "v") == 0.9
        assert result.belief_of(("s", "p"), "w") == 0.0


class TestGuards:
    def test_empty_claims_rejected(self):
        with pytest.raises(FusionError):
            Vote().fuse(ClaimSet())


class TestNormalizeBeliefs:
    def test_scales_to_unit_max(self):
        assert normalize_beliefs({"a": 2.0, "b": 1.0}) == {"a": 1.0, "b": 0.5}

    def test_empty(self):
        assert normalize_beliefs({}) == {}

    def test_all_zero(self):
        assert normalize_beliefs({"a": 0.0}) == {"a": 0.0}
