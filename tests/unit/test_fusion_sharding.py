"""Unit tests for connected-component sharded fusion."""

import pytest

from repro.errors import FusionError
from repro.fusion.accu import Accu
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.fusion.multitruth import MultiTruth
from repro.fusion.sharding import ShardStats, fuse_sharded, shard_claims
from repro.fusion.vote import Vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


def namespaced_world(seed, namespace, **overrides):
    """A claim world with item/source ids prefixed by ``namespace``.

    Distinct namespaces share no sources and no items, so a merged set
    splits back into one connected component per world.
    """
    config = ClaimWorldConfig(
        seed=seed, n_items=overrides.pop("n_items", 40),
        n_sources=overrides.pop("n_sources", 6), **overrides
    )
    world = generate_claim_world(config)
    claims = ClaimSet()
    for c in world.claims:
        claims.add(
            Claim(
                item=(namespace + c.item[0], c.item[1]),
                value=c.value,
                lexical=c.lexical,
                source_id=namespace + c.source_id,
                extractor_id=c.extractor_id,
                confidence=c.confidence,
            )
        )
    return claims


def three_component_claims():
    merged = ClaimSet()
    for i, seed in enumerate([11, 22, 33]):
        for c in namespaced_world(seed, f"w{i}:"):
            merged.add(c)
    return merged


class TestShardClaims:
    def test_splits_into_components(self):
        merged = three_component_claims()
        shards = shard_claims(merged)
        assert len(shards) == 3
        assert sum(len(s) for s in shards) == len(merged)
        # No source straddles two shards.
        seen = set()
        for shard in shards:
            assert not (shard.sources() & seen)
            seen |= shard.sources()

    def test_single_component_world(self):
        claims = generate_claim_world(
            ClaimWorldConfig(seed=3, n_items=30, n_sources=5)
        ).claims
        assert len(shard_claims(claims)) == 1

    def test_claims_keep_relative_order(self):
        merged = three_component_claims()
        shards = shard_claims(merged)
        position = {id(c): i for i, c in enumerate(merged)}
        for shard in shards:
            order = [position[id(c)] for c in shard]
            assert order == sorted(order)


class TestFuseSharded:
    @pytest.mark.parametrize(
        "workers,executor", [(1, "serial"), (2, "process"), (4, "process")]
    )
    @pytest.mark.parametrize(
        "method", [Accu(tolerance=0.0), MultiTruth(tolerance=0.0)],
        ids=["accu", "multitruth"],
    )
    def test_matches_serial_at_fixed_iterations(
        self, method, workers, executor
    ):
        merged = three_component_claims()
        serial = method.fuse(merged)
        sharded, stats = fuse_sharded(
            method, merged, workers=workers, executor=executor
        )
        assert sharded.truths == serial.truths
        assert sharded.iterations == serial.iterations
        assert sharded.belief.keys() == serial.belief.keys()
        for key, score in serial.belief.items():
            assert sharded.belief[key] == pytest.approx(score, abs=1e-9)
        for source, quality in serial.source_quality.items():
            assert sharded.source_quality[source] == pytest.approx(
                quality, abs=1e-9
            )
        assert stats.components == 3
        assert stats.workers == workers
        assert stats.executor == executor

    def test_truths_match_with_early_exit(self):
        # Default tolerances: components may stop at different rounds
        # than the global run, but the decided truths still agree.
        merged = three_component_claims()
        method = MultiTruth()
        serial = method.fuse(merged)
        sharded, _stats = fuse_sharded(method, merged, workers=2)
        assert sharded.truths == serial.truths

    def test_stats_accounting(self):
        merged = three_component_claims()
        _result, stats = fuse_sharded(Vote(), merged, workers=2)
        assert isinstance(stats, ShardStats)
        assert len(stats.component_claims) == 3
        assert sum(stats.component_claims) == len(merged)
        assert stats.largest_claims == max(stats.component_claims)
        assert stats.largest_items == max(stats.component_items)

    def test_converged_at_is_slowest_component(self):
        merged = three_component_claims()
        result, _stats = fuse_sharded(Accu(), merged, workers=2)
        assert result.converged_at is not None
        assert result.converged_at <= result.iterations
        per_shard = [Accu().fuse(s) for s in shard_claims(merged)]
        assert result.converged_at == max(r.converged_at for r in per_shard)

    def test_converged_at_none_when_any_component_caps(self):
        merged = three_component_claims()
        result, _stats = fuse_sharded(
            Accu(tolerance=0.0), merged, workers=2
        )
        assert result.converged_at is None

    def test_rejects_bad_arguments(self):
        claims = three_component_claims()
        with pytest.raises(FusionError):
            fuse_sharded(Vote(), claims, executor="fork-bomb")
        with pytest.raises(FusionError):
            fuse_sharded(Vote(), claims, workers=0)
        with pytest.raises(FusionError):
            fuse_sharded(Vote(), ClaimSet())


class TestKnowledgeFusionParallel:
    def test_parallel_matches_serial(self):
        merged = three_component_claims()
        serial = KnowledgeFusion().fuse(merged)
        parallel_method = KnowledgeFusion(
            parallelism=2, fusion_executor="process"
        )
        parallel = parallel_method.fuse(merged)
        assert parallel.truths == serial.truths
        assert parallel_method.last_shard_stats.components == 3

    def test_serial_run_clears_stats(self):
        merged = three_component_claims()
        method = KnowledgeFusion(parallelism=2)
        method.fuse(merged)
        assert method.last_shard_stats is not None
        method.parallelism = 1
        method.fuse(merged)
        assert method.last_shard_stats is None
