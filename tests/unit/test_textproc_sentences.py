"""Unit tests for sentence splitting."""

from repro.textproc.sentences import split_sentences


class TestSplitSentences:
    def test_simple_periods(self):
        assert split_sentences("One. Two. Three.") == [
            "One.", "Two.", "Three.",
        ]

    def test_exclamation_and_question(self):
        assert split_sentences("Stop! Why? Go.") == ["Stop!", "Why?", "Go."]

    def test_abbreviation_not_boundary(self):
        assert split_sentences("Dr. Smith arrived. He sat.") == [
            "Dr. Smith arrived.", "He sat.",
        ]

    def test_initial_not_boundary(self):
        assert split_sentences("J. Smith wrote it. True.") == [
            "J. Smith wrote it.", "True.",
        ]

    def test_lowercase_continuation_not_boundary(self):
        assert split_sentences("approx. one hundred. Next.") == [
            "approx. one hundred.", "Next.",
        ]

    def test_trailing_unterminated(self):
        assert split_sentences("Complete. And unfinished") == [
            "Complete.", "And unfinished",
        ]

    def test_empty(self):
        assert split_sentences("") == []

    def test_whitespace_only(self):
        assert split_sentences("   \n  ") == []

    def test_closing_quote_after_period(self):
        sentences = split_sentences('He said "stop." Then left.')
        assert len(sentences) == 2

    def test_digits_follow_period(self):
        assert split_sentences("Founded in 1850. 2000 students.") == [
            "Founded in 1850.", "2000 students.",
        ]

    def test_single_sentence(self):
        assert split_sentences("Just one sentence.") == ["Just one sentence."]
