"""Unit tests for the multi-tenant serving manager."""

import pytest

from repro.errors import ServingError
from repro.obs.metrics import MetricsRegistry
from repro.serving.tenancy import TenantManager, tenant_fingerprint
from repro.synth.tenants import (
    TenantMixConfig,
    TenantSpec,
    build_tenant_workload,
)


def small_mix(n=2, seed=31):
    return TenantMixConfig(
        n_tenants=n, seed=seed, kinds=("static",), n_items=8,
        n_sources=3, parts=2,
    )


class TestManagerBasics:
    def test_needs_at_least_one_tenant(self):
        with pytest.raises(ServingError, match="at least one"):
            TenantManager([])

    def test_duplicate_tenant_names_rejected(self):
        workload = build_tenant_workload(TenantSpec(name="twin", seed=1))
        with pytest.raises(ServingError, match="duplicate"):
            TenantManager([workload, workload])

    def test_unknown_tenant_lookup_raises(self):
        manager = TenantManager.from_mix(small_mix())
        with pytest.raises(ServingError, match="unknown tenant"):
            manager.tenant("ghost")

    def test_drain_finishes_every_tenant(self):
        manager = TenantManager.from_mix(small_mix(n=3))
        rounds = manager.drain_fair()
        assert rounds > 0
        for name in manager.names():
            runtime = manager.tenant(name)
            assert runtime.finished
            assert runtime.halted is None
            assert runtime.published == len(runtime.workload.deltas)
        for status in manager.statuses().values():
            assert status.lag_events == 0

    def test_drain_is_idempotent_once_finished(self):
        manager = TenantManager.from_mix(small_mix())
        manager.drain_fair()
        versions = {
            name: manager.tenant(name).server.versions.current.version_id
            for name in manager.names()
        }
        assert manager.drain_fair() == 0  # nothing live: zero rounds
        for name, version_id in versions.items():
            current = manager.tenant(name).server.versions.current
            assert current.version_id == version_id

    def test_decommission_removes_from_the_loop_only(self):
        manager = TenantManager.from_mix(small_mix(n=2))
        manager.drain_fair()
        gone = manager.decommission("tenant00")
        assert manager.names() == ["tenant01"]
        # The stack survives for post-mortem reads.
        assert gone.server.versions.current.version_id > 0
        with pytest.raises(ServingError):
            manager.tenant("tenant00")


class TestPerTenantMetrics:
    def test_every_stream_series_carries_its_tenant_label(self):
        registry = MetricsRegistry()
        manager = TenantManager.from_mix(small_mix(n=2), metrics=registry)
        manager.drain_fair()
        snapshot = registry.snapshot().to_json_dict()
        for kind in ("counters", "gauges", "histograms"):
            for key in snapshot[kind]:
                if key.startswith(("stream_", "serving_")):
                    assert "tenant=" in key, key
        assert registry.gauge("tenant_count").value == 2

    def test_label_subset_separates_tenants(self):
        registry = MetricsRegistry()
        manager = TenantManager.from_mix(small_mix(n=2), metrics=registry)
        manager.drain_fair()
        snapshot = registry.snapshot()
        mine = snapshot.label_subset(tenant="tenant00")
        assert mine.counters
        assert all("tenant=tenant00" in key for key in mine.counters)


class TestPerTenantCheckpoints:
    def test_checkpoints_land_under_per_tenant_subdirectories(self, tmp_path):
        manager = TenantManager.from_mix(
            small_mix(n=2), checkpoint_root=tmp_path
        )
        manager.drain_fair()
        paths = manager.checkpoint_all()
        assert sorted(paths) == ["tenant00", "tenant01"]
        for name, path in paths.items():
            assert path == tmp_path / name / "incremental.ckpt"
            assert path.exists()

    def test_checkpoint_payload_records_the_serving_cursor(self, tmp_path):
        manager = TenantManager.from_mix(
            small_mix(n=1), checkpoint_root=tmp_path
        )
        manager.drain_fair()
        runtime = manager.tenant("tenant00")
        runtime.checkpoint()
        payload = runtime.checkpoints.load("incremental")
        version = runtime.server.versions.current
        assert payload["tenant"] == "tenant00"
        assert payload["version_id"] == version.version_id
        assert payload["offset"] == version.offset

    def test_fingerprint_tracks_the_spec(self):
        a = tenant_fingerprint(TenantSpec(name="t", seed=1))
        b = tenant_fingerprint(TenantSpec(name="t", seed=2))
        assert a != b
        assert a == tenant_fingerprint(TenantSpec(name="t", seed=1))


class TestEvalReport:
    def test_rows_cover_every_tenant_with_kind_specific_columns(self):
        mix = TenantMixConfig(n_tenants=3, seed=7)  # one of each kind
        manager = TenantManager.from_mix(mix)
        rounds = manager.drain_fair()
        report = manager.eval_rows(rounds=rounds)
        assert [row.kind for row in report.rows] == [
            "static", "drift", "copying",
        ]
        static, drift, copying = report.rows
        for row in report.rows:
            assert 0.0 <= row.precision <= 1.0
            assert 0.0 <= row.f1 <= 1.0
            assert row.published == row.deltas
            assert row.halted is None
        assert drift.freshness_lag is not None
        assert static.freshness_lag is None
        assert copying.suppressed is not None
        assert static.suppressed is None

    def test_report_json_is_deterministic_and_table_renders(self):
        first = TenantManager.from_mix(small_mix(n=2))
        second = TenantManager.from_mix(small_mix(n=2))
        r1 = first.eval_rows(rounds=first.drain_fair())
        r2 = second.eval_rows(rounds=second.drain_fair())
        assert r1.to_json_dict() == r2.to_json_dict()
        table = r1.table()
        assert "tenant00" in table and "tenant01" in table
        with pytest.raises(KeyError):
            r1.row("ghost")
