"""Unit tests for the RDF triple/value/provenance data model."""

import pytest

from repro.rdf.triple import (
    Provenance,
    ScoredTriple,
    Triple,
    Value,
    ValueKind,
    distinct_triples,
    group_by_item,
)


class TestValue:
    def test_string_constructor(self):
        value = Value.string("Adelaide")
        assert value.lexical == "Adelaide"
        assert value.kind is ValueKind.STRING

    def test_number_constructor(self):
        assert Value.number(42).lexical == "42"
        assert Value.number(42).kind is ValueKind.NUMBER

    def test_entity_constructor(self):
        value = Value.entity("book/0001")
        assert value.kind is ValueKind.ENTITY

    def test_empty_lexical_rejected(self):
        with pytest.raises(ValueError):
            Value("")

    def test_equality_and_hash(self):
        assert Value("x") == Value("x")
        assert hash(Value("x")) == hash(Value("x"))
        assert Value("x") != Value("x", ValueKind.NUMBER)

    def test_str(self):
        assert str(Value("Paris")) == "Paris"


class TestTriple:
    def test_item_groups_subject_predicate(self):
        triple = Triple("e1", "capital", Value("Paris"))
        assert triple.item == ("e1", "capital")

    def test_empty_subject_rejected(self):
        with pytest.raises(ValueError):
            Triple("", "p", Value("v"))

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Triple("s", "", Value("v"))

    def test_str_renders_parenthesised(self):
        triple = Triple("s", "p", Value("v"))
        assert str(triple) == "(s, p, v)"

    def test_hashable(self):
        assert len({Triple("s", "p", Value("v")), Triple("s", "p", Value("v"))}) == 1


class TestProvenance:
    def test_requires_source(self):
        with pytest.raises(ValueError):
            Provenance("", "dom")

    def test_requires_extractor(self):
        with pytest.raises(ValueError):
            Provenance("site", "")

    def test_locator_optional(self):
        assert Provenance("site", "dom").locator == ""


class TestScoredTriple:
    def _scored(self, confidence=0.5):
        return ScoredTriple(
            Triple("s", "p", Value("v")), Provenance("src", "ex"), confidence
        )

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            self._scored(1.5)
        with pytest.raises(ValueError):
            self._scored(-0.1)

    def test_with_confidence_copies(self):
        original = self._scored(0.5)
        updated = original.with_confidence(0.9)
        assert updated.confidence == 0.9
        assert original.confidence == 0.5
        assert updated.triple is original.triple


class TestGrouping:
    def _claims(self):
        prov_a = Provenance("a", "dom")
        prov_b = Provenance("b", "dom")
        return [
            ScoredTriple(Triple("s", "p", Value("v1")), prov_a),
            ScoredTriple(Triple("s", "p", Value("v2")), prov_b),
            ScoredTriple(Triple("s", "q", Value("v1")), prov_a),
        ]

    def test_group_by_item(self):
        grouped = group_by_item(self._claims())
        assert set(grouped) == {("s", "p"), ("s", "q")}
        assert len(grouped[("s", "p")]) == 2

    def test_distinct_triples(self):
        claims = self._claims()
        claims.append(claims[0])
        assert len(distinct_triples(claims)) == 3
