"""Unit tests for the lexical-pattern engine."""

import pytest

from repro.errors import ParseError
from repro.textproc.patterns import (
    LexicalPattern,
    induce_pattern,
    match_any,
)
from repro.textproc.tokenize import tokenize_words


class TestCompilation:
    def test_duplicate_slots_rejected(self):
        with pytest.raises(ParseError):
            LexicalPattern("<A> of <A>")

    def test_empty_pattern_rejected(self):
        with pytest.raises(ParseError):
            LexicalPattern("   ")

    def test_empty_slot_rejected(self):
        with pytest.raises(ParseError):
            LexicalPattern("<> of x")

    def test_bad_max_slot_tokens(self):
        with pytest.raises(ParseError):
            LexicalPattern("<A>", max_slot_tokens=0)

    def test_slot_names_recorded(self):
        pattern = LexicalPattern("the <A> of <E>")
        assert pattern.slot_names == ("A", "E")


class TestMatching:
    def test_literal_case_insensitive(self):
        pattern = LexicalPattern("the <A> of <E>")
        matches = pattern.match_text("The capital of France")
        assert len(matches) == 1
        assert matches[0].text("A") == "capital"
        assert matches[0].text("E") == "France"

    def test_alternation(self):
        pattern = LexicalPattern("what|who is <E>")
        assert pattern.match_text("Who is Alice")
        assert pattern.match_text("What is this")
        assert not pattern.match_text("Where is this")

    def test_optional_group_present(self):
        # Anchored matching forces the slot to consume the full tail,
        # so the optional determiner is taken by the group, not by E.
        pattern = LexicalPattern("the <A> of [the|a|an] <E>")
        matches = pattern.match_text(
            "the capital of the United States", anchored=True
        )
        assert matches[0].text("E") == "United States"

    def test_optional_group_absent(self):
        pattern = LexicalPattern("the <A> of [the|a|an] <E>")
        matches = pattern.match_text("the capital of France")
        assert matches[0].text("E") == "France"

    def test_multi_token_slot(self):
        pattern = LexicalPattern("the <A> of <E>")
        matches = pattern.match_text("the head of state of Atlantis")
        assert matches  # A may span "head" with E spanning rest, etc.

    def test_slot_cannot_cross_punctuation(self):
        pattern = LexicalPattern("the <A> of <E>")
        matches = pattern.match_text("the end. of story")
        assert not matches

    def test_anchored_requires_full_consumption(self):
        pattern = LexicalPattern("<E> 's <A>")
        assert pattern.match_text("France's capital", anchored=True)
        # Trailing punctuation cannot be absorbed by a slot, so the
        # anchored match fails on un-stripped queries.
        assert not pattern.match_text("France's capital?", anchored=True)

    def test_unanchored_scans(self):
        pattern = LexicalPattern("<E> 's <A>")
        matches = pattern.match_text("see France's capital now")
        assert matches

    def test_validator_forces_backtracking(self):
        entities = {"united states"}
        pattern = LexicalPattern(
            "the <A> of <E>",
            validators={"E": lambda toks: " ".join(toks).lower() in entities},
        )
        matches = pattern.match_text("the capital of united states")
        assert matches[0].text("E") == "united states"

    def test_validator_rejects_all(self):
        pattern = LexicalPattern(
            "the <A> of <E>", validators={"E": lambda toks: False}
        )
        assert not pattern.match_text("the capital of France")

    def test_multiple_matches(self):
        pattern = LexicalPattern("x <A> y")
        matches = pattern.match_text("x a y and x b y")
        assert [m.text("A") for m in matches] == ["a", "b"]

    def test_max_slot_tokens_enforced(self):
        pattern = LexicalPattern("the <A> end", max_slot_tokens=2)
        assert pattern.match_text("the a b end")
        assert not pattern.match_text("the a b c end")

    def test_empty_tokens(self):
        pattern = LexicalPattern("<A>")
        assert pattern.match_tokens([]) == []


class TestInducePattern:
    def test_basic_induction(self):
        tokens = tokenize_words("The capital of France is Paris.")
        pattern = induce_pattern(
            tokens, {"A": (1, 2), "E": (3, 4), "V": (5, 6)}
        )
        assert pattern is not None
        assert pattern.source == "the <A> of <E> is <V> ."
        matches = pattern.match_text("the currency of Japan is Yen .")
        assert matches and matches[0].text("V") == "Yen"

    def test_overlapping_spans_rejected(self):
        tokens = tokenize_words("a b c d")
        assert induce_pattern(tokens, {"X": (0, 2), "Y": (1, 3)}) is None

    def test_out_of_range_rejected(self):
        tokens = tokenize_words("a b")
        assert induce_pattern(tokens, {"X": (0, 5)}) is None

    def test_empty_span_rejected(self):
        tokens = tokenize_words("a b c")
        assert induce_pattern(tokens, {"X": (1, 1)}) is None

    def test_no_slots_rejected(self):
        assert induce_pattern(tokenize_words("a b"), {}) is None


class TestMatchAny:
    def test_collects_across_patterns(self):
        patterns = [
            LexicalPattern("the <A> of <E>"),
            LexicalPattern("<E> 's <A>"),
        ]
        hits = match_any(patterns, tokenize_words("France's capital"))
        assert len(hits) == 1
        assert hits[0][0].source == "<E> 's <A>"
