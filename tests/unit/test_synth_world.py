"""Unit tests for the ground-truth world."""

import pytest

from repro.errors import GenerationError
from repro.rdf.triple import Triple, Value
from repro.synth.world import GroundTruthWorld, WorldConfig


class TestConfigValidation:
    def test_unknown_class_rejected(self):
        config = WorldConfig(entities_per_class={"Dragon": 5})
        with pytest.raises(GenerationError):
            GroundTruthWorld(config)

    def test_zero_entities_rejected(self):
        config = WorldConfig(entities_per_class={"Book": 0})
        with pytest.raises(GenerationError):
            GroundTruthWorld(config)

    def test_small_value_pool_rejected(self):
        config = WorldConfig(value_pool_size=1)
        with pytest.raises(GenerationError):
            GroundTruthWorld(config)


class TestWorldStructure:
    def test_classes_match_config(self, world):
        assert set(world.classes()) == {
            "Book", "Film", "Country", "University", "Hotel",
        }

    def test_entity_counts(self, world):
        assert len(world.entities("Book")) == 25
        assert len(world.entities("Hotel")) == 15

    def test_entity_ids_unique(self, world):
        ids = [
            entity.entity_id
            for class_name in world.classes()
            for entity in world.entities(class_name)
        ]
        assert len(ids) == len(set(ids))

    def test_universe_sizes(self, world):
        assert len(world.attribute_names("Book")) == 60
        assert len(world.attribute_names("Country")) == 220

    def test_every_entity_has_facts(self, world):
        for class_name in world.classes():
            for entity in world.entities(class_name):
                assert world.truth.match(subject=entity.entity_id)

    def test_deterministic(self):
        config = WorldConfig(
            seed=3, entities_per_class={"Book": 5},
            universe_sizes={"Book": 30},
        )
        first = GroundTruthWorld(config)
        second = GroundTruthWorld(config)
        assert [e.name for e in first.entities("Book")] == [
            e.name for e in second.entities("Book")
        ]
        assert len(first.facts()) == len(second.facts())


class TestTruthSemantics:
    def test_functional_attributes_single_leaf(self, world):
        catalog = world.catalogs["Book"]
        for entity in world.entities("Book"):
            for spec in catalog.attributes:
                if not spec.functional:
                    continue
                leaves = world.true_leaf_values(entity.entity_id, spec.name)
                assert len(leaves) <= 1

    def test_nonfunctional_can_have_multiple(self, world):
        catalog = world.catalogs["Film"]
        nonfunctional = [s.name for s in catalog.attributes if not s.functional]
        counts = [
            len(world.true_leaf_values(entity.entity_id, name))
            for entity in world.entities("Film")
            for name in nonfunctional
        ]
        assert max(counts) > 1

    def test_hierarchy_expansion(self, world):
        # Find a hierarchical fact and check ancestors count as true.
        for entity in world.entities("Country"):
            leaves = world.true_leaf_values(entity.entity_id, "capital")
            if leaves:
                leaf = next(iter(leaves))
                ancestors = world.hierarchy.ancestors(leaf)
                assert ancestors  # cities always sit under region/country
                expanded = world.true_values(entity.entity_id, "capital")
                assert set(ancestors) <= expanded
                return
        pytest.fail("no country with a capital fact")

    def test_is_true_hierarchy_aware(self, world):
        for entity in world.entities("Country"):
            leaves = world.true_leaf_values(entity.entity_id, "capital")
            if leaves:
                leaf = next(iter(leaves))
                parent = world.hierarchy.parent(leaf)
                assert world.is_true(
                    Triple(entity.entity_id, "capital", Value(leaf))
                )
                assert world.is_true(
                    Triple(entity.entity_id, "capital", Value(parent))
                )
                assert not world.is_true(
                    Triple(entity.entity_id, "capital", Value("Nowhere123"))
                )
                return
        pytest.fail("no country with a capital fact")

    def test_value_pools_contain_truths(self, world):
        catalog = world.catalogs["Book"]
        spec = catalog.spec("author")
        pool = set(world.value_pool("Book", spec))
        for entity in world.entities("Book"):
            leaves = world.true_leaf_values(entity.entity_id, "author")
            assert leaves <= pool

    def test_entity_index_covers_aliases(self, world):
        index = world.entity_index()
        for class_name in world.classes():
            for entity in world.entities(class_name):
                for surface in entity.surface_forms():
                    assert surface.lower() in index
