"""Unit tests for gold-standard source calibration."""

import pytest

from repro.errors import FusionError
from repro.fusion.accu import Accu
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.calibration import (
    calibrate_sources,
    claim_world_oracle,
    world_oracle,
)
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


def claim(item, value, source):
    return Claim(item, value, value, source, "ex")


class TestValidation:
    def test_bad_fraction_rejected(self):
        claims = ClaimSet([claim(("e", "p"), "v", "s")])
        with pytest.raises(FusionError):
            calibrate_sources(claims, lambda i, v: True, label_fraction=0)

    def test_empty_claims_rejected(self):
        with pytest.raises(FusionError):
            calibrate_sources(ClaimSet(), lambda i, v: True)


class TestEstimates:
    @pytest.fixture(scope="class")
    def world(self):
        return generate_claim_world(
            ClaimWorldConfig(
                seed=3, n_items=120, n_sources=8,
                source_accuracies=[0.95, 0.9, 0.9, 0.85, 0.4, 0.4, 0.35, 0.3],
                false_pool=3,
            )
        )

    def test_orders_sources_correctly(self, world):
        calibration = calibrate_sources(
            world.claims, claim_world_oracle(world), label_fraction=0.5
        )
        good = [s for s, a in world.source_accuracy.items() if a > 0.8]
        bad = [s for s, a in world.source_accuracy.items() if a < 0.5]
        avg = lambda xs: sum(calibration.accuracy[s] for s in xs) / len(xs)
        assert avg(good) > avg(bad) + 0.2

    def test_estimates_in_unit_interval(self, world):
        calibration = calibrate_sources(
            world.claims, claim_world_oracle(world), label_fraction=0.3
        )
        for table in (
            calibration.accuracy,
            calibration.sensitivity,
            calibration.specificity,
        ):
            assert all(0.0 <= v <= 1.0 for v in table.values())

    def test_label_budget_respected(self, world):
        calibration = calibrate_sources(
            world.claims, claim_world_oracle(world),
            label_fraction=1.0, max_labels=10,
        )
        assert calibration.labeled_items == 10

    def test_deterministic_given_seed(self, world):
        oracle = claim_world_oracle(world)
        first = calibrate_sources(world.claims, oracle, seed=5)
        second = calibrate_sources(world.claims, oracle, seed=5)
        assert first.accuracy == second.accuracy

    def test_smoothing_anchors_unlabeled_sources(self):
        claims = ClaimSet(
            [claim(("e0", "p"), "v", "seen"),
             claim(("e1", "p"), "v", "unseen")]
        )
        calibration = calibrate_sources(
            claims, lambda item, value: True,
            label_fraction=1.0, max_labels=1, seed=0,
        )
        # One of the two sources has no labelled claims; smoothing puts
        # it at exactly 0.5.
        assert 0.5 in calibration.accuracy.values()

    def test_improves_single_round_accu(self, world):
        calibration = calibrate_sources(
            world.claims, claim_world_oracle(world), label_fraction=0.2
        )
        default = Accu(max_iterations=1).fuse(world.claims)
        seeded = Accu(
            initial_accuracies=calibration.accuracy, max_iterations=1
        ).fuse(world.claims)
        assert world.precision_of(seeded.truths) >= world.precision_of(
            default.truths
        )


class TestGroundTruthWorldOracle:
    def test_oracle_respects_hierarchy(self, world):
        oracle = world_oracle(world)
        entity = world.entities("Country")[0]
        for attribute in world.attribute_names("Country"):
            leaves = world.true_leaf_values(entity.entity_id, attribute)
            if leaves and world.hierarchy.ancestors(next(iter(leaves))):
                leaf = next(iter(leaves))
                parent = world.hierarchy.parent(leaf)
                item = (entity.entity_id, attribute)
                assert oracle(item, leaf.casefold())
                assert oracle(item, parent.casefold())
                assert not oracle(item, "xx-no-such-value")
                return
        pytest.fail("no hierarchical fact found")
