"""Unit tests for the DOM extractor (Algorithm 1)."""

import pytest

from repro.extract.dom import DomExtractorConfig, DomTreeExtractor
from repro.extract.seeds import SeedSet
from repro.rdf.ontology import Entity
from repro.synth.websites import WebPage, Website


def make_page(url, entity_surface, rows, entity_id="book/1"):
    """An infobox-style page: h1 + table of th/td rows."""
    body_rows = "".join(
        f"<tr><th>{label}</th><td>{value}</td></tr>" for label, value in rows
    )
    html = (
        "<html><body>"
        "<nav><a href='#'>Home</a></nav>"
        f"<h1 class='entity-name'>{entity_surface}</h1>"
        f"<table class='infobox'>{body_rows}</table>"
        "</body></html>"
    )
    return WebPage(url, html, entity_id, entity_surface, ())


def make_site(pages, class_name="Book"):
    return Website("www.example.com", class_name, "table", list(pages))


@pytest.fixture
def entity_index():
    return {
        "the silent river": Entity(
            "book/1", "The Silent River", "Book", ()
        ),
        "golden empire": Entity("book/2", "Golden Empire", "Book", ()),
    }


def run(entity_index, seeds, pages, config=None):
    extractor = DomTreeExtractor(
        entity_index,
        {"Book": SeedSet("Book", seeds)},
        config or DomExtractorConfig(min_attribute_support=1),
    )
    return extractor, extractor.extract([make_site(pages)])


class TestDiscovery:
    def test_siblings_of_seed_discovered(self, entity_index):
        page = make_page(
            "u1", "The Silent River",
            [("Author", "Jane Doe"), ("Publisher", "Acme"), ("Genre", "Drama")],
        )
        extractor, output = run(entity_index, ["author"], [page])
        assert output.attribute_names("Book") == {
            "author", "publisher", "genre",
        }
        assert "publisher" in extractor.enriched_seeds("Book")

    def test_page_without_entity_skipped(self, entity_index):
        page = make_page("u1", "Unknown Title", [("Author", "X")])
        _, output = run(entity_index, ["author"], [page])
        assert not output.attributes
        assert not output.triples

    def test_page_without_seed_pair_skipped(self, entity_index):
        page = make_page("u1", "The Silent River", [("Publisher", "Acme")])
        _, output = run(entity_index, ["author"], [page])
        assert not output.attributes

    def test_entity_of_other_class_ignored(self, entity_index):
        page = make_page("u1", "The Silent River", [("Author", "X")])
        site = Website("www.example.com", "Film", "table", [page])
        extractor = DomTreeExtractor(
            entity_index,
            {"Film": SeedSet("Film", ["author"])},
            DomExtractorConfig(min_attribute_support=1),
        )
        output = extractor.extract([site])
        assert not output.attributes

    def test_values_not_discovered_as_attributes(self, entity_index):
        page = make_page(
            "u1", "The Silent River",
            [("Author", "Jane Doe"), ("Publisher", "Acme Books")],
        )
        _, output = run(entity_index, ["author"], [page])
        assert "jane doe" not in output.attribute_names("Book")
        assert "acme book" not in output.attribute_names("Book")

    def test_chrome_text_not_discovered(self, entity_index):
        page = make_page("u1", "The Silent River", [("Author", "X")])
        _, output = run(entity_index, ["author"], [page])
        assert "home" not in output.attribute_names("Book")

    def test_numeric_labels_filtered(self, entity_index):
        page = make_page(
            "u1", "The Silent River", [("Author", "X"), ("2014", "Y")]
        )
        _, output = run(entity_index, ["author"], [page])
        assert "2014" not in output.attribute_names("Book")


class TestSupportThreshold:
    def test_min_support_two_requires_two_pages(self, entity_index):
        pages = [
            make_page("u1", "The Silent River", [("Author", "A"), ("Genre", "G")]),
            make_page(
                "u2", "Golden Empire", [("Author", "B"), ("Pages", "100")],
                entity_id="book/2",
            ),
        ]
        extractor = DomTreeExtractor(
            entity_index,
            {"Book": SeedSet("Book", ["author"])},
            DomExtractorConfig(min_attribute_support=2),
        )
        output = extractor.extract([make_site(pages)])
        # 'genre' and 'page' each appear on one page only.
        assert output.attribute_names("Book") == {"author"}


class TestTriples:
    def test_label_value_adjacency(self, entity_index):
        page = make_page(
            "u1", "The Silent River",
            [("Author", "Jane Doe"), ("Genre", "Drama")],
        )
        _, output = run(entity_index, ["author"], [page])
        facts = {
            (s.triple.predicate, s.triple.obj.lexical) for s in output.triples
        }
        assert ("author", "Jane Doe") in facts
        assert ("genre", "Drama") in facts

    def test_triples_only_for_accepted_attributes(self, entity_index):
        pages = [
            make_page("u1", "The Silent River", [("Author", "A"), ("Noise", "X")]),
            make_page(
                "u2", "Golden Empire", [("Author", "B")], entity_id="book/2"
            ),
        ]
        extractor = DomTreeExtractor(
            entity_index,
            {"Book": SeedSet("Book", ["author"])},
            DomExtractorConfig(min_attribute_support=2),
        )
        output = extractor.extract([make_site(pages)])
        predicates = {s.triple.predicate for s in output.triples}
        assert predicates == {"author"}

    def test_provenance(self, entity_index):
        page = make_page("u1", "The Silent River", [("Author", "A")])
        _, output = run(entity_index, ["author"], [page])
        assert output.triples[0].provenance.source_id == "www.example.com"
        assert output.triples[0].provenance.extractor_id == "dom"
        assert output.triples[0].provenance.locator == "u1"

    def test_subject_is_linked_entity(self, entity_index):
        page = make_page("u1", "The Silent River", [("Author", "A")])
        _, output = run(entity_index, ["author"], [page])
        assert all(s.triple.subject == "book/1" for s in output.triples)


class TestGeneratedSites:
    def test_all_layouts_extract(self, world, seed_sets, websites):
        extractor = DomTreeExtractor(world.entity_index(), seed_sets)
        output = extractor.extract(websites)
        styles = {site.style for site in websites}
        assert len(styles) >= 2
        assert output.triples
        for class_name in world.classes():
            assert output.attribute_count(class_name) > 0

    def test_attribute_precision_reasonable(self, world, seed_sets, websites):
        extractor = DomTreeExtractor(world.entity_index(), seed_sets)
        output = extractor.extract(websites)
        for class_name in world.classes():
            found = output.attribute_names(class_name)
            gold = set(world.attribute_names(class_name))
            precision = len(found & gold) / max(1, len(found))
            assert precision > 0.6


class TestMentionAnchors:
    def _config(self):
        return DomExtractorConfig(
            min_attribute_support=1, allow_mention_anchors=True
        )

    def test_unknown_entity_page_harvests_mentions(self, entity_index):
        page = make_page(
            "u1", "Unknown Epic",
            [("Author", "Jane Doe"), ("Genre", "Drama")],
        )
        known = make_page(
            "u2", "The Silent River", [("Author", "Someone")]
        )
        extractor = DomTreeExtractor(
            entity_index,
            {"Book": SeedSet("Book", ["author", "genre"])},
            self._config(),
        )
        output = extractor.extract([make_site([known, page])])
        subjects = {s.triple.subject for s in output.triples}
        assert "mention:unknown epic" in subjects
        assert extractor.mention_classes == {"Unknown Epic": "Book"}

    def test_mention_pages_only_harvest_seed_attributes(self, entity_index):
        page = make_page(
            "u1", "Unknown Epic",
            [("Author", "Jane Doe"), ("Novelty", "Thing")],
        )
        extractor = DomTreeExtractor(
            entity_index,
            {"Book": SeedSet("Book", ["author"])},
            self._config(),
        )
        output = extractor.extract([make_site([page])])
        predicates = {
            s.triple.predicate
            for s in output.triples
            if s.triple.subject.startswith("mention:")
        }
        assert "novelty" not in predicates

    def test_mention_pages_carry_no_discovery_evidence(self, entity_index):
        page = make_page(
            "u1", "Unknown Epic",
            [("Author", "Jane Doe"), ("Genre", "Drama")],
        )
        extractor = DomTreeExtractor(
            entity_index,
            {"Book": SeedSet("Book", ["author"])},
            self._config(),
        )
        output = extractor.extract([make_site([page])])
        # 'genre' appeared only on a mention page: not discovered.
        assert "genre" not in output.attribute_names("Book")

    def test_disabled_by_default(self, entity_index):
        page = make_page("u1", "Unknown Epic", [("Author", "X")])
        extractor = DomTreeExtractor(
            entity_index,
            {"Book": SeedSet("Book", ["author"])},
            DomExtractorConfig(min_attribute_support=1),
        )
        output = extractor.extract([make_site([page])])
        assert not output.triples
        assert not extractor.mention_classes
