"""Unit tests for the multi-tenant workload mix generators."""

import pytest

from repro.errors import GenerationError
from repro.synth.tenants import (
    TENANT_KINDS,
    TenantMixConfig,
    TenantSpec,
    build_tenant_workload,
)


class TestTenantSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(GenerationError, match="unknown tenant kind"):
            TenantSpec(name="t", kind="weird").validate()

    def test_rejects_empty_and_reserved_names(self):
        with pytest.raises(GenerationError, match="non-empty"):
            TenantSpec(name="").validate()
        for bad in ("a{b", "a,b", "a=b", "a b"):
            with pytest.raises(GenerationError, match="reserved"):
                TenantSpec(name=bad).validate()

    def test_rejects_nonpositive_shape(self):
        with pytest.raises(GenerationError):
            TenantSpec(name="t", n_items=0).validate()
        with pytest.raises(GenerationError):
            TenantSpec(name="t", parts=0).validate()
        with pytest.raises(GenerationError):
            TenantSpec(name="t", epochs=0).validate()


class TestBuildWorkload:
    @pytest.mark.parametrize("kind", TENANT_KINDS)
    def test_every_kind_yields_base_deltas_and_truth(self, kind):
        workload = build_tenant_workload(
            TenantSpec(name="t", kind=kind, seed=11)
        )
        assert workload.base
        assert workload.deltas
        assert workload.truth
        assert (workload.drift_world is not None) == (kind == "drift")
        assert (workload.copying_world is not None) == (kind == "copying")

    @pytest.mark.parametrize("kind", TENANT_KINDS)
    def test_same_spec_builds_identical_workloads(self, kind):
        spec = TenantSpec(name="t", kind=kind, seed=23)
        first = build_tenant_workload(spec)
        second = build_tenant_workload(spec)
        assert [repr(t) for t in first.base] == [
            repr(t) for t in second.base
        ]
        assert [repr(d.added) + repr(d.retracted) for d in first.deltas] == [
            repr(d.added) + repr(d.retracted) for d in second.deltas
        ]
        assert first.truth == second.truth

    def test_seeds_separate_worlds(self):
        # Static truth is seed-independent by design; the seed shows up
        # in which sources err, i.e. in the claim stream itself.
        one = build_tenant_workload(TenantSpec(name="a", seed=1))
        two = build_tenant_workload(TenantSpec(name="b", seed=2))
        assert [repr(t) for t in one.base] != [repr(t) for t in two.base]

    def test_drift_truth_is_the_final_epoch(self):
        workload = build_tenant_workload(
            TenantSpec(name="t", kind="drift", seed=3, epochs=4)
        )
        world = workload.drift_world
        assert len(workload.deltas) == 4
        assert workload.truth == world.truth_at(4)
        assert workload.truth != world.truth_at(0)


class TestTenantMixConfig:
    def test_derived_fleet_cycles_kinds_and_spreads_seeds(self):
        mix = TenantMixConfig(n_tenants=5, seed=10, kinds=("static", "drift"))
        specs = mix.specs()
        assert [spec.name for spec in specs] == [
            "tenant00", "tenant01", "tenant02", "tenant03", "tenant04",
        ]
        assert [spec.kind for spec in specs] == [
            "static", "drift", "static", "drift", "static",
        ]
        assert len({spec.seed for spec in specs}) == 5

    def test_derivation_is_pure(self):
        mix = TenantMixConfig(n_tenants=4, seed=9)
        assert [repr(s) for s in mix.specs()] == [
            repr(s) for s in mix.specs()
        ]

    def test_explicit_tenants_are_used_verbatim(self):
        specs = [
            TenantSpec(name="alpha", seed=1),
            TenantSpec(name="beta", kind="drift", seed=2),
        ]
        mix = TenantMixConfig(tenants=specs)
        assert mix.specs() == specs

    def test_duplicate_names_rejected(self):
        mix = TenantMixConfig(
            tenants=[TenantSpec(name="a"), TenantSpec(name="a")]
        )
        with pytest.raises(GenerationError, match="duplicate"):
            mix.specs()

    def test_empty_or_bad_mix_rejected(self):
        with pytest.raises(GenerationError):
            TenantMixConfig(n_tenants=0).specs()
        with pytest.raises(GenerationError):
            TenantMixConfig(kinds=()).specs()
        with pytest.raises(GenerationError):
            TenantMixConfig(kinds=("weird",)).specs()
        with pytest.raises(GenerationError):
            TenantMixConfig(tenants=[]).specs()
