"""Unit tests for shared extractor types."""

from repro.extract.base import DiscoveredAttribute, ExtractorOutput


class TestDiscoveredAttribute:
    def test_merge_evidence(self):
        record = DiscoveredAttribute(
            "author", "Book", "kb", support=2, entity_support=1,
            sources={"freebase"},
        )
        record.merge_evidence(3, 4, {"dbpedia"})
        assert record.support == 5
        assert record.entity_support == 4
        assert record.sources == {"freebase", "dbpedia"}

    def test_entity_support_keeps_max(self):
        record = DiscoveredAttribute("a", "Book", "kb", entity_support=5)
        record.merge_evidence(1, 2, set())
        assert record.entity_support == 5


class TestExtractorOutput:
    def test_add_attribute_creates_record(self):
        output = ExtractorOutput("dom")
        record = output.add_attribute("Book", "author", support=2)
        assert record.extractor_id == "dom"
        assert output.attribute_count("Book") == 1

    def test_add_attribute_reinforces(self):
        output = ExtractorOutput("dom")
        output.add_attribute("Book", "author", support=2, sources={"a"})
        output.add_attribute("Book", "author", support=3, sources={"b"})
        record = output.attributes["Book"]["author"]
        assert record.support == 5
        assert record.sources == {"a", "b"}
        assert output.attribute_count("Book") == 1

    def test_attribute_names(self):
        output = ExtractorOutput("kb")
        output.add_attribute("Book", "author")
        output.add_attribute("Book", "genre")
        output.add_attribute("Film", "director")
        assert output.attribute_names("Book") == {"author", "genre"}
        assert output.attribute_names("Hotel") == set()

    def test_counts_for_unknown_class(self):
        assert ExtractorOutput("kb").attribute_count("Nope") == 0
