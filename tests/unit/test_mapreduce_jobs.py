"""Unit tests for fusion expressed as MapReduce jobs."""

import pytest

from repro.fusion.accu import Accu
from repro.fusion.vote import Vote
from repro.mapreduce.jobs import mr_accu, mr_vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


@pytest.fixture(scope="module")
def claim_world():
    return generate_claim_world(
        ClaimWorldConfig(
            seed=41, n_items=60, n_sources=9,
            source_accuracies=[0.9, 0.9, 0.85, 0.6, 0.55, 0.5, 0.5, 0.45, 0.4],
            false_pool=4,
        )
    )


class TestMrVote:
    def test_agrees_with_in_memory_vote(self, claim_world):
        memory = Vote().fuse(claim_world.claims)
        distributed = mr_vote(claim_world.claims)
        assert distributed.truths == memory.truths

    def test_partition_invariance(self, claim_world):
        one = mr_vote(claim_world.claims, partitions=1)
        many = mr_vote(claim_world.claims, partitions=8)
        assert one.truths == many.truths

    def test_beliefs_normalised(self, claim_world):
        result = mr_vote(claim_world.claims)
        items = {}
        for (item, _value), belief in result.belief.items():
            items[item] = items.get(item, 0.0) + belief
        assert all(abs(total - 1.0) < 1e-9 for total in items.values())


class TestMrAccu:
    def test_agrees_with_in_memory_accu(self, claim_world):
        memory = Accu(max_iterations=10).fuse(claim_world.claims)
        distributed = mr_accu(claim_world.claims, rounds=10)
        agreements = sum(
            1
            for item, truth in memory.truths.items()
            if distributed.truths.get(item) == truth
        )
        assert agreements / len(memory.truths) > 0.95

    def test_partition_invariance(self, claim_world):
        few = mr_accu(claim_world.claims, rounds=5, partitions=2)
        many = mr_accu(claim_world.claims, rounds=5, partitions=7)
        assert few.truths == many.truths
        for source in few.source_quality:
            assert few.source_quality[source] == pytest.approx(
                many.source_quality[source]
            )

    def test_learns_accuracy_ordering(self, claim_world):
        result = mr_accu(claim_world.claims, rounds=10)
        learned = result.source_quality
        good = [s for s, a in claim_world.source_accuracy.items() if a > 0.8]
        bad = [s for s, a in claim_world.source_accuracy.items() if a < 0.5]
        avg = lambda xs: sum(learned[s] for s in xs) / len(xs)
        assert avg(good) > avg(bad)

    def test_precision_beats_vote(self, claim_world):
        vote = mr_vote(claim_world.claims)
        accu = mr_accu(claim_world.claims, rounds=10)
        assert claim_world.precision_of(accu.truths) >= (
            claim_world.precision_of(vote.truths)
        )
