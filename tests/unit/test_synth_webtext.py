"""Unit tests for the Web-text corpus generator."""

import pytest

from repro.errors import GenerationError
from repro.synth.webtext import WebTextConfig, generate_webtext
from repro.textproc.sentences import split_sentences


class TestValidation:
    def test_zero_sources_rejected(self, world):
        with pytest.raises(GenerationError):
            generate_webtext(world, WebTextConfig(sources_per_class=0))

    def test_bad_fact_range_rejected(self, world):
        with pytest.raises(GenerationError):
            generate_webtext(world, WebTextConfig(facts_per_document=(5, 2)))


class TestStructure:
    def test_document_counts(self, world, webtext_documents):
        assert len(webtext_documents) == len(world.classes()) * 2 * 8

    def test_doc_ids_unique(self, webtext_documents):
        ids = [doc.doc_id for doc in webtext_documents]
        assert len(ids) == len(set(ids))

    def test_sources_per_class(self, webtext_documents):
        sources = {
            (doc.class_name, doc.source_id) for doc in webtext_documents
        }
        by_class = {}
        for class_name, source in sources:
            by_class.setdefault(class_name, set()).add(source)
        assert all(len(s) == 2 for s in by_class.values())

    def test_text_splits_into_sentences(self, webtext_documents):
        for doc in webtext_documents[:10]:
            assert len(split_sentences(doc.text)) >= len(doc.gold)


class TestGold:
    def test_gold_values_appear_in_text(self, webtext_documents):
        for doc in webtext_documents[:20]:
            for fact in doc.gold:
                assert fact.value in doc.text

    def test_gold_attributes_valid(self, world, webtext_documents):
        for doc in webtext_documents[:20]:
            for fact in doc.gold:
                assert fact.attribute in world.attribute_names(doc.class_name)

    def test_zero_error_rate_all_true(self, world):
        docs = generate_webtext(
            world,
            WebTextConfig(
                seed=8, sources_per_class=1, documents_per_source=5,
                error_rate=0.0,
            ),
        )
        assert all(fact.value_is_true for doc in docs for fact in doc.gold)

    def test_deterministic(self, world):
        config = WebTextConfig(seed=6, sources_per_class=1, documents_per_source=3)
        first = generate_webtext(world, config)
        second = generate_webtext(world, config)
        assert [d.text for d in first] == [d.text for d in second]
