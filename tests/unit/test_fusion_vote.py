"""Unit tests for VOTE."""

from repro.fusion.base import Claim, ClaimSet
from repro.fusion.vote import Vote


def claim(item, value, source, confidence=1.0):
    return Claim(item, value, value, source, "ex", confidence)


class TestVote:
    def test_majority_wins(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "a", "s1"),
                claim(("s", "p"), "a", "s2"),
                claim(("s", "p"), "b", "s3"),
            ]
        )
        result = Vote().fuse(claims)
        assert result.truths[("s", "p")] == {"a"}

    def test_counts_distinct_sources_not_claims(self):
        claims = ClaimSet(
            [
                # same source asserting twice via different extractors
                Claim(("s", "p"), "a", "a", "s1", "ex1"),
                Claim(("s", "p"), "a", "a", "s1", "ex2"),
                claim(("s", "p"), "b", "s2"),
                claim(("s", "p"), "b", "s3"),
            ]
        )
        result = Vote().fuse(claims)
        assert result.truths[("s", "p")] == {"b"}

    def test_tie_breaks_lexicographically(self):
        claims = ClaimSet(
            [claim(("s", "p"), "b", "s1"), claim(("s", "p"), "a", "s2")]
        )
        result = Vote().fuse(claims)
        assert result.truths[("s", "p")] == {"a"}

    def test_single_truth_per_item(self):
        claims = ClaimSet(
            [claim(("s", "p"), "a", "s1"), claim(("s", "q"), "b", "s1")]
        )
        result = Vote().fuse(claims)
        assert all(len(values) == 1 for values in result.truths.values())

    def test_beliefs_sum_to_one_per_item(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "a", "s1"),
                claim(("s", "p"), "b", "s2"),
                claim(("s", "p"), "b", "s3"),
            ]
        )
        result = Vote().fuse(claims)
        total = sum(
            belief
            for (item, _value), belief in result.belief.items()
            if item == ("s", "p")
        )
        assert abs(total - 1.0) < 1e-9

    def test_weighted_mode_uses_confidence(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "a", "s1", confidence=0.9),
                claim(("s", "p"), "b", "s2", confidence=0.2),
                claim(("s", "p"), "b", "s3", confidence=0.2),
            ]
        )
        assert Vote(weighted=True).fuse(claims).truths[("s", "p")] == {"a"}
        assert Vote(weighted=False).fuse(claims).truths[("s", "p")] == {"b"}

    def test_recovers_truth_on_synthetic_world(self):
        from repro.synth.claims import ClaimWorldConfig, generate_claim_world

        world = generate_claim_world(
            ClaimWorldConfig(seed=11, n_items=50, n_sources=9)
        )
        result = Vote().fuse(world.claims)
        assert world.precision_of(result.truths) > 0.8
