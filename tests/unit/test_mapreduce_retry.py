"""Unit tests for the MapReduce retry layer (RetryPolicy + guards).

Everything here runs in fake time: crashes and slow calls come from a
seeded :class:`~repro.faults.FaultPlan`, backoff goes through an
injected sleep recorder, and deadlines compare *reported* durations —
no test ever waits.
"""

import os

import pytest

from repro.errors import ReproError, RetryExhaustedError, StageTimeoutError
from repro.faults import FaultPlan, InjectedFault
from repro.mapreduce.engine import JobStats, MapReduceJob, RetryPolicy
from repro.mapreduce.jobs import mr_vote
from repro.fusion.base import Claim, ClaimSet

WORDS = [
    "fusion", "vote", "fusion", "accu", "claim", "vote", "fusion",
    "truth", "claim", "source", "truth", "fusion",
]


def _mapper(record):
    yield record, 1


def _reducer(key, values):
    yield key, sum(values)


def _poison_mapper(record):
    if record == "poison":
        raise ValueError("bad record")
    yield record, 1


def _exit_mapper(record):
    # Simulates a segfaulting/OOM-killed worker: the process dies
    # without raising, which breaks the whole ProcessPoolExecutor.
    os._exit(1)


def _job(**kwargs) -> MapReduceJob:
    return MapReduceJob(_mapper, _reducer, partitions=3, **kwargs)


def _clean_output():
    return _job().run(WORDS)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base=0.05)
        assert [policy.backoff(n) for n in range(4)] == [
            0.05, 0.1, 0.2, 0.4,
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -1.0},
            {"timeout": 0.0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ReproError):
            RetryPolicy(**kwargs)


class TestGuardedExecution:
    def test_transient_crash_is_retried_to_identical_output(self):
        plan = FaultPlan(seed=1).crash("map", index=1, attempts=1)
        job = _job(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fault_plan=plan,
        )
        assert job.run(WORDS) == _clean_output()
        assert job.stats.retries == 1
        assert job.stats.attempts > 0

    def test_retries_disabled_raises_retry_exhausted(self):
        plan = FaultPlan(seed=1).crash("map", index=1, attempts=1)
        job = _job(fault_plan=plan)  # no retry policy: single attempt
        with pytest.raises(RetryExhaustedError) as excinfo:
            job.run(WORDS)
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert "map task 1" in str(excinfo.value)

    def test_permanent_crash_exhausts_even_with_retries(self):
        plan = FaultPlan(seed=1).crash("reduce", index=0, attempts=0)
        job = _job(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fault_plan=plan,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            job.run(WORDS)
        assert "after 3 attempt" in str(excinfo.value)

    def test_backoff_schedule_is_deterministic_and_fake_timed(self):
        sleeps = []
        plan = FaultPlan(seed=1).crash("map", index=0, attempts=2)
        job = _job(
            retry=RetryPolicy(
                max_attempts=3, backoff_base=0.5, sleep=sleeps.append
            ),
            fault_plan=plan,
        )
        assert job.run(WORDS) == _clean_output()
        assert sleeps == [0.5, 1.0]

    def test_slow_task_times_out_and_is_retried(self):
        plan = FaultPlan(seed=1).slow("map", seconds=99.0, index=0, attempts=1)
        job = _job(
            retry=RetryPolicy(
                max_attempts=3, backoff_base=0.0, timeout=5.0
            ),
            fault_plan=plan,
        )
        assert job.run(WORDS) == _clean_output()
        assert job.stats.timed_out_tasks == 1
        assert job.stats.retries == 1

    def test_permanently_slow_task_exhausts_with_timeout_cause(self):
        plan = FaultPlan(seed=1).slow("map", seconds=99.0, index=0, attempts=0)
        job = _job(
            retry=RetryPolicy(
                max_attempts=2, backoff_base=0.0, timeout=5.0
            ),
            fault_plan=plan,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            job.run(WORDS)
        assert isinstance(excinfo.value.__cause__, StageTimeoutError)
        assert job.stats.timed_out_tasks == 2

    def test_poison_resplit_drops_only_the_poison_record(self):
        records = WORDS + ["poison"]
        job = MapReduceJob(
            _poison_mapper,
            _reducer,
            partitions=3,
            retry=RetryPolicy(
                max_attempts=2, backoff_base=0.0, resplit_poison=True
            ),
        )
        assert job.run(records) == _clean_output()
        assert job.stats.poisoned_records == 1

    def test_without_resplit_poison_record_sinks_the_job(self):
        job = MapReduceJob(
            _poison_mapper,
            _reducer,
            partitions=3,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        with pytest.raises(RetryExhaustedError):
            job.run(WORDS + ["poison"])

    def test_guarded_stats_start_from_clean_jobstats(self):
        job = _job(retry=RetryPolicy(max_attempts=2, backoff_base=0.0))
        job.run(WORDS)
        assert job.stats.retries == 0
        assert job.stats.poisoned_records == 0
        # The non-guarded path leaves the new counters untouched.
        legacy = _job()
        legacy.run(WORDS)
        assert legacy.stats.attempts == 0
        assert isinstance(legacy.stats, JobStats)


class TestProcessExecutorFaults:
    def test_faulty_process_run_matches_clean_serial_run(self):
        plan = FaultPlan(seed=1).crash("map", index=0, attempts=1)
        job = MapReduceJob(
            _mapper, _reducer, partitions=3, executor="process",
            max_workers=2,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fault_plan=plan,
        )
        assert job.run(WORDS) == _clean_output()
        assert job.stats.retries == 1

    def test_broken_pool_does_not_poison_subsequent_jobs(self):
        # A worker that dies mid-task breaks the shared pool; the next
        # job asking for the same worker count must get a fresh pool
        # instead of the broken cached one.
        dying = MapReduceJob(
            _exit_mapper, _reducer, partitions=2, executor="process",
            max_workers=2,
        )
        with pytest.raises(Exception):
            dying.run(WORDS)
        healthy = MapReduceJob(
            _mapper, _reducer, partitions=2, executor="process",
            max_workers=2,
        )
        assert healthy.run(WORDS) == _clean_output()


class TestFusionJobPassthrough:
    def _claims(self) -> ClaimSet:
        claims = ClaimSet()
        for source, value in (
            ("s1", "a"), ("s2", "a"), ("s3", "b"), ("s1", "b"),
        ):
            claims.add(Claim(("e1", "p"), value, value, source, "ext"))
            claims.add(Claim(("e2", "p"), value, value, source, "ext"))
        return claims

    def test_mr_vote_with_transient_fault_matches_clean_run(self):
        claims = self._claims()
        clean = mr_vote(claims)
        plan = FaultPlan(seed=2).crash("map", index=0, attempts=1)
        faulty = mr_vote(
            claims,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fault_plan=plan,
        )
        assert faulty.truths == clean.truths
        assert faulty.belief == clean.belief
