"""Unit tests for the MapReduce retry layer (RetryPolicy + guards).

Everything here runs in fake time: crashes and slow calls come from a
seeded :class:`~repro.faults.FaultPlan`, backoff goes through an
injected sleep recorder, and deadlines compare *reported* durations —
no test ever waits.
"""

import os

import pytest

from repro.errors import ReproError, RetryExhaustedError, StageTimeoutError
from repro.faults import FaultPlan, InjectedFault
from repro.mapreduce.engine import JobStats, MapReduceJob, RetryPolicy
from repro.mapreduce.jobs import mr_vote
from repro.fusion.base import Claim, ClaimSet

WORDS = [
    "fusion", "vote", "fusion", "accu", "claim", "vote", "fusion",
    "truth", "claim", "source", "truth", "fusion",
]


def _mapper(record):
    yield record, 1


def _reducer(key, values):
    yield key, sum(values)


def _poison_mapper(record):
    if record == "poison":
        raise ValueError("bad record")
    yield record, 1


def _exit_mapper(record):
    # Simulates a segfaulting/OOM-killed worker: the process dies
    # without raising, which breaks the whole ProcessPoolExecutor.
    os._exit(1)


def _job(**kwargs) -> MapReduceJob:
    return MapReduceJob(_mapper, _reducer, partitions=3, **kwargs)


def _clean_output():
    return _job().run(WORDS)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base=0.05)
        assert [policy.backoff(n) for n in range(4)] == [
            0.05, 0.1, 0.2, 0.4,
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -1.0},
            {"timeout": 0.0},
            {"jitter": -0.1},
            {"jitter": 1.0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ReproError):
            RetryPolicy(**kwargs)


class TestRetryJitter:
    def test_jitter_off_is_byte_identical_to_plain_exponential(self):
        plain = RetryPolicy(backoff_base=0.05)
        explicit_off = RetryPolicy(backoff_base=0.05, jitter=0.0,
                                   jitter_seed=1234)
        schedule = [plain.backoff(n) for n in range(6)]
        assert [explicit_off.backoff(n) for n in range(6)] == schedule
        assert schedule == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]

    def test_schedule_is_reproducible_per_seed(self):
        first = RetryPolicy(backoff_base=0.05, jitter=0.5, jitter_seed=7)
        second = RetryPolicy(backoff_base=0.05, jitter=0.5, jitter_seed=7)
        schedule = [first.backoff(n) for n in range(8)]
        assert [second.backoff(n) for n in range(8)] == schedule
        # Pure function of (seed, retry_number): call order is irrelevant.
        assert [first.backoff(n) for n in reversed(range(8))] == list(
            reversed(schedule)
        )

    def test_different_seeds_break_lockstep(self):
        schedules = [
            tuple(
                RetryPolicy(
                    backoff_base=0.05, jitter=0.5, jitter_seed=seed
                ).backoff(n)
                for n in range(6)
            )
            for seed in range(4)
        ]
        assert len(set(schedules)) == len(schedules)

    def test_jitter_is_bounded_around_the_exponential(self):
        policy = RetryPolicy(backoff_base=0.05, jitter=0.25, jitter_seed=3)
        for n in range(10):
            base = 0.05 * 2.0**n
            assert base * 0.75 <= policy.backoff(n) <= base * 1.25

    def test_injectable_rng_overrides_the_seeded_source(self):
        calls = []

        def rng(retry_number):
            calls.append(retry_number)
            return 1.0 - 2**-53  # max uniform draw -> max spread

        policy = RetryPolicy(
            backoff_base=0.1, jitter=0.5, jitter_seed=99, jitter_rng=rng
        )
        delay = policy.backoff(2)
        assert calls == [2]
        assert delay == pytest.approx(0.1 * 4 * 1.5, rel=1e-9)


class TestGuardedExecution:
    def test_transient_crash_is_retried_to_identical_output(self):
        plan = FaultPlan(seed=1).crash("map", index=1, attempts=1)
        job = _job(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fault_plan=plan,
        )
        assert job.run(WORDS) == _clean_output()
        assert job.stats.retries == 1
        assert job.stats.attempts > 0

    def test_retries_disabled_raises_retry_exhausted(self):
        plan = FaultPlan(seed=1).crash("map", index=1, attempts=1)
        job = _job(fault_plan=plan)  # no retry policy: single attempt
        with pytest.raises(RetryExhaustedError) as excinfo:
            job.run(WORDS)
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert "map task 1" in str(excinfo.value)

    def test_permanent_crash_exhausts_even_with_retries(self):
        plan = FaultPlan(seed=1).crash("reduce", index=0, attempts=0)
        job = _job(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fault_plan=plan,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            job.run(WORDS)
        assert "after 3 attempt" in str(excinfo.value)

    def test_backoff_schedule_is_deterministic_and_fake_timed(self):
        sleeps = []
        plan = FaultPlan(seed=1).crash("map", index=0, attempts=2)
        job = _job(
            retry=RetryPolicy(
                max_attempts=3, backoff_base=0.5, sleep=sleeps.append
            ),
            fault_plan=plan,
        )
        assert job.run(WORDS) == _clean_output()
        assert sleeps == [0.5, 1.0]

    def test_slow_task_times_out_and_is_retried(self):
        plan = FaultPlan(seed=1).slow("map", seconds=99.0, index=0, attempts=1)
        job = _job(
            retry=RetryPolicy(
                max_attempts=3, backoff_base=0.0, timeout=5.0
            ),
            fault_plan=plan,
        )
        assert job.run(WORDS) == _clean_output()
        assert job.stats.timed_out_tasks == 1
        assert job.stats.retries == 1

    def test_permanently_slow_task_exhausts_with_timeout_cause(self):
        plan = FaultPlan(seed=1).slow("map", seconds=99.0, index=0, attempts=0)
        job = _job(
            retry=RetryPolicy(
                max_attempts=2, backoff_base=0.0, timeout=5.0
            ),
            fault_plan=plan,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            job.run(WORDS)
        assert isinstance(excinfo.value.__cause__, StageTimeoutError)
        assert job.stats.timed_out_tasks == 2

    def test_poison_resplit_drops_only_the_poison_record(self):
        records = WORDS + ["poison"]
        job = MapReduceJob(
            _poison_mapper,
            _reducer,
            partitions=3,
            retry=RetryPolicy(
                max_attempts=2, backoff_base=0.0, resplit_poison=True
            ),
        )
        assert job.run(records) == _clean_output()
        assert job.stats.poisoned_records == 1

    def test_without_resplit_poison_record_sinks_the_job(self):
        job = MapReduceJob(
            _poison_mapper,
            _reducer,
            partitions=3,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        with pytest.raises(RetryExhaustedError):
            job.run(WORDS + ["poison"])

    def test_guarded_stats_start_from_clean_jobstats(self):
        job = _job(retry=RetryPolicy(max_attempts=2, backoff_base=0.0))
        job.run(WORDS)
        assert job.stats.retries == 0
        assert job.stats.poisoned_records == 0
        # The non-guarded path leaves the new counters untouched.
        legacy = _job()
        legacy.run(WORDS)
        assert legacy.stats.attempts == 0
        assert isinstance(legacy.stats, JobStats)


class TestProcessExecutorFaults:
    def test_faulty_process_run_matches_clean_serial_run(self):
        plan = FaultPlan(seed=1).crash("map", index=0, attempts=1)
        job = MapReduceJob(
            _mapper, _reducer, partitions=3, executor="process",
            max_workers=2,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fault_plan=plan,
        )
        assert job.run(WORDS) == _clean_output()
        assert job.stats.retries == 1

    def test_broken_pool_does_not_poison_subsequent_jobs(self):
        # A worker that dies mid-task breaks the shared pool; the next
        # job asking for the same worker count must get a fresh pool
        # instead of the broken cached one.
        dying = MapReduceJob(
            _exit_mapper, _reducer, partitions=2, executor="process",
            max_workers=2,
        )
        with pytest.raises(Exception):
            dying.run(WORDS)
        healthy = MapReduceJob(
            _mapper, _reducer, partitions=2, executor="process",
            max_workers=2,
        )
        assert healthy.run(WORDS) == _clean_output()


class TestFusionJobPassthrough:
    def _claims(self) -> ClaimSet:
        claims = ClaimSet()
        for source, value in (
            ("s1", "a"), ("s2", "a"), ("s3", "b"), ("s1", "b"),
        ):
            claims.add(Claim(("e1", "p"), value, value, source, "ext"))
            claims.add(Claim(("e2", "p"), value, value, source, "ext"))
        return claims

    def test_mr_vote_with_transient_fault_matches_clean_run(self):
        claims = self._claims()
        clean = mr_vote(claims)
        plan = FaultPlan(seed=2).crash("map", index=0, attempts=1)
        faulty = mr_vote(
            claims,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fault_plan=plan,
        )
        assert faulty.truths == clean.truths
        assert faulty.belief == clean.belief
