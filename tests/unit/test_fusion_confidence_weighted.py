"""Unit tests for the generalized fact-finders (Sums, Investment)."""

import pytest

from repro.errors import FusionError
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.confidence_weighted import GeneralizedSums, Investment
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


def claim(item, value, source, confidence=1.0):
    return Claim(item, value, value, source, "ex", confidence)


def informative_world(seed=23):
    return generate_claim_world(
        ClaimWorldConfig(
            seed=seed, n_items=80, n_sources=8,
            source_accuracies=[0.6] * 8, false_pool=3,
            confidence_informative=True,
        )
    )


class TestGeneralizedSums:
    def test_majority_recovered(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "a", "s1"),
                claim(("s", "p"), "a", "s2"),
                claim(("s", "p"), "b", "s3"),
            ]
        )
        result = GeneralizedSums().fuse(claims)
        assert result.truths[("s", "p")] == {"a"}

    def test_confidence_shifts_decision(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "a", "s1", confidence=0.95),
                claim(("s", "p"), "b", "s2", confidence=0.1),
                claim(("s", "p"), "b", "s3", confidence=0.1),
            ]
        )
        assert GeneralizedSums(use_confidence=True).fuse(claims).truths[
            ("s", "p")
        ] == {"a"}
        assert GeneralizedSums(use_confidence=False).fuse(claims).truths[
            ("s", "p")
        ] == {"b"}

    def test_trust_normalised(self):
        world = informative_world()
        result = GeneralizedSums().fuse(world.claims)
        assert max(result.source_quality.values()) == pytest.approx(1.0)
        assert all(0 <= t <= 1 for t in result.source_quality.values())

    def test_confidence_improves_precision_when_informative(self):
        world = informative_world()
        base = GeneralizedSums(use_confidence=False).fuse(world.claims)
        weighted = GeneralizedSums(use_confidence=True).fuse(world.claims)
        assert world.precision_of(weighted.truths) > world.precision_of(
            base.truths
        )

    def test_converges(self):
        world = informative_world()
        result = GeneralizedSums(max_iterations=100).fuse(world.claims)
        assert result.iterations < 100


class TestInvestment:
    def test_bad_growth_rejected(self):
        with pytest.raises(FusionError):
            Investment(growth=0)

    def test_majority_recovered(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "a", "s1"),
                claim(("s", "p"), "a", "s2"),
                claim(("s", "p"), "b", "s3"),
            ]
        )
        result = Investment().fuse(claims)
        assert result.truths[("s", "p")] == {"a"}

    def test_confidence_improves_precision_when_informative(self):
        world = informative_world(seed=29)
        base = Investment(use_confidence=False).fuse(world.claims)
        weighted = Investment(use_confidence=True).fuse(world.claims)
        assert world.precision_of(weighted.truths) >= world.precision_of(
            base.truths
        )

    def test_beliefs_normalised_per_item(self):
        world = informative_world(seed=31)
        result = Investment().fuse(world.claims)
        by_item = {}
        for (item, _value), belief in result.belief.items():
            by_item.setdefault(item, []).append(belief)
        assert all(max(beliefs) == pytest.approx(1.0) for beliefs in
                   by_item.values())
