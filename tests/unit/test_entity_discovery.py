"""Unit tests for joint entity linking and discovery."""

import pytest

from repro.entity.discovery import (
    JointEntityResolver,
    MentionRecord,
)
from repro.entity.linking import EntityLinker
from repro.rdf.ontology import Entity


@pytest.fixture
def resolver():
    linker = EntityLinker(
        {"france": Entity("country/1", "France", "Country")}
    )
    return JointEntityResolver(linker)


class TestLinking:
    def test_known_mention_links(self, resolver):
        outcome = resolver.resolve(
            [MentionRecord("France", "Country")]
        )
        assert outcome.linked["France"].entity_id == "country/1"
        assert not outcome.clusters


class TestDiscovery:
    def test_new_mention_creates_cluster(self, resolver):
        outcome = resolver.resolve(
            [MentionRecord("Atlantis", "Country")]
        )
        assert len(outcome.clusters) == 1
        entity = outcome.new_entities()[0]
        assert entity.name == "Atlantis"
        assert entity.class_name == "Country"
        assert entity.entity_id.startswith("new/country/")

    def test_similar_mentions_cluster_together(self, resolver):
        outcome = resolver.resolve(
            [
                MentionRecord("Republic of Atlantis", "Country"),
                MentionRecord("Atlantis Republic", "Country"),
            ]
        )
        assert len(outcome.clusters) == 1
        assert len(outcome.clusters[0].surfaces) == 2

    def test_longest_surface_becomes_name(self, resolver):
        outcome = resolver.resolve(
            [
                MentionRecord("Atlantis", "Country"),
                MentionRecord("Republic of Atlantis", "Country"),
            ]
        )
        # Sorted longest-first, so the long form seeds the cluster name.
        assert outcome.clusters[0].name == "Republic of Atlantis"

    def test_dissimilar_mentions_stay_apart(self, resolver):
        outcome = resolver.resolve(
            [
                MentionRecord("Atlantis", "Country"),
                MentionRecord("Zubrovia", "Country"),
            ]
        )
        assert len(outcome.clusters) == 2

    def test_classes_never_mix(self, resolver):
        outcome = resolver.resolve(
            [
                MentionRecord("Atlantis", "Country"),
                MentionRecord("Atlantis", "Book"),
            ]
        )
        assert len(outcome.clusters) == 2

    def test_profile_overlap_helps_clustering(self):
        linker = EntityLinker({})
        resolver = JointEntityResolver(
            linker, cluster_threshold=0.7, profile_weight=0.5
        )
        facts = {("capital", "arko"), ("currency", "zed"), ("gdp", "9")}
        outcome = resolver.resolve(
            [
                MentionRecord("Kingdom of Zub", "Country", set(facts)),
                MentionRecord("Zub Kingdom", "Country", set(facts)),
            ]
        )
        assert len(outcome.clusters) == 1
        assert outcome.clusters[0].profile == facts

    def test_cluster_ids_unique(self, resolver):
        outcome = resolver.resolve(
            [
                MentionRecord("Aaa Bbb", "Country"),
                MentionRecord("Ccc Ddd", "Country"),
                MentionRecord("Eee Fff", "Country"),
            ]
        )
        ids = [cluster.cluster_id for cluster in outcome.clusters]
        assert len(ids) == len(set(ids))

    def test_invalid_profile_weight_rejected(self):
        with pytest.raises(ValueError):
            JointEntityResolver(EntityLinker({}), profile_weight=2.0)

    def test_aliases_on_materialised_entity(self, resolver):
        outcome = resolver.resolve(
            [
                MentionRecord("Republic of Atlantis", "Country"),
                MentionRecord("Atlantis Republic", "Country"),
            ]
        )
        entity = outcome.new_entities()[0]
        assert "Atlantis Republic" in entity.aliases
