"""Unit tests for evaluation metrics."""

import pytest

from repro.evalx.metrics import (
    PrecisionRecall,
    attribute_discovery_metrics,
    evaluate_fusion,
    triple_precision,
    true_value_keys,
)
from repro.fusion.base import FusionResult
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


class TestPrecisionRecall:
    def test_values(self):
        pr = PrecisionRecall(8, 2, 2)
        assert pr.precision == 0.8
        assert pr.recall == 0.8
        assert pr.f1 == pytest.approx(0.8)

    def test_zero_denominators(self):
        pr = PrecisionRecall(0, 0, 0)
        assert pr.precision == 0.0
        assert pr.recall == 0.0
        assert pr.f1 == 0.0


class TestAttributeDiscoveryMetrics:
    def test_perfect(self):
        pr = attribute_discovery_metrics(["a", "b"], ["a", "b"])
        assert pr.precision == 1.0 and pr.recall == 1.0

    def test_partial(self):
        pr = attribute_discovery_metrics(["a", "x"], ["a", "b"])
        assert pr.precision == 0.5
        assert pr.recall == 0.5

    def test_empty_discovered(self):
        pr = attribute_discovery_metrics([], ["a"])
        assert pr.precision == 0.0
        assert pr.recall == 0.0

    def test_case_and_whitespace_variants_match(self):
        # Regression: 'Capital' discovered vs 'capital' gold used to
        # score as one false positive plus one false negative.
        pr = attribute_discovery_metrics(
            ["Capital", "  birth   Place "], ["capital", "birth place"]
        )
        assert pr.true_positives == 2
        assert pr.precision == 1.0 and pr.recall == 1.0

    def test_variants_collapse_on_each_side(self):
        # Same attribute under two casings is ONE discovery, not two.
        pr = attribute_discovery_metrics(
            ["Capital", "capital", "wrong"], ["capital"]
        )
        assert pr.true_positives == 1
        assert pr.false_positives == 1


class TestWorldTruthHelpers:
    def test_true_value_keys_casefolded(self, world):
        entity = world.entities("Book")[0]
        for attribute in world.attribute_names("Book"):
            leaves = world.true_leaf_values(entity.entity_id, attribute)
            if leaves:
                keys = true_value_keys(world, entity.entity_id, attribute)
                assert all(key == key.casefold() for key in keys)
                return
        pytest.fail("entity has no facts")

    def test_triple_precision(self, world):
        entity = world.entities("Book")[0]
        good = None
        for attribute in world.attribute_names("Book"):
            leaves = sorted(world.true_leaf_values(entity.entity_id, attribute))
            if leaves:
                good = ScoredTriple(
                    Triple(entity.entity_id, attribute, Value(leaves[0].upper())),
                    Provenance("x", "dom"),
                )
                break
        bad = ScoredTriple(
            Triple(entity.entity_id, "author", Value("zz-wrong-zz")),
            Provenance("x", "dom"),
        )
        assert triple_precision(world, [good, bad]) == 0.5
        assert triple_precision(world, []) == 0.0

    def test_triple_precision_ignores_duplicate_provenances(self, world):
        # Regression: the same true triple under many provenances used
        # to inflate precision (and a repeated false one deflate it) —
        # duplicates must collapse to one distinct fact before scoring.
        entity = world.entities("Book")[0]
        good = None
        for attribute in world.attribute_names("Book"):
            leaves = sorted(
                world.true_leaf_values(entity.entity_id, attribute)
            )
            if leaves:
                good = Triple(entity.entity_id, attribute, Value(leaves[0]))
                break
        bad = Triple(entity.entity_id, "author", Value("zz-wrong-zz"))
        triples = [
            ScoredTriple(good, Provenance(f"site-{i}", "dom", f"page-{i}"))
            for i in range(5)
        ] + [ScoredTriple(bad, Provenance("x", "dom"))]
        assert triple_precision(world, triples) == 0.5
        # Case variants of the same value are the same fact too.
        variant = ScoredTriple(
            Triple(good.subject, good.predicate,
                   Value(good.obj.lexical.upper())),
            Provenance("y", "text"),
        )
        assert triple_precision(world, triples + [variant]) == 0.5


class TestEvaluateFusion:
    def test_scores_against_world(self, world):
        entity = world.entities("Book")[0]
        result = FusionResult("test")
        scored_items = []
        for attribute in world.attribute_names("Book"):
            leaves = sorted(world.true_leaf_values(entity.entity_id, attribute))
            if leaves:
                item = (entity.entity_id, attribute)
                result.truths[item] = {leaves[0].casefold()}
                scored_items.append(item)
            if len(scored_items) == 3:
                break
        report = evaluate_fusion(world, result)
        assert report.items == 3
        assert report.precision == 1.0

    def test_wrong_value_counts_false_positive(self, world):
        entity = world.entities("Book")[0]
        attribute = next(
            a
            for a in world.attribute_names("Book")
            if world.true_leaf_values(entity.entity_id, a)
        )
        result = FusionResult("test")
        result.truths[(entity.entity_id, attribute)] = {"definitely wrong"}
        report = evaluate_fusion(world, result)
        assert report.precision == 0.0
        assert report.recall == 0.0

    def test_unknown_item_counts_false_positive(self, world):
        result = FusionResult("test")
        result.truths[("martian/001", "color")] = {"red"}
        report = evaluate_fusion(world, result)
        assert report.precision == 0.0
        assert report.answerable_items == 0


class TestRemapSubjects:
    def test_truths_and_beliefs_remapped(self):
        from repro.evalx.metrics import remap_subjects

        result = FusionResult("m")
        result.truths[("new/book/0001", "author")] = {"jane"}
        result.truths[("book/1", "genre")] = {"drama"}
        result.belief[(("new/book/0001", "author"), "jane")] = 0.8
        remapped = remap_subjects(result, {"new/book/0001": "book/9"})
        assert ("book/9", "author") in remapped.truths
        assert ("new/book/0001", "author") not in remapped.truths
        assert ("book/1", "genre") in remapped.truths
        assert remapped.belief[(("book/9", "author"), "jane")] == 0.8

    def test_merge_on_collision_keeps_union_and_max(self):
        from repro.evalx.metrics import remap_subjects

        result = FusionResult("m")
        result.truths[("a", "p")] = {"x"}
        result.truths[("b", "p")] = {"y"}
        result.belief[(("a", "p"), "x")] = 0.3
        result.belief[(("b", "p"), "x")] = 0.9
        remapped = remap_subjects(result, {"a": "c", "b": "c"})
        assert remapped.truths[("c", "p")] == {"x", "y"}
        assert remapped.belief[(("c", "p"), "x")] == 0.9
