"""Unit tests for name/attribute normalisation."""

from repro.textproc.normalize import (
    canonical_key,
    is_probable_misspelling,
    normalize_attribute,
    normalize_name,
    singularize,
)


class TestNormalizeName:
    def test_lowercase_and_trim(self):
        assert normalize_name("  Birth Place  ") == "birth place"

    def test_collapse_whitespace(self):
        assert normalize_name("a   b\tc") == "a b c"

    def test_strip_edge_punctuation(self):
        assert normalize_name("Capital:") == "capital"
        assert normalize_name("(note)") == "note"

    def test_internal_punctuation_kept(self):
        assert normalize_name("check-in time") == "check-in time"


class TestSingularize:
    def test_regular_plural(self):
        assert singularize("pages") == "page"

    def test_ies_plural(self):
        assert singularize("countries") == "country"

    def test_es_plural(self):
        assert singularize("churches") == "church"

    def test_irregular(self):
        assert singularize("children") == "child"
        assert singularize("people") == "person"

    def test_invariant(self):
        assert singularize("series") == "series"

    def test_ss_not_stripped(self):
        assert singularize("address") == "address"

    def test_us_not_stripped(self):
        assert singularize("campus") == "campus"


class TestNormalizeAttribute:
    def test_underscores_folded(self):
        assert normalize_attribute("publication_date") == "publication date"

    def test_hyphens_folded(self):
        assert normalize_attribute("birth-place") == "birth place"

    def test_final_word_singularised(self):
        assert normalize_attribute("Official Languages") == "official language"

    def test_colon_stripped(self):
        assert normalize_attribute("Capital:") == "capital"

    def test_empty(self):
        assert normalize_attribute("") == ""


class TestMisspellingDetection:
    def test_close_typo_detected(self):
        assert is_probable_misspelling("capital", "capitol")

    def test_identical_not_misspelling(self):
        assert not is_probable_misspelling("capital", "capital")

    def test_distant_words_rejected(self):
        assert not is_probable_misspelling("capital", "population")

    def test_two_edits_on_long_words(self):
        assert is_probable_misspelling("publication", "publicaiton")

    def test_short_words_strict(self):
        # 1 edit allowed at length <= 6
        assert is_probable_misspelling("price", "pricce")
        assert not is_probable_misspelling("cat", "cut ox")

    def test_empty_rejected(self):
        assert not is_probable_misspelling("", "x")


class TestCanonicalKey:
    def test_vowel_typos_collide(self):
        assert canonical_key("capital") == canonical_key("capitol")

    def test_distinct_words_differ(self):
        assert canonical_key("capital") != canonical_key("population")

    def test_multiword(self):
        assert canonical_key("birth place") == canonical_key("Birth Places")
