"""Snapshot-pinning immutability: the invariant serving stands on.

``TripleStore.pin()`` must keep answering from the state at pin time —
iteration *and* every index lookup path — no matter how the live store
mutates afterwards, on both storage backends.
"""

import pytest

from repro.rdf.segments import SegmentBackend
from repro.rdf.store import StoreSnapshot, TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


def claim(subject, predicate, value, source="src", extractor="ex",
          conf=0.5, locator=""):
    return ScoredTriple(
        Triple(subject, predicate, Value(value)),
        Provenance(source, extractor, locator),
        conf,
    )


CORPUS = [
    claim("france", "capital", "Paris", source="a", conf=0.9),
    claim("france", "capital", "Lyon", source="b", conf=0.4),
    claim("france", "population", "67M", source="a", conf=0.7),
    claim("germany", "capital", "Berlin", source="a", conf=0.8),
    claim("spain", "capital", "Madrid", source="c", extractor="dom"),
]


def build_store(backend_name, tmp_path):
    if backend_name == "segment":
        store = TripleStore(
            SegmentBackend(tmp_path / "segstore", memtable_limit=3)
        )
    else:
        store = TripleStore()
    store.add_all(CORPUS)
    return store


def signature(view):
    """Order-insensitive content signature of any claim iterable."""
    return sorted(
        (
            scored.triple.subject,
            scored.triple.predicate,
            scored.triple.obj.lexical,
            scored.provenance.source_id,
            scored.provenance.extractor_id,
            scored.confidence,
        )
        for scored in view
    )


def mutate_heavily(store):
    """Every mutation class: fresh adds, refreshes, removals, batches."""
    store.add(claim("italy", "capital", "Rome", source="d"))
    # Confidence refresh of an existing key (replaces the stored claim).
    store.add(claim("france", "capital", "Paris", source="a", conf=0.99))
    store.remove(Triple("germany", "capital", Value("Berlin")))
    store.add_all(
        [claim("france", "anthem", "La Marseillaise", source="a")]
    )


@pytest.mark.parametrize("backend_name", ["memory", "segment"])
class TestPinnedSnapshotImmutability:
    def test_iteration_is_frozen_at_pin_time(self, backend_name, tmp_path):
        store = build_store(backend_name, tmp_path)
        pinned = store.pin()
        before = signature(pinned)
        assert before == signature(CORPUS)

        mutate_heavily(store)

        assert signature(pinned) == before
        assert len(pinned) == len(CORPUS)
        # The live store did move.
        assert signature(store) != before

    def test_index_lookups_are_frozen_at_pin_time(
        self, backend_name, tmp_path
    ):
        store = build_store(backend_name, tmp_path)
        pinned = store.pin()
        before_match = sorted(
            (t.subject, t.predicate, t.obj.lexical)
            for t in pinned.match(predicate="capital")
        )
        before_objects = pinned.objects("france", "capital")
        before_item = signature(pinned.claims_for_item("france", "capital"))
        before_subjects = pinned.subjects()
        before_predicates = pinned.predicates("france")
        assert Triple("germany", "capital", Value("Berlin")) in pinned

        mutate_heavily(store)

        assert sorted(
            (t.subject, t.predicate, t.obj.lexical)
            for t in pinned.match(predicate="capital")
        ) == before_match
        assert pinned.objects("france", "capital") == before_objects
        assert (
            signature(pinned.claims_for_item("france", "capital"))
            == before_item
        )
        assert pinned.subjects() == before_subjects
        assert pinned.predicates("france") == before_predicates
        # Removed from the live store, still present in the pin.
        assert Triple("germany", "capital", Value("Berlin")) in pinned
        assert Triple("germany", "capital", Value("Berlin")) not in store
        # Added to the live store, absent from the pin.
        assert Triple("italy", "capital", Value("Rome")) not in pinned

    def test_confidence_refresh_does_not_leak_into_pin(
        self, backend_name, tmp_path
    ):
        store = build_store(backend_name, tmp_path)
        pinned = store.pin()
        store.add(claim("france", "capital", "Paris", source="a", conf=0.99))
        paris = [
            scored
            for scored in pinned.claims_for_item("france", "capital")
            if scored.provenance.source_id == "a"
        ]
        assert [scored.confidence for scored in paris] == [0.9]

    def test_snapshot_list_is_frozen_too(self, backend_name, tmp_path):
        store = build_store(backend_name, tmp_path)
        flat = store.snapshot()
        before = signature(flat)
        mutate_heavily(store)
        assert signature(flat) == before

    def test_pin_has_no_mutators(self, backend_name, tmp_path):
        store = build_store(backend_name, tmp_path)
        pinned = store.pin()
        assert isinstance(pinned, StoreSnapshot)
        for mutator in ("add", "add_all", "remove", "merge", "flush"):
            assert not hasattr(pinned, mutator)
