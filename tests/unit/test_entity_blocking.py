"""Unit tests for the entity blocking subsystem.

Covers MinHash/LSH determinism (in-process and across interpreter
processes), collision-probability sanity bounds, the exact q-gram
misspelling blocker, posting caps, the blocked linker cascade, and the
``blocking_*`` metrics bridge (including schema-validator coverage).
"""

import json
import random
import subprocess
import sys

import pytest

from repro.entity.blocking import (
    BlockingStats,
    MinHashLSH,
    QGramIndex,
    SurfaceBlockingIndex,
    shingle_surface,
)
from repro.entity.linking import EntityLinker
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_metrics
from repro.rdf.ontology import Entity
from repro.textproc.similarity import levenshtein

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def _word(rng, lo=4, hi=12):
    return "".join(rng.choice(_LETTERS) for _ in range(rng.randint(lo, hi)))


def _typo(rng, word):
    i = rng.randrange(len(word))
    return word[:i] + rng.choice(_LETTERS) + word[i + 1:]


class TestShingles:
    def test_tokens_and_char_grams(self):
        shingles = shingle_surface("university of adelaide")
        assert "university" in shingles
        assert "uni" in shingles
        assert "ity" in shingles

    def test_short_surface_contributes_itself(self):
        assert shingle_surface("ab") == frozenset({"ab"})

    def test_empty_surface(self):
        assert shingle_surface("") == frozenset()


class TestMinHashDeterminism:
    def test_same_seed_same_signature(self):
        shingles = shingle_surface("university of adelaide")
        first = MinHashLSH(seed=2015).signature(shingles)
        second = MinHashLSH(seed=2015).signature(shingles)
        assert first == second

    def test_different_seed_different_signature(self):
        shingles = shingle_surface("university of adelaide")
        assert (
            MinHashLSH(seed=2015).signature(shingles)
            != MinHashLSH(seed=2016).signature(shingles)
        )

    def test_signature_stable_across_processes(self):
        script = (
            f"import sys; sys.path[:0] = {sys.path!r}\n"
            "import json\n"
            "from repro.entity.blocking import MinHashLSH, shingle_surface\n"
            "lsh = MinHashLSH(seed=2015)\n"
            "sigs = [lsh.signature(shingle_surface(s))\n"
            "        for s in ('university of adelaide', 'france', 'x')]\n"
            "print(json.dumps(sigs))\n"
        )
        runs = [
            json.loads(
                subprocess.run(
                    [sys.executable, "-c", script],
                    capture_output=True, text=True, check=True,
                ).stdout
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        lsh = MinHashLSH(seed=2015)
        local = [
            list(lsh.signature(shingle_surface(s)))
            for s in ("university of adelaide", "france", "x")
        ]
        assert runs[0] == local

    def test_buckets_stable_across_instances(self):
        rng = random.Random(7)
        surfaces = [_word(rng) for _ in range(200)]
        built = []
        for _ in range(2):
            lsh = MinHashLSH(seed=2015)
            for i, surface in enumerate(surfaces):
                lsh.add(i, shingle_surface(surface))
            built.append(sorted(lsh.bucket_sizes()))
        assert built[0] == built[1]

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            MinHashLSH(num_perm=32, bands=5)
        with pytest.raises(ValueError):
            MinHashLSH(num_perm=0, bands=1)


class TestCollisionBounds:
    """Sanity bounds on LSH collision behaviour (seeded, so exact)."""

    def test_identical_sets_always_collide(self):
        lsh = MinHashLSH()
        shingles = shingle_surface("university of adelaide")
        lsh.add(0, shingles)
        found = set()
        lsh.candidates(shingles, found)
        assert 0 in found

    def test_misspelled_pairs_mostly_collide(self):
        # One-char typos keep shingle Jaccard around 0.5+, where the
        # 16x2 banding collides with probability ~0.99.
        rng = random.Random(42)
        words = {_word(rng, 8, 12) for _ in range(200)}
        lsh = MinHashLSH()
        words = sorted(words)
        for i, word in enumerate(words):
            lsh.add(i, shingle_surface(word))
        hits = 0
        for i, word in enumerate(words):
            found = set()
            lsh.candidates(shingle_surface(_typo(rng, word)), found)
            hits += i in found
        assert hits >= 0.9 * len(words)

    def test_unrelated_pairs_rarely_collide(self):
        rng = random.Random(43)
        indexed = [_word(rng) for _ in range(300)]
        lsh = MinHashLSH()
        for i, word in enumerate(indexed):
            lsh.add(i, shingle_surface(word))
        total = 0
        probes = 100
        for _ in range(probes):
            found = set()
            lsh.candidates(shingle_surface(_word(rng)), found)
            total += len(found)
        # Random words share few shingles; the average candidate set
        # must stay a small fraction of the indexed pool.
        assert total / probes <= 0.05 * len(indexed)


class TestSurfaceBlockingIndex:
    def test_candidates_sorted(self):
        index = SurfaceBlockingIndex()
        for member, surface in ((4, "alpha one"), (1, "alpha two"), (3, "alpha three")):
            index.add(member, surface, frozenset(surface.split()))
        found = index.candidates("alpha", frozenset({"alpha"}))
        assert found == sorted(found)
        assert set(found) == {1, 3, 4}

    def test_token_cap_skips_saturated_postings(self):
        capped = SurfaceBlockingIndex(token_cap=1)
        uncapped = SurfaceBlockingIndex()
        for index in (capped, uncapped):
            index.add(0, "alpha zebra", frozenset({"alpha", "zebra"}))
            index.add(1, "alpha quail", frozenset({"alpha", "quail"}))
        probe = ("alpha", frozenset({"alpha"}))
        assert set(uncapped.candidates(*probe)) == {0, 1}
        assert set(capped.candidates(*probe)) <= set(uncapped.candidates(*probe))

    def test_pair_postings(self):
        index = SurfaceBlockingIndex()
        index.add(0, "wholly unrelated", frozenset({"wholly", "unrelated"}))
        index.add_pair(0, ("population", "1000"))
        found = index.candidates(
            "zzzz", frozenset({"zzzz"}), pairs=[("population", "1000")]
        )
        assert 0 in found

    def test_len_counts_adds(self):
        index = SurfaceBlockingIndex()
        assert len(index) == 0
        index.add(0, "one", frozenset({"one"}))
        assert len(index) == 1


class TestQGramIndexExactness:
    def test_covers_full_misspelling_window(self):
        # Exhaustive check of the exactness guarantee: every indexed
        # name within edit distance 2 and length difference 2 of a
        # probe must appear in the candidate set.  A small alphabet
        # makes near pairs common.
        rng = random.Random(11)
        alphabet = "abcdef"
        words = sorted({
            "".join(rng.choice(alphabet) for _ in range(rng.randint(3, 14)))
            for _ in range(250)
        })
        index = QGramIndex()
        for member, word in enumerate(words):
            index.add(member, word)
        probes = words + [
            _typo(rng, rng.choice(words)) for _ in range(100)
        ]
        for probe in probes:
            found = set()
            index.candidates(probe, found)
            for member, word in enumerate(words):
                if (
                    abs(len(probe) - len(word)) <= 2
                    and levenshtein(probe, word, limit=2) <= 2
                ):
                    assert member in found, (probe, word)


class TestBlockedLinkerCascade:
    def _catalog(self):
        rng = random.Random(5)
        catalog = {
            f"filler {_word(rng)} {i:03d}": Entity(f"f/{i}", f"F{i}", "Thing")
            for i in range(80)
        }
        catalog["university of adelaide"] = Entity(
            "univ/1", "University of Adelaide", "Thing"
        )
        return catalog

    def test_blocked_path_links_and_prunes(self):
        linker = EntityLinker(self._catalog(), brute_floor=0)
        decision = linker.link("universty of adelaide")
        assert decision.linked
        assert decision.entity.entity_id == "univ/1"
        stats = linker.blocking_stats
        assert stats.queries == 1
        assert stats.fallback_queries == 0
        assert stats.pruned > 0
        assert stats.tier3_scored < len(self._catalog())

    def test_exact_hit_counts_tier1(self):
        linker = EntityLinker(self._catalog(), brute_floor=0)
        assert linker.link("University of Adelaide").score == 1.0
        assert linker.blocking_stats.tier1_hits == 1
        assert linker.blocking_stats.queries == 0

    def test_small_pool_falls_back_to_brute(self):
        linker = EntityLinker(self._catalog())  # pool of 81 > default floor
        small = EntityLinker(
            {"france": Entity("c/1", "France", "Country")}
        )
        assert small.link("Frances", class_name="Country").linked
        assert small.blocking_stats.fallback_queries == 1
        assert small.blocking_stats.queries == 0
        # and the large pool goes through tier 2
        linker.link("universty of adelaide")
        assert linker.blocking_stats.queries == 1

    def test_blocking_off_never_queries_index(self):
        linker = EntityLinker(self._catalog(), blocking=False)
        linker.link("universty of adelaide")
        assert linker.blocking_stats.queries == 0
        assert linker.blocking_stats.fallback_queries == 1


class TestBlockingMetrics:
    def test_publish_validates_against_schema(self):
        stats = BlockingStats("linker")
        stats.tier1_hits = 3
        stats.observe_candidates(5, 50)
        stats.observe_candidates(0, 10)
        stats.tier3_scored += 5
        stats.fallback_queries += 2
        index = SurfaceBlockingIndex()
        index.add(0, "alpha", frozenset({"alpha"}))
        index.add(1, "alpho", frozenset({"alpho"}))
        registry = MetricsRegistry()
        stats.publish(registry, index)
        snapshot = registry.snapshot()
        payload = snapshot.to_json_dict()
        assert validate_metrics(payload) == []
        counters = payload["counters"]
        assert counters["blocking_tier1_hits_total{site=linker}"] == 3
        assert counters["blocking_tier2_candidates_total{site=linker}"] == 5
        assert counters["blocking_tier3_scored_total{site=linker}"] == 5
        assert counters["blocking_candidates_pruned_total{site=linker}"] == 55
        assert counters["blocking_queries_total{site=linker}"] == 2
        assert counters["blocking_fallback_queries_total{site=linker}"] == 2
        histograms = payload["histograms"]
        assert histograms["blocking_candidates{site=linker}"]["count"] == 2
        assert histograms["blocking_bucket_size{site=linker}"]["count"] > 0

    def test_counters_are_deterministic_metrics(self):
        stats = BlockingStats("discovery")
        stats.observe_candidates(4, 40)
        registry = MetricsRegistry()
        stats.publish(registry)
        deterministic = registry.snapshot().deterministic_subset()
        assert (
            "blocking_queries_total{site=discovery}"
            in deterministic["counters"]
        )
