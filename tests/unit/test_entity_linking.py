"""Unit tests for entity linking."""

import pytest

import repro.entity.linking as linking
from repro.entity.linking import (
    EntityLinker,
    SurfaceForm,
    is_mention,
    mention_subject,
)
from repro.rdf.ontology import Entity


@pytest.fixture
def linker():
    entities = {
        "the silent river": Entity(
            "book/1", "The Silent River", "Book", ("Silent River",)
        ),
        "silent river": Entity(
            "book/1", "The Silent River", "Book", ("Silent River",)
        ),
        "university of adelaide": Entity(
            "univ/1", "University of Adelaide", "University"
        ),
        "france": Entity("country/1", "France", "Country"),
    }
    return EntityLinker(entities)


class TestMentionIds:
    def test_mention_subject_normalises(self):
        assert mention_subject("  The Book ") == "mention:the book"

    def test_is_mention(self):
        assert is_mention("mention:x")
        assert not is_mention("book/1")


class TestExactLinking:
    def test_exact_match(self, linker):
        decision = linker.link("The Silent River")
        assert decision.linked
        assert decision.entity.entity_id == "book/1"
        assert decision.score == 1.0

    def test_case_insensitive(self, linker):
        assert linker.link("FRANCE").linked

    def test_alias_match(self, linker):
        assert linker.link("Silent River").entity.entity_id == "book/1"

    def test_class_restriction(self, linker):
        assert linker.link("France", class_name="Country").linked
        assert not linker.link("France", class_name="Book").linked


class TestFuzzyLinking:
    def test_misspelling_links(self, linker):
        decision = linker.link("Universty of Adelaide")
        assert decision.linked
        assert decision.entity.entity_id == "univ/1"
        assert decision.score < 1.0

    def test_reordering_links(self, linker):
        decision = linker.link("Adelaide University")
        assert decision.linked

    def test_unrelated_stays_unlinked(self, linker):
        decision = linker.link("Completely Different Name Here")
        assert not decision.linked
        assert decision.entity is None

    def test_threshold_respected(self):
        strict = EntityLinker(
            {"france": Entity("c/1", "France", "Country")},
            min_similarity=0.999,
        )
        assert not strict.link("Frances").linked

    def test_fuzzy_class_restriction(self, linker):
        decision = linker.link("Universty of Adelaide", class_name="Book")
        assert not decision.linked


class TestPrecomputedCatalog:
    """The catalog is normalised/tokenised once, at construction."""

    @pytest.fixture
    def catalog(self):
        return {
            f"entity number {i:03d}": Entity(f"e/{i}", f"E{i}", "Thing")
            for i in range(120)
        }

    @pytest.mark.parametrize("blocking", [True, False])
    def test_link_does_not_retokenize_catalog(
        self, catalog, monkeypatch, blocking
    ):
        linker = EntityLinker(catalog, blocking=blocking)
        normalize_calls = []
        real_normalize = linking.normalize_name
        monkeypatch.setattr(
            linking,
            "normalize_name",
            lambda surface: (
                normalize_calls.append(surface) or real_normalize(surface)
            ),
        )
        form_calls = []
        real_from_norm = SurfaceForm.from_norm.__func__
        monkeypatch.setattr(
            SurfaceForm,
            "from_norm",
            classmethod(
                lambda cls, norm: (
                    form_calls.append(norm) or real_from_norm(cls, norm)
                )
            ),
        )
        probes = ["entity number 005", "entity numbr 042", "unrelated thing"]
        for probe in probes:
            linker.link(probe)
        # One normalisation per probe and at most one probe form per
        # link call — never one per catalog entry.
        assert normalize_calls == probes
        assert len(form_calls) <= len(probes)
