"""Unit tests for store persistence."""

import pytest

from repro.errors import StoreError
from repro.rdf.io import dump_claims_tsv, dump_ntriples, load_claims_tsv
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value, ValueKind


@pytest.fixture
def store():
    s = TripleStore()
    s.add(
        ScoredTriple(
            Triple("book/1", "author", Value("Jane Doe")),
            Provenance("freebase", "kb", "book/author"),
            0.9,
        )
    )
    s.add(
        ScoredTriple(
            Triple("book/1", "price", Value("42", ValueKind.NUMBER)),
            Provenance("www.shop.com", "dom", "http://www.shop.com/p1"),
            0.35,
        )
    )
    s.add(
        ScoredTriple(
            Triple("book/2", "title", Value('tab\there "and" newline\nend')),
            Provenance("src", "webtext"),
            1.0,
        )
    )
    return s


class TestClaimsTsvRoundTrip:
    def test_roundtrip_preserves_everything(self, store, tmp_path):
        path = tmp_path / "claims.tsv"
        written = dump_claims_tsv(store, path)
        assert written == 3
        loaded = load_claims_tsv(path)
        assert len(loaded) == len(store)
        original = {
            (c.triple, c.provenance, c.confidence) for c in store.claims()
        }
        restored = {
            (c.triple, c.provenance, c.confidence) for c in loaded.claims()
        }
        assert original == restored

    def test_special_characters_survive(self, store, tmp_path):
        path = tmp_path / "claims.tsv"
        dump_claims_tsv(store, path)
        loaded = load_claims_tsv(path)
        titles = loaded.objects("book/2", "title")
        assert {v.lexical for v in titles} == {'tab\there "and" newline\nend'}

    def test_value_kinds_survive(self, store, tmp_path):
        path = tmp_path / "claims.tsv"
        dump_claims_tsv(store, path)
        loaded = load_claims_tsv(path)
        prices = loaded.objects("book/1", "price")
        assert next(iter(prices)).kind is ValueKind.NUMBER

    def test_empty_store(self, tmp_path):
        path = tmp_path / "claims.tsv"
        assert dump_claims_tsv(TripleStore(), path) == 0
        assert len(load_claims_tsv(path)) == 0

    def test_deterministic_output(self, store, tmp_path):
        first = tmp_path / "a.tsv"
        second = tmp_path / "b.tsv"
        dump_claims_tsv(store, first)
        dump_claims_tsv(store, second)
        assert first.read_text() == second.read_text()


class TestClaimsTsvErrors:
    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("nope\n")
        with pytest.raises(StoreError):
            load_claims_tsv(path)

    def test_bad_field_count_rejected(self, tmp_path, store):
        path = tmp_path / "bad.tsv"
        dump_claims_tsv(store, path)
        path.write_text(path.read_text() + "only\tthree\tfields\n")
        with pytest.raises(StoreError):
            load_claims_tsv(path)

    def test_bad_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        header = path.write_text(
            "subject\tpredicate\tobject\tkind\tsource\textractor\tlocator"
            "\tconfidence\n"
            "s\tp\to\tquaternion\tsrc\tex\t\t1.0\n"
        )
        del header
        with pytest.raises(StoreError):
            load_claims_tsv(path)


class TestNtriples:
    def test_export_distinct_triples(self, store, tmp_path):
        path = tmp_path / "out.nt"
        count = dump_ntriples(store, path)
        assert count == 3
        text = path.read_text()
        assert '<book/1> <author> "Jane Doe" .' in text
        assert text.count(" .\n") == 3

    def test_quotes_escaped(self, store, tmp_path):
        path = tmp_path / "out.nt"
        dump_ntriples(store, path)
        assert '\\"and\\"' in path.read_text()
