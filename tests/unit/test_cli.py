"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.rdf.io import dump_claims_tsv
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_pipeline_defaults(self):
        args = build_parser().parse_args(["pipeline"])
        assert args.seed == 7
        assert not args.discover_entities

    def test_pipeline_fault_tolerance_defaults(self):
        args = build_parser().parse_args(["pipeline"])
        assert args.retries == 0
        assert args.stage_timeout is None
        assert args.min_sources == 1
        assert args.checkpoint_dir is None
        assert not args.resume

    def test_pipeline_fault_tolerance_flags(self):
        args = build_parser().parse_args(
            [
                "pipeline", "--retries", "3", "--stage-timeout", "30",
                "--min-sources", "2", "--checkpoint-dir", "/tmp/ckpt",
                "--resume",
            ]
        )
        assert args.retries == 3
        assert args.stage_timeout == 30.0
        assert args.min_sources == 2
        assert args.checkpoint_dir == "/tmp/ckpt"
        assert args.resume

    def test_fusion_demo_scenarios(self):
        args = build_parser().parse_args(
            ["fusion-demo", "--scenario", "multi-truth"]
        )
        assert args.scenario == "multi-truth"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fusion-demo", "--scenario", "nope"])

    def test_pipeline_observability_flags(self):
        args = build_parser().parse_args(
            ["pipeline", "--metrics-out", "m.json", "--trace-out", "t.json"]
        )
        assert args.metrics_out == "m.json"
        assert args.trace_out == "t.json"
        defaults = build_parser().parse_args(["pipeline"])
        assert defaults.metrics_out is None
        assert defaults.trace_out is None


class TestPipelineObservabilityExport:
    def test_metrics_and_trace_files_are_valid(self, tmp_path, capsys):
        from repro.obs import validate_metrics, validate_trace

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        assert main(
            [
                "pipeline",
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert f"metrics written to {metrics_path}" in out
        assert f"trace written to {trace_path}" in out
        metrics_doc = json.loads(metrics_path.read_text())
        trace_doc = json.loads(trace_path.read_text())
        assert validate_metrics(metrics_doc) == []
        assert validate_trace(trace_doc) == []
        assert metrics_doc["counters"]["pipeline_runs_total"] == 1
        assert trace_doc["spans"][0]["name"] == "pipeline"


class TestTableCommands:
    def test_table2_prints_paper_numbers(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "University" in out
        assert "518" in out

    def test_table1_prints_all_kbs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for kb in ("YAGO", "DBpedia", "Freebase", "NELL"):
            assert kb in out

    def test_table3_prints_hotel_na(self, capsys):
        assert main(["table3", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Hotel" in out
        assert "N/A" in out


class TestFusionDemo:
    def test_copiers_scenario(self, capsys):
        assert main(["fusion-demo", "--items", "60"]) == 0
        out = capsys.readouterr().out
        assert "knowledge-fusion" in out
        assert "vote" in out

    def test_hierarchy_scenario_adds_wrapper(self, capsys):
        assert main(
            ["fusion-demo", "--scenario", "hierarchy", "--items", "40"]
        ) == 0
        assert "hier(accu)" in capsys.readouterr().out


class TestQueryCommand:
    def test_query_over_exported_tsv(self, tmp_path, capsys):
        store = TripleStore()
        store.add(
            ScoredTriple(
                Triple("book/1", "author", Value("Jane")),
                Provenance("src", "ex"),
            )
        )
        store.add(
            ScoredTriple(
                Triple("book/2", "author", Value("Tom")),
                Provenance("src", "ex"),
            )
        )
        path = tmp_path / "claims.tsv"
        dump_claims_tsv(store, path)
        assert main(["query", str(path), "--predicate", "author"]) == 0
        out = capsys.readouterr().out
        assert "2 solutions" in out
        assert "Jane" in out and "Tom" in out

    def test_query_fully_bound(self, tmp_path, capsys):
        store = TripleStore()
        store.add(
            ScoredTriple(
                Triple("book/1", "author", Value("Jane")),
                Provenance("src", "ex"),
            )
        )
        path = tmp_path / "claims.tsv"
        dump_claims_tsv(store, path)
        assert main(
            [
                "query", str(path),
                "--subject", "book/1",
                "--predicate", "author",
                "--object", "Jane",
            ]
        ) == 0
        assert "1 solutions" in capsys.readouterr().out


class TestApplyDelta:
    def test_flag_is_repeatable(self):
        args = build_parser().parse_args(
            ["pipeline", "--apply-delta", "a.json", "--apply-delta", "b.json"]
        )
        assert args.apply_delta == ["a.json", "b.json"]
        assert build_parser().parse_args(["pipeline"]).apply_delta == []

    def test_pipeline_applies_delta_file(self, tmp_path, capsys):
        delta_path = tmp_path / "delta.json"
        delta_path.write_text(
            json.dumps(
                {
                    "label": "cli-test",
                    "added": [
                        {
                            "subject": "delta/test-entity",
                            "predicate": "capital",
                            "object": "Testville",
                            "kind": "string",
                            "source": "delta-src",
                            "extractor": "dom",
                            "confidence": 0.9,
                        }
                    ],
                    "retracted": [],
                }
            )
        )
        assert main(["pipeline", "--apply-delta", str(delta_path)]) == 0
        out = capsys.readouterr().out
        assert f"delta #1 ({delta_path})" in out
        assert "+1 claims" in out
        assert "re-fused" in out
        assert "verdicts reused" in out

    def test_pipeline_serve_routes_delta_through_stream(
        self, tmp_path, capsys
    ):
        delta_path = tmp_path / "delta.json"
        delta_path.write_text(
            json.dumps(
                {
                    "label": "cli-serve-test",
                    "added": [
                        {
                            "subject": "delta/test-entity",
                            "predicate": "capital",
                            "object": "Testville",
                            "kind": "string",
                            "source": "delta-src",
                            "extractor": "dom",
                            "confidence": 0.9,
                        }
                    ],
                    "retracted": [],
                }
            )
        )
        assert main(
            ["pipeline", "--serve", "--apply-delta", str(delta_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "published" in out
        assert "event 0: applied -> version 1" in out
        assert "serving: version 1, 1 events applied, lag 0, healthy" in out
        assert "top entity" in out


class TestStorageFlags:
    def test_pipeline_storage_defaults_and_flags(self):
        defaults = build_parser().parse_args(["pipeline"])
        assert defaults.storage_backend == "memory"
        assert defaults.storage_dir is None
        assert defaults.memtable_limit == 8192
        args = build_parser().parse_args(
            [
                "pipeline", "--storage-backend", "segment",
                "--storage-dir", "/tmp/segs", "--memtable-limit", "500",
            ]
        )
        assert args.storage_backend == "segment"
        assert args.storage_dir == "/tmp/segs"
        assert args.memtable_limit == 500

    def test_metrics_out_includes_post_run_delta_metrics(
        self, tmp_path, capsys
    ):
        """report.metrics is frozen at the end of run(); a delta applied
        afterwards accrues storage_*/incremental_* metrics that
        --metrics-out must still export (regression: the CLI used to
        dump the stale batch snapshot)."""
        from repro.obs import validate_metrics

        delta_path = tmp_path / "delta.json"
        delta_path.write_text(
            json.dumps(
                {
                    "label": "cli-storage-test",
                    "added": [
                        {
                            "subject": "delta/test-entity",
                            "predicate": "capital",
                            "object": "Testville",
                            "kind": "string",
                            "source": "delta-src",
                            "extractor": "dom",
                            "confidence": 0.9,
                        }
                    ],
                    "retracted": [],
                }
            )
        )
        metrics_path = tmp_path / "metrics.json"
        assert main(
            [
                "pipeline",
                "--query-scale", "0.0005",
                "--storage-backend", "segment",
                "--storage-dir", str(tmp_path / "segs"),
                "--memtable-limit", "500",
                "--apply-delta", str(delta_path),
                "--metrics-out", str(metrics_path),
            ]
        ) == 0
        capsys.readouterr()
        doc = json.loads(metrics_path.read_text())
        assert validate_metrics(doc) == []
        assert doc["counters"]["storage_flushes_total"] >= 1
        assert doc["counters"]["incremental_deltas_total"] == 1
        assert doc["gauges"]["storage_segments"] >= 1


class TestTenantsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["tenants"])
        assert args.n_tenants == 3
        assert args.seed == 7
        assert args.kinds == "static,drift,copying"
        assert args.checkpoint_root is None

    def test_table_and_summary_printed(self, capsys):
        main([
            "tenants", "--tenants", "2", "--kinds", "static",
            "--items", "8", "--sources", "3", "--parts", "2",
        ])
        out = capsys.readouterr().out
        assert "tenant00" in out and "tenant01" in out
        assert "2 tenants" in out

    def test_json_export_is_deterministic(self, tmp_path, capsys):
        documents = []
        for run in range(2):
            path = tmp_path / f"run{run}.json"
            main([
                "tenants", "--tenants", "2", "--kinds", "static",
                "--items", "8", "--sources", "3", "--parts", "2",
                "--json", str(path),
            ])
            documents.append(json.loads(path.read_text()))
        assert documents[0] == documents[1]
        rows = documents[0]["rows"]
        assert [row["name"] for row in rows] == ["tenant00", "tenant01"]
        assert all(row["halted"] is None for row in rows)

    def test_metrics_out_carries_tenant_labels(self, tmp_path, capsys):
        from repro.obs.schema import validate_tenant_metrics

        path = tmp_path / "metrics.json"
        main([
            "tenants", "--tenants", "2", "--kinds", "static",
            "--items", "8", "--sources", "3", "--parts", "2",
            "--metrics-out", str(path),
        ])
        payload = json.loads(path.read_text())
        assert validate_tenant_metrics(
            payload, ["tenant00", "tenant01"]
        ) == []

    def test_checkpoint_root_gets_per_tenant_subdirs(self, tmp_path, capsys):
        root = tmp_path / "ckpt"
        main([
            "tenants", "--tenants", "2", "--kinds", "static",
            "--items", "8", "--sources", "3", "--parts", "2",
            "--checkpoint-root", str(root),
        ])
        assert (root / "tenant00" / "incremental.ckpt").exists()
        assert (root / "tenant01" / "incremental.ckpt").exists()
