"""Unit tests for the query-stream extractor."""

import pytest

from repro.extract.querystream import (
    QueryStreamConfig,
    QueryStreamExtractor,
    _strip_query_tail,
)
from repro.rdf.ontology import Entity
from repro.synth.querylog import QueryRecord
from repro.textproc.tokenize import tokenize_words


def make_extractor(config=None):
    entities = {
        "france": Entity("country/1", "France", "Country"),
        "the silent river": Entity("book/1", "The Silent River", "Book"),
        "silent river": Entity("book/1", "The Silent River", "Book"),
    }
    return QueryStreamExtractor(entities, config)


def records(*texts):
    return [QueryRecord(i, text) for i, text in enumerate(texts)]


class TestStripTail:
    def test_strips_punctuation(self):
        assert _strip_query_tail(tokenize_words("capital of france?")) == [
            "capital", "of", "france",
        ]

    def test_strips_trailing_year(self):
        assert _strip_query_tail(["france", "population", "2014"]) == [
            "france", "population",
        ]

    def test_keeps_inner_year(self):
        assert _strip_query_tail(["2014", "census", "france"]) == [
            "2014", "census", "france",
        ]


class TestPatterns:
    def test_what_is_the_a_of_e(self):
        extractor = make_extractor(QueryStreamConfig(min_support=1,
                                                     min_entity_support=1))
        output, _ = extractor.extract(
            records("what is the capital of france")
        )
        assert output.attribute_names("Country") == {"capital"}

    def test_the_a_of_e(self):
        extractor = make_extractor(QueryStreamConfig(min_support=1,
                                                     min_entity_support=1))
        output, _ = extractor.extract(records("the population of france"))
        assert output.attribute_names("Country") == {"population"}

    def test_possessive(self):
        extractor = make_extractor(QueryStreamConfig(min_support=1,
                                                     min_entity_support=1))
        output, _ = extractor.extract(records("france's national anthem"))
        assert output.attribute_names("Country") == {"national anthem"}

    def test_determiner_before_entity(self):
        extractor = make_extractor(QueryStreamConfig(min_support=1,
                                                     min_entity_support=1))
        output, _ = extractor.extract(
            records("who is the author of the silent river")
        )
        assert output.attribute_names("Book") == {"author"}

    def test_unknown_entity_no_match(self):
        extractor = make_extractor(QueryStreamConfig(min_support=1,
                                                     min_entity_support=1))
        output, _ = extractor.extract(records("the capital of atlantis"))
        assert not output.attributes


class TestFilteringRules:
    def _extract(self, *texts):
        extractor = make_extractor(QueryStreamConfig(min_support=1,
                                                     min_entity_support=1))
        output, _ = extractor.extract(records(*texts))
        return output

    def test_stopword_attributes_rejected(self):
        output = self._extract("the best of france", "the cheapest of france")
        assert not output.attributes

    def test_numeric_attributes_rejected(self):
        output = self._extract("the 2014 of france")
        assert not output.attributes

    def test_url_fragments_rejected(self):
        output = self._extract("the www of france")
        assert not output.attributes

    def test_entity_as_attribute_rejected(self):
        output = self._extract("the silent river of france")
        assert "silent river" not in output.attribute_names("Country")


class TestCredibility:
    def test_min_support_enforced(self):
        extractor = make_extractor(
            QueryStreamConfig(min_support=3, min_entity_support=1)
        )
        output, stats = extractor.extract(
            records(
                "the capital of france",
                "the capital of france",
                "what is the capital of france",
                "the anthem of france",
            )
        )
        assert output.attribute_names("Country") == {"capital"}
        assert stats.candidate_attributes["Country"] == 2
        assert stats.credible_attributes["Country"] == 1

    def test_min_entity_support_enforced(self):
        extractor = make_extractor(
            QueryStreamConfig(min_support=2, min_entity_support=2)
        )
        output, _ = extractor.extract(
            records("the capital of france", "the capital of france")
        )
        assert not output.attributes


class TestStats:
    def test_relevant_counts(self):
        extractor = make_extractor()
        _, stats = extractor.extract(
            records(
                "france travel guide",
                "the silent river reviews",
                "unrelated query entirely",
            )
        )
        assert stats.relevant_records == {"Country": 1, "Book": 1}

    def test_alias_and_name_counted_once_per_record(self):
        extractor = make_extractor()
        _, stats = extractor.extract(records("the silent river"))
        assert stats.relevant_records == {"Book": 1}


class TestTable3Shape:
    def test_hotel_yields_no_credible_attributes(self, world, query_log):
        extractor = QueryStreamExtractor(world.entity_index())
        _, stats = extractor.extract(query_log)
        assert stats.credible_attributes.get("Hotel", 0) == 0
        assert stats.relevant_records.get("Hotel", 0) > 0

    def test_non_hotel_classes_yield_attributes(self, world, query_log):
        extractor = QueryStreamExtractor(world.entity_index())
        _, stats = extractor.extract(query_log)
        assert stats.credible_attributes.get("Country", 0) > 0
        assert stats.credible_attributes.get("Book", 0) > 0


class TestNoClaimsByDesign:
    """Regression: the extractor contributes attributes, never claims.

    Query records are questions — they name an attribute and an entity
    but carry no value — so the extractor has no facts to claim; its
    contribution reaches fusion through the seed sets that drive the
    DOM and Web-text extractors (see the module docstring).  These
    tests pin that contract: if someone plumbs triples into this
    extractor (or breaks the attribute → seed path), they fail.
    """

    def test_credible_attributes_but_zero_triples(self):
        extractor = make_extractor(
            QueryStreamConfig(min_support=1, min_entity_support=1)
        )
        output, stats = extractor.extract(
            records(
                "what is the capital of france",
                "the population of france",
            )
        )
        assert output.attribute_names("Country") == {"capital", "population"}
        assert sum(stats.credible_attributes.values()) > 0
        assert output.triples == []

    def test_discovered_attributes_flow_into_seed_sets(self):
        from repro.extract.seeds import build_seed_sets

        extractor = make_extractor(
            QueryStreamConfig(min_support=1, min_entity_support=1)
        )
        output, _ = extractor.extract(
            records("what is the capital of france")
        )
        seeds = build_seed_sets([output], ["Country"], min_support=1)
        assert "capital" in seeds["Country"]
