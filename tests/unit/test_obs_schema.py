"""Unit tests for the metrics/trace JSON schema validators."""

import json

from repro.obs.schema import (
    main,
    validate_metrics,
    validate_tenant_metrics,
    validate_trace,
)


def good_metrics() -> dict:
    return {
        "counters": {"runs_total": 1},
        "gauges": {"active_sources": 4},
        "histograms": {
            "sizes": {
                "bounds": [1.0, 5.0],
                "counts": [2, 1, 0],
                "count": 3,
                "sum": 7.0,
            }
        },
    }


def good_trace() -> dict:
    return {
        "seconds": 1.5,
        "spans": [
            {
                "name": "pipeline",
                "start": 0.0,
                "seconds": 1.5,
                "detail": "",
                "status": "ok",
                "children": [
                    {
                        "name": "fusion",
                        "start": 0.5,
                        "seconds": 1.0,
                        "detail": "10 items",
                        "status": "failed",
                        "children": [],
                    }
                ],
            }
        ],
    }


class TestValidateMetrics:
    def test_good_document_is_clean(self):
        assert validate_metrics(good_metrics()) == []

    def test_non_object_rejected(self):
        assert validate_metrics([]) != []

    def test_unexpected_top_level_key(self):
        doc = good_metrics()
        doc["extra"] = {}
        assert any("extra" in p for p in validate_metrics(doc))

    def test_non_numeric_counter(self):
        doc = good_metrics()
        doc["counters"]["runs_total"] = "many"
        assert any("runs_total" in p for p in validate_metrics(doc))

    def test_boolean_is_not_a_number(self):
        doc = good_metrics()
        doc["gauges"]["active_sources"] = True
        assert validate_metrics(doc) != []

    def test_unsorted_bounds(self):
        doc = good_metrics()
        doc["histograms"]["sizes"]["bounds"] = [5.0, 1.0]
        assert any("sorted" in p for p in validate_metrics(doc))

    def test_count_slot_mismatch(self):
        doc = good_metrics()
        doc["histograms"]["sizes"]["counts"] = [2, 1]
        assert any("slots" in p for p in validate_metrics(doc))

    def test_count_must_equal_sum_of_counts(self):
        doc = good_metrics()
        doc["histograms"]["sizes"]["count"] = 99
        assert any("sum(counts)" in p for p in validate_metrics(doc))


class TestValidateTrace:
    def test_good_document_is_clean(self):
        assert validate_trace(good_trace()) == []

    def test_missing_seconds(self):
        doc = good_trace()
        del doc["seconds"]
        assert validate_trace(doc) != []

    def test_bad_status_deep_in_the_tree(self):
        doc = good_trace()
        doc["spans"][0]["children"][0]["status"] = "meh"
        problems = validate_trace(doc)
        assert any("children[0].status" in p for p in problems)

    def test_negative_start_rejected(self):
        doc = good_trace()
        doc["spans"][0]["start"] = -1.0
        assert validate_trace(doc) != []


class TestMain:
    def test_valid_files_exit_zero(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        metrics.write_text(json.dumps(good_metrics()))
        trace.write_text(json.dumps(good_trace()))
        code = main(["--metrics", str(metrics), "--trace", str(trace)])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_file_exits_nonzero(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        metrics.write_text(json.dumps({"counters": {"x": "bad"}}))
        assert main(["--metrics", str(metrics)]) == 1
        assert capsys.readouterr().err != ""

    def test_unreadable_file_is_a_problem_not_a_crash(self, tmp_path):
        assert main(["--metrics", str(tmp_path / "missing.json")]) == 1


def tenant_metrics() -> dict:
    return {
        "counters": {
            "stream_published_total{tenant=t00}": 3,
            "stream_published_total{tenant=t01}": 3,
            "runs_total": 1,
        },
        "gauges": {
            "serving_version{tenant=t00}": 3,
            "serving_version{tenant=t01}": 3,
            "tenant_count": 2,
        },
        "histograms": {},
    }


class TestValidateTenantMetrics:
    def test_fully_labeled_document_is_clean(self):
        assert validate_tenant_metrics(
            tenant_metrics(), ["t00", "t01"]
        ) == []

    def test_non_object_rejected(self):
        assert validate_tenant_metrics([], ["t00"]) != []

    def test_unlabeled_tenant_scoped_series_is_a_leak(self):
        doc = tenant_metrics()
        doc["counters"]["stream_published_total"] = 6
        problems = validate_tenant_metrics(doc, ["t00", "t01"])
        assert any("without a" in p for p in problems)

    def test_unknown_tenant_label_is_reported(self):
        doc = tenant_metrics()
        doc["counters"]["serving_reads_total{tenant=ghost}"] = 1
        problems = validate_tenant_metrics(doc, ["t00", "t01"])
        assert any("unknown tenant 'ghost'" in p for p in problems)

    def test_silent_tenant_is_reported(self):
        problems = validate_tenant_metrics(
            tenant_metrics(), ["t00", "t01", "t02"]
        )
        assert any(
            "t02" in p and "serving_version" in p for p in problems
        )

    def test_unscoped_series_need_no_label(self):
        doc = {
            "counters": {"runs_total": 1},
            "gauges": {"serving_version{tenant=t00}": 1},
            "histograms": {},
        }
        assert validate_tenant_metrics(doc, ["t00"]) == []


class TestMainTenants:
    def test_valid_tenant_file_exits_zero(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        metrics.write_text(json.dumps(tenant_metrics()))
        code = main(["--metrics", str(metrics), "--tenants", "t00,t01"])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_missing_label_fails(self, tmp_path, capsys):
        doc = tenant_metrics()
        del doc["gauges"]["serving_version{tenant=t01}"]
        metrics = tmp_path / "m.json"
        metrics.write_text(json.dumps(doc))
        assert main(
            ["--metrics", str(metrics), "--tenants", "t00,t01"]
        ) == 1
        assert "t01" in capsys.readouterr().err

    def test_tenants_flag_requires_metrics(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["--tenants", "t00"])
