"""Unit tests for the ontology model (classes, attributes, entities)."""

import pytest

from repro.errors import OntologyError
from repro.rdf.ontology import Attribute, Entity, Ontology, OntologyClass


def make_class(name="Book", entity_count=2):
    cls = OntologyClass(
        name,
        attributes=[
            Attribute("author"),
            Attribute("genre", functional=False),
        ],
    )
    for index in range(entity_count):
        cls.add_entity(
            Entity(f"{name.lower()}/{index}", f"{name} {index}", name)
        )
    return cls


class TestAttribute:
    def test_defaults(self):
        attribute = Attribute("author")
        assert attribute.functional
        assert not attribute.hierarchical

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("")


class TestEntity:
    def test_surface_forms_include_aliases(self):
        entity = Entity("e1", "The Silent River", "Book", ("Silent River",))
        assert entity.surface_forms() == ("The Silent River", "Silent River")


class TestOntologyClass:
    def test_empty_name_rejected(self):
        with pytest.raises(OntologyError):
            OntologyClass("")

    def test_add_attribute_dedupes(self):
        cls = make_class()
        assert not cls.add_attribute(Attribute("author"))
        assert cls.add_attribute(Attribute("publisher"))
        assert "publisher" in cls.attribute_names

    def test_attribute_lookup(self):
        cls = make_class()
        assert cls.attribute("genre").functional is False
        with pytest.raises(OntologyError):
            cls.attribute("missing")

    def test_has_attribute(self):
        cls = make_class()
        assert cls.has_attribute("author")
        assert not cls.has_attribute("missing")

    def test_entity_class_mismatch_rejected(self):
        cls = make_class()
        with pytest.raises(OntologyError):
            cls.add_entity(Entity("x", "X", "Film"))

    def test_entity_lookup(self):
        cls = make_class()
        assert cls.entity("book/0").name == "Book 0"
        with pytest.raises(OntologyError):
            cls.entity("missing")

    def test_len_counts_entities(self):
        assert len(make_class(entity_count=3)) == 3


class TestOntology:
    def test_duplicate_class_rejected(self):
        ontology = Ontology([make_class()])
        with pytest.raises(OntologyError):
            ontology.add_class(make_class())

    def test_unknown_class_rejected(self):
        with pytest.raises(OntologyError):
            Ontology().cls("Nope")

    def test_counts(self):
        ontology = Ontology([make_class("Book"), make_class("Film")])
        assert len(ontology) == 2
        assert ontology.entity_count() == 4
        # author/genre shared between classes => 2 distinct names
        assert ontology.attribute_count() == 2

    def test_find_entity(self):
        ontology = Ontology([make_class("Book")])
        assert ontology.find_entity("book/1").name == "Book 1"
        assert ontology.find_entity("nope") is None

    def test_entity_index_lowercases(self):
        ontology = Ontology([make_class("Book")])
        index = ontology.entity_index()
        assert index["book 0"].entity_id == "book/0"

    def test_entity_index_first_wins_on_collision(self):
        book = OntologyClass("Book")
        book.add_entity(Entity("book/0", "Twin", "Book"))
        film = OntologyClass("Film")
        film.add_entity(Entity("film/0", "Twin", "Film"))
        ontology = Ontology([book, film])
        assert ontology.entity_index()["twin"].entity_id == "book/0"
