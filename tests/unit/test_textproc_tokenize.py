"""Unit tests for word tokenization."""

from repro.textproc.tokenize import detokenize, normalize_token, tokenize_words


class TestTokenizeWords:
    def test_simple_split(self):
        assert tokenize_words("the quick fox") == ["the", "quick", "fox"]

    def test_trailing_punctuation_separated(self):
        assert tokenize_words("Hello, world!") == ["Hello", ",", "world", "!"]

    def test_question_mark(self):
        assert tokenize_words("why?") == ["why", "?"]

    def test_possessive_split(self):
        assert tokenize_words("France's capital") == [
            "France", "'s", "capital",
        ]

    def test_plural_possessive(self):
        assert tokenize_words("the kings' crown") == [
            "the", "kings", "'", "crown",
        ]

    def test_parentheses(self):
        assert tokenize_words("(see below)") == ["(", "see", "below", ")"]

    def test_hyphen_kept(self):
        assert tokenize_words("well-known fact") == ["well-known", "fact"]

    def test_numbers_kept(self):
        assert tokenize_words("pop. 67,000,000") == ["pop", ".", "67,000,000"]

    def test_empty(self):
        assert tokenize_words("") == []

    def test_only_punctuation(self):
        assert tokenize_words("...") == [".", ".", "."]


class TestNormalizeToken:
    def test_lowercases(self):
        assert normalize_token("Paris") == "paris"


class TestDetokenize:
    def test_punctuation_attaches(self):
        assert detokenize(["Hello", ",", "world", "!"]) == "Hello, world!"

    def test_possessive_attaches(self):
        assert detokenize(["France", "'s", "capital"]) == "France's capital"

    def test_roundtrip_words(self):
        text = "plain words only"
        assert detokenize(tokenize_words(text)) == text

    def test_empty(self):
        assert detokenize([]) == ""
