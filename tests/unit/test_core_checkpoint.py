"""Unit tests for the fingerprinted checkpoint store."""

import os
import time

from repro.core.checkpoint import (
    CHECKPOINT_STAGES,
    CheckpointStore,
    config_fingerprint,
)
from repro.obs import MetricsRegistry
from repro.core.pipeline import PipelineConfig
from repro.faults import FaultPlan
from repro.mapreduce.engine import RetryPolicy
from repro.synth.world import WorldConfig


class TestConfigFingerprint:
    def test_identical_configs_share_a_fingerprint(self):
        assert config_fingerprint(PipelineConfig()) == config_fingerprint(
            PipelineConfig()
        )

    def test_changed_seed_changes_the_fingerprint(self):
        base = PipelineConfig()
        reseeded = PipelineConfig(world=WorldConfig(seed=999))
        assert config_fingerprint(base) != config_fingerprint(reseeded)

    def test_changed_extraction_toggle_changes_the_fingerprint(self):
        base = PipelineConfig()
        toggled = PipelineConfig(discover_new_entities=True)
        assert config_fingerprint(base) != config_fingerprint(toggled)

    def test_execution_knobs_do_not_change_the_fingerprint(self):
        # A run interrupted by an injected fault (or run with different
        # parallelism) must be resumable by a clean config.
        base = PipelineConfig()
        execution_only = PipelineConfig(
            parallelism=4,
            fusion_parallelism=2,
            retry=RetryPolicy(max_attempts=5),
            fault_plan=FaultPlan(seed=1).crash("stage:fusion"),
            checkpoint_dir="/tmp/somewhere",
            stage_timeout=30.0,
            min_sources=2,
        )
        assert config_fingerprint(base) == config_fingerprint(execution_only)


class TestCheckpointStore:
    def test_save_then_load_round_trips(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        payload = {"numbers": [1, 2, 3], "name": "extraction"}
        store.save("extraction", payload)
        assert store.load("extraction") == payload

    def test_missing_stage_loads_none(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        assert store.load("claims") is None

    def test_fingerprint_mismatch_is_treated_as_absent(self, tmp_path):
        CheckpointStore(tmp_path, "fp-old").save("extraction", {"x": 1})
        assert CheckpointStore(tmp_path, "fp-new").load("extraction") is None

    def test_corrupt_file_is_treated_as_absent(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        store.save("extraction", {"x": 1})
        store.path("extraction").write_bytes(b"\x00 not a pickle")
        assert store.load("extraction") is None

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        store.save("claims", list(range(100)))
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["claims.ckpt"]

    def test_clear_removes_known_stages(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        for stage in CHECKPOINT_STAGES:
            store.save(stage, stage)
        assert store.clear() == len(CHECKPOINT_STAGES)
        assert all(store.load(stage) is None for stage in CHECKPOINT_STAGES)


class TestTempFileHygiene:
    """Regression: a crash mid-save orphaned ``.tmp`` files forever."""

    def _orphan(self, tmp_path, name: str, *, age: float = 3600.0):
        orphan = tmp_path / name
        orphan.write_bytes(b"half-written")
        stale = time.time() - age
        os.utime(orphan, (stale, stale))
        return orphan

    def test_save_sweeps_stale_orphans_of_its_stage(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        self._orphan(tmp_path, "claims.ckpt.999.0.tmp")
        self._orphan(tmp_path, "claims.ckpt.tmp")  # legacy naming
        other = self._orphan(tmp_path, "extraction.ckpt.999.0.tmp")
        store.save("claims", {"x": 1})
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["claims.ckpt", other.name]

    def test_save_leaves_fresh_temps_alone(self, tmp_path):
        # A just-written temp may belong to a live concurrent writer:
        # deleting it would crash that writer's os.replace.
        store = CheckpointStore(tmp_path, "fp-1")
        live = self._orphan(tmp_path, "claims.ckpt.998.7.tmp", age=0.0)
        store.save("claims", {"x": 1})
        assert live.exists()

    def test_clear_sweeps_own_and_stale_orphans(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        store.save("extraction", {"x": 1})
        # Own-pid temp: swept even when fresh (this process is not
        # mid-save — it is the one calling clear).
        own = tmp_path / f"claims.ckpt.{os.getpid()}.777.tmp"
        own.write_bytes(b"half-written")
        self._orphan(tmp_path, "extraction.ckpt.tmp")  # stale legacy
        assert store.clear() == 3
        assert list(tmp_path.iterdir()) == []

    def test_clear_spares_a_sibling_stores_live_temp(self, tmp_path):
        # Regression: two tenants share one checkpoint root.  Tenant
        # B's store is mid-``save`` (fresh temp, foreign pid) when
        # tenant A clears its checkpoints — the old unconditional
        # sweep deleted B's in-flight temp and lost its checkpoint.
        clearing = CheckpointStore(tmp_path, "fp-a")
        clearing.save("extraction", {"x": 1})
        live = self._orphan(tmp_path, "claims.ckpt.999.3.tmp", age=0.0)
        legacy_live = self._orphan(tmp_path, "claims.ckpt.tmp", age=0.0)
        assert clearing.clear() == 1  # only its own checkpoint file
        assert live.exists()
        assert legacy_live.exists()

    def test_temp_names_unique_across_stores_in_one_process(self, tmp_path):
        # Two stores sharing a directory must never mint the same temp
        # name, or one's os.replace could ship the other's bytes.
        first = CheckpointStore(tmp_path, "fp-1")
        second = CheckpointStore(tmp_path, "fp-2")
        names = {
            first._temp_path("claims").name,
            second._temp_path("claims").name,
            first._temp_path("claims").name,
        }
        assert len(names) == 3

    def test_metrics_count_store_traffic(self, tmp_path):
        registry = MetricsRegistry()
        store = CheckpointStore(tmp_path, "fp-1", metrics=registry)
        self._orphan(tmp_path, "claims.ckpt.999.0.tmp")
        store.save("claims", {"x": 1})
        assert store.load("claims") == {"x": 1}
        store.load("extraction")  # miss
        stale = CheckpointStore(tmp_path, "fp-other", metrics=registry)
        stale.load("claims")  # fingerprint mismatch
        counters = registry.snapshot().counters
        assert counters["checkpoint_saves_total{stage=claims}"] == 1
        assert counters["checkpoint_loads_total{stage=claims}"] == 1
        assert counters["checkpoint_misses_total{stage=extraction}"] == 1
        assert counters["checkpoint_stale_total{stage=claims}"] == 1
        assert counters["checkpoint_temps_swept_total"] == 1
