"""Unit tests for the fingerprinted checkpoint store."""

from repro.core.checkpoint import (
    CHECKPOINT_STAGES,
    CheckpointStore,
    config_fingerprint,
)
from repro.core.pipeline import PipelineConfig
from repro.faults import FaultPlan
from repro.mapreduce.engine import RetryPolicy
from repro.synth.world import WorldConfig


class TestConfigFingerprint:
    def test_identical_configs_share_a_fingerprint(self):
        assert config_fingerprint(PipelineConfig()) == config_fingerprint(
            PipelineConfig()
        )

    def test_changed_seed_changes_the_fingerprint(self):
        base = PipelineConfig()
        reseeded = PipelineConfig(world=WorldConfig(seed=999))
        assert config_fingerprint(base) != config_fingerprint(reseeded)

    def test_changed_extraction_toggle_changes_the_fingerprint(self):
        base = PipelineConfig()
        toggled = PipelineConfig(discover_new_entities=True)
        assert config_fingerprint(base) != config_fingerprint(toggled)

    def test_execution_knobs_do_not_change_the_fingerprint(self):
        # A run interrupted by an injected fault (or run with different
        # parallelism) must be resumable by a clean config.
        base = PipelineConfig()
        execution_only = PipelineConfig(
            parallelism=4,
            fusion_parallelism=2,
            retry=RetryPolicy(max_attempts=5),
            fault_plan=FaultPlan(seed=1).crash("stage:fusion"),
            checkpoint_dir="/tmp/somewhere",
            stage_timeout=30.0,
            min_sources=2,
        )
        assert config_fingerprint(base) == config_fingerprint(execution_only)


class TestCheckpointStore:
    def test_save_then_load_round_trips(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        payload = {"numbers": [1, 2, 3], "name": "extraction"}
        store.save("extraction", payload)
        assert store.load("extraction") == payload

    def test_missing_stage_loads_none(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        assert store.load("claims") is None

    def test_fingerprint_mismatch_is_treated_as_absent(self, tmp_path):
        CheckpointStore(tmp_path, "fp-old").save("extraction", {"x": 1})
        assert CheckpointStore(tmp_path, "fp-new").load("extraction") is None

    def test_corrupt_file_is_treated_as_absent(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        store.save("extraction", {"x": 1})
        store.path("extraction").write_bytes(b"\x00 not a pickle")
        assert store.load("extraction") is None

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        store.save("claims", list(range(100)))
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["claims.ckpt"]

    def test_clear_removes_known_stages(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp-1")
        for stage in CHECKPOINT_STAGES:
            store.save(stage, stage)
        assert store.clear() == len(CHECKPOINT_STAGES)
        assert all(store.load(stage) is None for stage in CHECKPOINT_STAGES)
