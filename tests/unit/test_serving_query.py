"""Unit tests for versioned-KB handles and the pinned query surface."""

import pytest

from repro.errors import ServingError
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.incremental import canonical_claims
from repro.obs.metrics import MetricsRegistry
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.serving.query import KBReader
from repro.serving.version import KBVersion, VersionedKB


def claim(subject, predicate, value, source, conf=0.8):
    return ScoredTriple(
        Triple(subject, predicate, Value(value)),
        Provenance(source, "ex"),
        conf,
    )


CORPUS = [
    # Three sources agree on Paris, one dissents: fused-true = Paris.
    claim("france", "capital", "Paris", "s1", 0.9),
    claim("france", "capital", "Paris", "s2", 0.8),
    claim("france", "capital", "Paris", "s3", 0.8),
    claim("france", "capital", "Lyon", "s4", 0.3),
    claim("france", "population", "67M", "s1", 0.7),
    claim("france", "population", "67M", "s2", 0.7),
    claim("germany", "capital", "Berlin", "s1", 0.9),
    claim("germany", "capital", "Berlin", "s2", 0.9),
    claim("spain", "capital", "Madrid", "s1", 0.8),
]


def build_version(corpus=CORPUS, version_id=0):
    store = TripleStore()
    store.add_all(corpus)
    result = KnowledgeFusion(tolerance=0.0, max_iterations=8).fuse(
        canonical_claims(store)
    )
    return KBVersion(
        version_id=version_id, sequence=0, store=store, result=result
    )


@pytest.fixture(scope="module")
def version():
    return build_version()


class TestVersionedKB:
    def test_pin_returns_the_committed_version(self, version):
        kb = VersionedKB(version)
        assert kb.pin() is version
        assert kb.current is version
        assert kb.commits == 0

    def test_commit_is_strictly_monotonic(self, version):
        kb = VersionedKB(version)
        successor = build_version(version_id=1)
        kb.commit(successor)
        assert kb.current is successor
        assert kb.commits == 1
        with pytest.raises(ServingError):
            kb.commit(build_version(version_id=1))  # replayed commit
        with pytest.raises(ServingError):
            kb.commit(build_version(version_id=3))  # skipped commit

    def test_pinned_version_survives_later_commits(self, version):
        kb = VersionedKB(version)
        pinned = kb.pin()
        kb.commit(build_version(version_id=1))
        assert pinned is version
        assert kb.pin() is not pinned

    def test_describe_is_json_shaped(self, version):
        summary = version.describe()
        assert summary["version_id"] == 0
        assert summary["claims"] == len(CORPUS)
        assert summary["fused_items"] == len(version.result.truths)


class TestPointLookups:
    def test_lookup_returns_fused_truth_with_belief(self, version):
        # Value keys come back normalized (lowercased) by fusion.
        view = KBReader(version).lookup("france", "capital")
        assert view.values == ("paris",)
        assert view.best() == "paris"
        assert view.beliefs["paris"] > 0.5
        assert view.claims == 4  # every claim on the item, losers too

    def test_lookup_on_unknown_item_is_empty(self, version):
        view = KBReader(version).lookup("atlantis", "capital")
        assert view.is_empty()
        assert view.best() is None
        assert view.claims == 0

    def test_belief_of_losing_and_unknown_values(self, version):
        reader = KBReader(version)
        winner = reader.belief("france", "capital", "paris")
        loser = reader.belief("france", "capital", "lyon")
        assert winner > loser > 0.0
        assert reader.belief("france", "capital", "nowhere") == 0.0


class TestScans:
    def test_scan_subject_is_predicate_sorted_and_complete(self, version):
        views = KBReader(version).scan_subject("france")
        assert [view.predicate for view in views] == [
            "capital", "population",
        ]
        assert views[0].best() == "paris"
        assert views[1].best() == "67m"

    def test_scan_predicate_is_subject_sorted_and_bounded(self, version):
        reader = KBReader(version)
        views = reader.scan_predicate("capital")
        assert [view.subject for view in views] == [
            "france", "germany", "spain",
        ]
        assert [view.subject for view in reader.scan_predicate(
            "capital", limit=2
        )] == ["france", "germany"]

    def test_scan_predicate_skips_undecided_items(self, version):
        views = KBReader(version).scan_predicate("capital")
        assert all(not view.is_empty() for view in views)


class TestTopEntities:
    def test_ranking_is_deterministic_and_bounded(self, version):
        reader = KBReader(version)
        top = reader.top_entities(2)
        assert len(top) == 2
        assert top[0][0] == "france"  # two fused facts beat one
        assert top == reader.top_entities(2)  # cached, stable
        assert [s for s, _ in reader.top_entities(10)] == sorted(
            {"france", "germany", "spain"},
            key=lambda s: (-dict(reader.top_entities(10))[s], s),
        )


class TestReadMetrics:
    def test_reads_are_counted_by_kind(self, version):
        metrics = MetricsRegistry()
        reader = KBReader(version, metrics=metrics)
        reader.lookup("france", "capital")
        reader.scan_subject("france")
        reader.top_entities(1)
        # scan_subject fans out into per-predicate lookups.
        lookups = metrics.counter("serving_reads_total", kind="lookup")
        assert lookups.value == 3
        assert (
            metrics.counter(
                "serving_reads_total", kind="scan_subject"
            ).value
            == 1
        )


class CountingStore(TripleStore):
    """TripleStore that counts the reader-visible access paths."""

    def __init__(self):
        super().__init__()
        self.match_calls = 0
        self.claims_for_item_calls = 0

    def match(self, *args, **kwargs):
        self.match_calls += 1
        return super().match(*args, **kwargs)

    def claims_for_item(self, *args, **kwargs):
        self.claims_for_item_calls += 1
        return super().claims_for_item(*args, **kwargs)


class TestScanPredicateShortCircuit:
    """Regression: a bounded scan must not materialize the store.

    ``scan_predicate`` used to pull *every* matching triple out of the
    store, dedupe and sort the full subject set, and only then apply
    ``limit`` — a limit-1 scan over a large predicate paid for the
    whole corpus.  It now walks a lazily-built per-predicate index of
    fused-true subjects, so a bounded scan touches exactly the
    subjects it returns.
    """

    def build(self, n_subjects=200):
        corpus = []
        for index in range(n_subjects):
            subject = f"entity{index:04d}"
            corpus.append(claim(subject, "capital", f"city{index}", "s1"))
            corpus.append(claim(subject, "capital", f"city{index}", "s2"))
        store = CountingStore()
        store.add_all(corpus)
        result = KnowledgeFusion(tolerance=0.0, max_iterations=8).fuse(
            canonical_claims(store)
        )
        store.match_calls = 0
        store.claims_for_item_calls = 0
        return store, KBVersion(
            version_id=0, sequence=0, store=store, result=result
        )

    def test_limit_1_touches_one_subject(self):
        store, version = self.build()
        views = KBReader(version).scan_predicate("capital", limit=1)
        assert [view.subject for view in views] == ["entity0000"]
        assert store.match_calls == 0, (
            "bounded scan materialized the store's full subject set"
        )
        assert store.claims_for_item_calls == 1, (
            "bounded scan looked up more subjects than it returned"
        )

    def test_unbounded_scan_is_unchanged(self):
        store, version = self.build(n_subjects=25)
        views = KBReader(version).scan_predicate("capital")
        assert [view.subject for view in views] == [
            f"entity{index:04d}" for index in range(25)
        ]

    def test_limit_zero_and_missing_predicate(self):
        _store, version = self.build(n_subjects=5)
        reader = KBReader(version)
        assert reader.scan_predicate("capital", limit=0) == []
        assert reader.scan_predicate("nope") == []
