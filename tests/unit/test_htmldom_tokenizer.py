"""Unit tests for the HTML tokenizer."""

from repro.htmldom.tokenizer import TokenType, tokenize


def kinds(markup):
    return [(token.type, token.data) for token in tokenize(markup)]


class TestBasicTokens:
    def test_start_and_end_tags(self):
        assert kinds("<p>hi</p>") == [
            (TokenType.START_TAG, "p"),
            (TokenType.TEXT, "hi"),
            (TokenType.END_TAG, "p"),
        ]

    def test_tag_names_lowercased(self):
        assert tokenize("<DIV></DIV>")[0].data == "div"

    def test_void_element_self_closing(self):
        tokens = tokenize("<br>")
        assert tokens[0].type is TokenType.SELF_CLOSING

    def test_explicit_self_closing(self):
        tokens = tokenize("<widget/>")
        assert tokens[0].type is TokenType.SELF_CLOSING

    def test_text_entity_unescaped(self):
        tokens = tokenize("a &amp; b")
        assert tokens[0].data == "a & b"


class TestAttributes:
    def test_double_quoted(self):
        token = tokenize('<a href="x.html">')[0]
        assert token.attrs == {"href": "x.html"}

    def test_single_quoted(self):
        token = tokenize("<a href='x.html'>")[0]
        assert token.attrs == {"href": "x.html"}

    def test_unquoted(self):
        token = tokenize("<a href=x.html>")[0]
        assert token.attrs == {"href": "x.html"}

    def test_boolean_attribute(self):
        token = tokenize("<input disabled>")[0]
        assert token.attrs == {"disabled": ""}

    def test_multiple_attributes(self):
        token = tokenize('<div id="a" class="b c">')[0]
        assert token.attrs == {"id": "a", "class": "b c"}

    def test_attribute_entity_unescaped(self):
        token = tokenize('<div title="a &amp; b">')[0]
        assert token.attrs["title"] == "a & b"

    def test_attribute_names_lowercased(self):
        token = tokenize('<div CLASS="x">')[0]
        assert "class" in token.attrs


class TestCommentsAndDoctype:
    def test_comment(self):
        tokens = tokenize("<!-- hello -->text")
        assert tokens[0].type is TokenType.COMMENT
        assert tokens[1].data == "text"

    def test_doctype(self):
        tokens = tokenize("<!DOCTYPE html><html></html>")
        assert tokens[0].type is TokenType.DOCTYPE

    def test_unterminated_comment(self):
        tokens = tokenize("<!-- oops")
        assert tokens[0].type is TokenType.COMMENT


class TestRawText:
    def test_script_content_not_parsed(self):
        tokens = tokenize("<script>if (a < b) {}</script><p>x</p>")
        assert tokens[0].data == "script"
        assert tokens[1].type is TokenType.TEXT
        assert "a < b" in tokens[1].data
        assert tokens[2].type is TokenType.END_TAG

    def test_style_content_not_parsed(self):
        tokens = tokenize("<style>p > a {}</style>")
        assert tokens[1].type is TokenType.TEXT

    def test_unterminated_script(self):
        tokens = tokenize("<script>var x = 1;")
        assert tokens[-1].type is TokenType.END_TAG
        assert tokens[-1].data == "script"


class TestMalformedRecovery:
    def test_stray_lt_is_text(self):
        tokens = tokenize("1 < 2")
        text = "".join(t.data for t in tokens if t.type is TokenType.TEXT)
        assert text == "1 < 2"

    def test_lt_at_end_of_input(self):
        tokens = tokenize("abc<")
        assert tokens[-1].type is TokenType.TEXT

    def test_unterminated_tag(self):
        tokens = tokenize("<div class='x")
        assert tokens[0].type is TokenType.START_TAG

    def test_unterminated_end_tag(self):
        tokens = tokenize("hello</p")
        assert tokens[0].data == "hello"

    def test_empty_input(self):
        assert tokenize("") == []

    def test_whitespace_preserved_in_text(self):
        tokens = tokenize("<p>  padded  </p>")
        assert tokens[1].data == "  padded  "
