"""Convergence early-exit tests for the fixed-point fusion methods.

On an easy instance (accurate sources, clean separation) every
iterative method should reach its fixed point well before the
iteration cap, report the round in ``converged_at``, and decide the
same truths whether the early exit is enabled (default tolerance) or
disabled (``tolerance=0`` runs all rounds).
"""

import pytest

from repro.fusion.accu import Accu, PopAccu
from repro.fusion.confidence_weighted import GeneralizedSums, Investment
from repro.fusion.multitruth import MultiTruth
from repro.fusion.vote import Vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


@pytest.fixture(scope="module")
def easy_claims():
    config = ClaimWorldConfig(
        seed=17, n_items=50, n_sources=6,
        source_accuracies=[0.95, 0.92, 0.9, 0.88, 0.85, 0.82],
    )
    return generate_claim_world(config).claims


# Method class + the convergence tolerance used on the easy instance.
# Investment's trust vector contracts by only a few percent per round
# (the convex growth keeps reallocating credit), so it gets a looser
# tolerance; the others settle quickly at their defaults.
FIXED_POINT_METHODS = {
    "accu": (Accu, 1e-4),
    "popaccu": (PopAccu, 1e-4),
    "multitruth": (MultiTruth, 1e-4),
    "gensums": (GeneralizedSums, 1e-6),
    "investment": (Investment, 1e-2),
}


class TestEarlyExit:
    @pytest.mark.parametrize("name", sorted(FIXED_POINT_METHODS))
    def test_converges_before_cap(self, easy_claims, name):
        method_cls, tolerance = FIXED_POINT_METHODS[name]
        method = method_cls(max_iterations=50, tolerance=tolerance)
        result = method.fuse(easy_claims)
        assert result.converged_at is not None
        assert result.converged_at == result.iterations
        assert result.iterations < 50

    @pytest.mark.parametrize("name", sorted(FIXED_POINT_METHODS))
    def test_same_truths_with_and_without_early_exit(
        self, easy_claims, name
    ):
        method_cls, tolerance = FIXED_POINT_METHODS[name]
        early = method_cls(tolerance=tolerance).fuse(easy_claims)
        full = method_cls(tolerance=0.0).fuse(easy_claims)
        assert early.truths == full.truths
        assert early.iterations < full.iterations

    @pytest.mark.parametrize("name", sorted(FIXED_POINT_METHODS))
    def test_tolerance_zero_runs_all_rounds(self, easy_claims, name):
        method_cls, _tolerance = FIXED_POINT_METHODS[name]
        method = method_cls(tolerance=0.0, max_iterations=7)
        result = method.fuse(easy_claims)
        assert result.iterations == 7
        assert result.converged_at is None

    def test_vote_does_not_iterate(self, easy_claims):
        result = Vote().fuse(easy_claims)
        assert result.converged_at is None

    @pytest.mark.parametrize("compiled", [True, False])
    def test_compiled_and_legacy_agree_on_round(
        self, easy_claims, compiled
    ):
        result = Accu(compiled=compiled).fuse(easy_claims)
        reference = Accu(compiled=not compiled).fuse(easy_claims)
        assert result.converged_at == reference.converged_at
