"""Unit tests for the malformed-record quarantine sink."""

import pytest

from repro.core.quarantine import Quarantine, guard_records
from repro.errors import QuarantineOverflowError
from repro.faults import FaultPlan


class TestQuarantine:
    def test_divert_counts_per_source(self):
        quarantine = Quarantine()
        quarantine.divert("dom", "<broken>")
        quarantine.divert("dom", "<worse>")
        quarantine.divert("webtext", "")
        assert quarantine.total == 3
        assert quarantine.counts == {"dom": 2, "webtext": 1}

    def test_samples_are_bounded(self):
        quarantine = Quarantine(sample_limit=2)
        for i in range(5):
            quarantine.divert("dom", f"record-{i}")
        assert len(quarantine.samples["dom"]) == 2
        assert quarantine.counts["dom"] == 5

    def test_overflow_raises(self):
        quarantine = Quarantine(capacity=2)
        quarantine.divert("dom", "a")
        quarantine.divert("dom", "b")
        with pytest.raises(QuarantineOverflowError):
            quarantine.divert("dom", "c")

    def test_merge_folds_counts_and_respects_capacity(self):
        parent = Quarantine(capacity=10)
        child = Quarantine()
        child.divert("webtext", "x")
        child.divert("webtext", "y")
        parent.divert("dom", "z")
        parent.merge(child)
        assert parent.total == 3
        assert parent.counts == {"dom": 1, "webtext": 2}
        tight = Quarantine(capacity=1)
        tight.divert("dom", "only")
        with pytest.raises(QuarantineOverflowError):
            tight.merge(child)

    def test_caught_overflow_leaves_counters_consistent(self):
        """Regression: ``divert`` mutated counters before raising.

        Stage isolation catches the overflow and carries on, so a sink
        at capacity must stay exactly at capacity — totals, per-source
        counts and samples all unchanged — across any number of caught
        overflows.
        """
        quarantine = Quarantine(capacity=2)
        quarantine.divert("dom", "a")
        quarantine.divert("dom", "b")
        before = quarantine.to_dict()
        for _ in range(3):  # caught-and-continue, repeatedly
            with pytest.raises(QuarantineOverflowError):
                quarantine.divert("webtext", "overflowing")
        assert quarantine.to_dict() == before
        assert quarantine.total == quarantine.capacity
        assert "webtext" not in quarantine.counts
        assert "webtext" not in quarantine.samples

    def test_caught_merge_overflow_leaves_parent_unchanged(self):
        parent = Quarantine(capacity=3)
        parent.divert("dom", "a")
        parent.divert("dom", "b")
        child = Quarantine()
        child.divert("webtext", "x")
        child.divert("webtext", "y")
        before = parent.to_dict()
        with pytest.raises(QuarantineOverflowError):
            parent.merge(child)
        assert parent.to_dict() == before
        # A merge that fits still works afterwards.
        small = Quarantine()
        small.divert("webtext", "z")
        parent.merge(small)
        assert parent.total == 3

    def test_to_dict_is_sorted_and_json_shaped(self):
        quarantine = Quarantine()
        quarantine.divert("webtext", "w")
        quarantine.divert("dom", "d")
        snapshot = quarantine.to_dict()
        assert list(snapshot["counts"]) == ["dom", "webtext"]
        assert snapshot["total"] == 2
        assert all(
            isinstance(examples, list)
            for examples in snapshot["samples"].values()
        )


class TestGuardRecords:
    def test_valid_records_pass_through_in_order(self):
        quarantine = Quarantine()
        records = ["a", "b", "c"]
        clean = guard_records(
            records, lambda r: isinstance(r, str), quarantine, "dom"
        )
        assert clean == records
        assert quarantine.total == 0

    def test_invalid_records_are_diverted(self):
        quarantine = Quarantine()
        clean = guard_records(
            ["a", None, "b", 7], lambda r: isinstance(r, str),
            quarantine, "dom",
        )
        assert clean == ["a", "b"]
        assert quarantine.counts == {"dom": 2}

    def test_injected_corruption_is_diverted_with_reason(self):
        plan = FaultPlan(seed=3).corrupt("records:dom", index=1)
        quarantine = Quarantine()
        clean = guard_records(
            ["a", "b", "c"], lambda r: isinstance(r, str), quarantine,
            "dom", plan=plan, scope="records:dom",
        )
        assert clean == ["a", "c"]
        assert quarantine.counts == {"dom": 1}
        assert quarantine.samples["dom"][0].startswith("injected-corruption")

    def test_start_index_addresses_later_slices(self):
        plan = FaultPlan(seed=3).corrupt("records:dom", index=10)
        quarantine = Quarantine()
        clean = guard_records(
            ["a", "b"], lambda r: True, quarantine, "dom",
            plan=plan, scope="records:dom", start_index=9,
        )
        assert clean == ["a"]
