"""Unit tests for the malformed-record quarantine sink."""

import pytest

from repro.core.quarantine import Quarantine, guard_records
from repro.errors import QuarantineOverflowError
from repro.faults import FaultPlan


class TestQuarantine:
    def test_divert_counts_per_source(self):
        quarantine = Quarantine()
        quarantine.divert("dom", "<broken>")
        quarantine.divert("dom", "<worse>")
        quarantine.divert("webtext", "")
        assert quarantine.total == 3
        assert quarantine.counts == {"dom": 2, "webtext": 1}

    def test_samples_are_bounded(self):
        quarantine = Quarantine(sample_limit=2)
        for i in range(5):
            quarantine.divert("dom", f"record-{i}")
        assert len(quarantine.samples["dom"]) == 2
        assert quarantine.counts["dom"] == 5

    def test_overflow_raises(self):
        quarantine = Quarantine(capacity=2)
        quarantine.divert("dom", "a")
        quarantine.divert("dom", "b")
        with pytest.raises(QuarantineOverflowError):
            quarantine.divert("dom", "c")

    def test_merge_folds_counts_and_respects_capacity(self):
        parent = Quarantine(capacity=10)
        child = Quarantine()
        child.divert("webtext", "x")
        child.divert("webtext", "y")
        parent.divert("dom", "z")
        parent.merge(child)
        assert parent.total == 3
        assert parent.counts == {"dom": 1, "webtext": 2}
        tight = Quarantine(capacity=1)
        tight.divert("dom", "only")
        with pytest.raises(QuarantineOverflowError):
            tight.merge(child)

    def test_caught_overflow_leaves_counters_consistent(self):
        """Regression: ``divert`` mutated counters before raising.

        Stage isolation catches the overflow and carries on, so a sink
        at capacity must stay exactly at capacity — totals, per-source
        counts and samples all unchanged — across any number of caught
        overflows.
        """
        quarantine = Quarantine(capacity=2)
        quarantine.divert("dom", "a")
        quarantine.divert("dom", "b")
        before = quarantine.to_dict()
        for _ in range(3):  # caught-and-continue, repeatedly
            with pytest.raises(QuarantineOverflowError):
                quarantine.divert("webtext", "overflowing")
        assert quarantine.to_dict() == before
        assert quarantine.total == quarantine.capacity
        assert "webtext" not in quarantine.counts
        assert "webtext" not in quarantine.samples

    def test_caught_merge_overflow_leaves_parent_unchanged(self):
        parent = Quarantine(capacity=3)
        parent.divert("dom", "a")
        parent.divert("dom", "b")
        child = Quarantine()
        child.divert("webtext", "x")
        child.divert("webtext", "y")
        before = parent.to_dict()
        with pytest.raises(QuarantineOverflowError):
            parent.merge(child)
        assert parent.to_dict() == before
        # A merge that fits still works afterwards.
        small = Quarantine()
        small.divert("webtext", "z")
        parent.merge(small)
        assert parent.total == 3

    def test_to_dict_is_sorted_and_json_shaped(self):
        quarantine = Quarantine()
        quarantine.divert("webtext", "w")
        quarantine.divert("dom", "d")
        snapshot = quarantine.to_dict()
        assert list(snapshot["counts"]) == ["dom", "webtext"]
        assert snapshot["total"] == 2
        assert all(
            isinstance(examples, list)
            for examples in snapshot["samples"].values()
        )
        # No dead-letter hold in use -> report bytes unchanged.
        assert "held" not in snapshot


class TestDeadLetterHold:
    def test_retained_records_are_listable_and_inspectable(self):
        quarantine = Quarantine()
        quarantine.divert("stream", {"id": 1}, reason="poison", retain=True)
        quarantine.divert("stream", {"id": 2}, reason="poison", retain=True)
        quarantine.divert("dom", "broken")  # not retained

        held = quarantine.held_items()
        assert [(source, record) for source, _r, record in held] == [
            ("stream", {"id": 1}), ("stream", {"id": 2}),
        ]
        assert all(reason == "poison" for _s, reason, _r in held)
        assert quarantine.held_items("dom") == []
        # Inspection is non-destructive.
        assert len(quarantine.held_items("stream")) == 2

    def test_drain_pops_exactly_once(self):
        quarantine = Quarantine()
        quarantine.divert("stream", "delta-a", reason="poison", retain=True)
        quarantine.divert("stream", "delta-b", reason="poison", retain=True)

        assert quarantine.drain("stream") == ["delta-a", "delta-b"]
        assert quarantine.drain("stream") == []
        assert quarantine.held_items("stream") == []
        # Diversion accounting survives the drain.
        assert quarantine.counts == {"stream": 2}
        assert quarantine.total == 2

    def test_merge_carries_held_records(self):
        parent = Quarantine()
        child = Quarantine()
        child.divert("stream", "delta", reason="poison", retain=True)
        parent.merge(child)
        assert parent.drain("stream") == ["delta"]

    def test_to_dict_reports_held_counts_when_in_use(self):
        quarantine = Quarantine()
        quarantine.divert("stream", "delta", reason="poison", retain=True)
        assert quarantine.to_dict()["held"] == {"stream": 1}

    def test_drain_entries_keeps_reasons(self):
        quarantine = Quarantine()
        quarantine.divert("stream", "delta-a", reason="poison", retain=True)
        quarantine.divert("stream", "delta-b", reason="worse", retain=True)
        assert quarantine.drain_entries("stream") == [
            ("poison", "delta-a"), ("worse", "delta-b"),
        ]
        assert quarantine.drain_entries("stream") == []

    def test_repark_restores_order_without_recounting(self):
        # A drain that could not complete (backpressure mid-requeue)
        # re-parks its unprocessed tail; the entries must come back
        # ahead of anything diverted meanwhile and must not be
        # double-counted as new diversions.
        quarantine = Quarantine()
        quarantine.divert("stream", "delta-a", reason="poison", retain=True)
        quarantine.divert("stream", "delta-b", reason="poison", retain=True)

        entries = quarantine.drain_entries("stream")
        quarantine.divert("stream", "delta-c", reason="poison", retain=True)
        quarantine.repark("stream", entries[1:])  # delta-a was processed

        assert [r for _s, _reason, r in quarantine.held_items("stream")] == [
            "delta-b", "delta-c",
        ]
        assert quarantine.total == 3  # repark is not a new failure
        assert quarantine.counts == {"stream": 3}

    def test_repark_of_nothing_is_a_noop(self):
        quarantine = Quarantine()
        quarantine.repark("stream", [])
        assert quarantine.held_items("stream") == []


class TestGuardRecords:
    def test_valid_records_pass_through_in_order(self):
        quarantine = Quarantine()
        records = ["a", "b", "c"]
        clean = guard_records(
            records, lambda r: isinstance(r, str), quarantine, "dom"
        )
        assert clean == records
        assert quarantine.total == 0

    def test_invalid_records_are_diverted(self):
        quarantine = Quarantine()
        clean = guard_records(
            ["a", None, "b", 7], lambda r: isinstance(r, str),
            quarantine, "dom",
        )
        assert clean == ["a", "b"]
        assert quarantine.counts == {"dom": 2}

    def test_injected_corruption_is_diverted_with_reason(self):
        plan = FaultPlan(seed=3).corrupt("records:dom", index=1)
        quarantine = Quarantine()
        clean = guard_records(
            ["a", "b", "c"], lambda r: isinstance(r, str), quarantine,
            "dom", plan=plan, scope="records:dom",
        )
        assert clean == ["a", "c"]
        assert quarantine.counts == {"dom": 1}
        assert quarantine.samples["dom"][0].startswith("injected-corruption")

    def test_start_index_addresses_later_slices(self):
        plan = FaultPlan(seed=3).corrupt("records:dom", index=10)
        quarantine = Quarantine()
        clean = guard_records(
            ["a", "b"], lambda r: True, quarantine, "dom",
            plan=plan, scope="records:dom", start_index=9,
        )
        assert clean == ["a"]
