"""Unit tests for freshness/staleness metrics."""

import pytest

from repro.evalx.freshness import freshness_report, truth_metrics

ITEM_A = ("a", "attr")
ITEM_B = ("b", "attr")
ITEM_C = ("c", "attr")


class TestTruthMetrics:
    def test_exact_match(self):
        truth = {ITEM_A: {"x"}, ITEM_B: {"y"}}
        metrics = truth_metrics(truth, truth)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_partial_overlap(self):
        decided = {ITEM_A: {"x"}, ITEM_B: {"wrong"}}
        truth = {ITEM_A: {"x"}, ITEM_B: {"y"}, ITEM_C: {"z"}}
        metrics = truth_metrics(decided, truth)
        assert metrics.true_positives == 1
        assert metrics.false_positives == 1
        assert metrics.false_negatives == 2
        assert metrics.precision == pytest.approx(0.5)
        assert metrics.recall == pytest.approx(1 / 3)

    def test_empty_sides(self):
        assert truth_metrics({}, {}).f1 == 0.0
        assert truth_metrics({}, {ITEM_A: {"x"}}).false_negatives == 1
        assert truth_metrics({ITEM_A: {"x"}}, {}).false_positives == 1


class TestFreshnessReport:
    def test_fresh_version_has_no_staleness(self):
        truth = {ITEM_A: {"x"}}
        report = freshness_report(
            truth,
            served_epoch=3,
            current_epoch=3,
            served_truth=truth,
            current_truth=truth,
        )
        assert report.lag_epochs == 0
        assert report.staleness == 0.0
        assert report.vs_served.f1 == 1.0
        assert report.vs_current.f1 == 1.0

    def test_drifted_value_counts_as_stale(self):
        # Served truth said x; the world moved on to x2.  The served
        # verdict is right for its epoch, wrong now.
        decided = {ITEM_A: {"x"}, ITEM_B: {"y"}}
        served_truth = {ITEM_A: {"x"}, ITEM_B: {"y"}}
        current_truth = {ITEM_A: {"x2"}, ITEM_B: {"y"}}
        report = freshness_report(
            decided,
            served_epoch=2,
            current_epoch=4,
            served_truth=served_truth,
            current_truth=current_truth,
        )
        assert report.lag_epochs == 2
        assert report.stale_items == 1
        assert report.staleness == pytest.approx(0.5)
        assert report.vs_served.f1 == 1.0
        assert report.vs_current.f1 < 1.0

    def test_dead_item_counts_as_stale(self):
        # The entity died: right for its epoch, absent from truth now.
        decided = {ITEM_A: {"x"}}
        report = freshness_report(
            decided,
            served_epoch=1,
            current_epoch=2,
            served_truth={ITEM_A: {"x"}},
            current_truth={},
        )
        assert report.stale_items == 1
        assert report.staleness == 1.0

    def test_wrong_then_is_not_stale(self):
        # A verdict wrong for its own epoch is a fusion error, not a
        # staleness casualty.
        decided = {ITEM_A: {"bogus"}}
        report = freshness_report(
            decided,
            served_epoch=1,
            current_epoch=2,
            served_truth={ITEM_A: {"x"}},
            current_truth={ITEM_A: {"y"}},
        )
        assert report.stale_items == 0
        assert report.vs_served.precision == 0.0

    def test_json_shape(self):
        report = freshness_report(
            {ITEM_A: {"x"}},
            served_epoch=1,
            current_epoch=3,
            served_truth={ITEM_A: {"x"}},
            current_truth={ITEM_A: {"x"}},
        )
        payload = report.to_json_dict()
        assert payload["lag_epochs"] == 2
        assert set(payload["vs_served"]) == {"precision", "recall", "f1"}
        assert payload["decided_items"] == 1
