"""Unit tests for the local MapReduce engine."""

import pytest

from repro.errors import ReproError
from repro.mapreduce.engine import MapReduceJob, Pipeline, word_count


class TestWordCount:
    def test_counts(self):
        counts = word_count(["a b a", "b c", "A"])
        assert counts == {"a": 3, "b": 2, "c": 1}

    def test_empty_input(self):
        assert word_count([]) == {}


class TestJobMechanics:
    def test_bad_partitions_rejected(self):
        with pytest.raises(ReproError):
            MapReduceJob(lambda x: [], lambda k, v: [], partitions=0)

    def test_partition_count_does_not_change_result(self):
        documents = [f"w{i % 5} w{i % 3}" for i in range(50)]
        results = []
        for partitions in (1, 3, 7):
            job = MapReduceJob(
                lambda doc: [(word, 1) for word in doc.split()],
                lambda word, counts: [(word, sum(counts))],
                partitions=partitions,
            )
            results.append(dict(job.run(documents)))
        assert results[0] == results[1] == results[2]

    def test_combiner_preserves_result(self):
        documents = [f"w{i % 5}" for i in range(40)]
        plain = MapReduceJob(
            lambda doc: [(word, 1) for word in doc.split()],
            lambda word, counts: [(word, sum(counts))],
        )
        combined = MapReduceJob(
            lambda doc: [(word, 1) for word in doc.split()],
            lambda word, counts: [(word, sum(counts))],
            combiner=lambda word, counts: [sum(counts)],
        )
        assert dict(plain.run(documents)) == dict(combined.run(documents))

    def test_combiner_reduces_shuffle_volume(self):
        documents = ["x x x x"] * 10
        job = MapReduceJob(
            lambda doc: [(word, 1) for word in doc.split()],
            lambda word, counts: [(word, sum(counts))],
            combiner=lambda word, counts: [sum(counts)],
            partitions=2,
        )
        job.run(documents)
        assert job.stats.map_output_records == 40
        assert job.stats.combine_output_records == 2

    def test_stats_populated(self):
        job = MapReduceJob(
            lambda doc: [(word, 1) for word in doc.split()],
            lambda word, counts: [(word, sum(counts))],
        )
        job.run(["a b", "a"])
        assert job.stats.input_records == 2
        assert job.stats.map_output_records == 3
        assert job.stats.reduce_groups == 2
        assert job.stats.output_records == 2

    def test_deterministic_output_order(self):
        job = MapReduceJob(
            lambda record: [(record, 1)],
            lambda key, values: [key],
        )
        assert job.run(["b", "a", "c"]) == ["a", "b", "c"]

    def test_mapper_emitting_nothing(self):
        job = MapReduceJob(lambda record: [], lambda key, values: [key])
        assert job.run(["x", "y"]) == []


class TestPipeline:
    def test_chained_jobs(self):
        # Job 1: word counts; job 2: bucket counts by parity.
        count_job = MapReduceJob(
            lambda doc: [(word, 1) for word in doc.split()],
            lambda word, counts: [(word, sum(counts))],
        )
        parity_job = MapReduceJob(
            lambda pair: [(pair[1] % 2, 1)],
            lambda parity, ones: [(parity, sum(ones))],
        )
        pipeline = Pipeline().add(count_job).add(parity_job)
        result = dict(pipeline.run(["a a b", "c"]))
        assert result == {0: 1, 1: 2}

    def test_empty_pipeline_passthrough(self):
        assert Pipeline().run([1, 2, 3]) == [1, 2, 3]


def _word_mapper(doc):
    return [(word, 1) for word in doc.split()]


def _sum_reducer(word, counts):
    return [(word, sum(counts))]


class TestJobMetrics:
    def test_run_publishes_jobstats_counters(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        job = MapReduceJob(
            _word_mapper, _sum_reducer, metrics=registry
        )
        job.run(["a b a", "b c"])
        counters = registry.snapshot().counters
        assert counters["mapreduce_jobs_total"] == 1
        assert counters["mapreduce_input_records_total"] == 2
        assert counters["mapreduce_map_output_records_total"] == 5
        assert counters["mapreduce_reduce_groups_total"] == 3
        assert counters["mapreduce_output_records_total"] == 3

    def test_counters_accumulate_across_runs(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        job = MapReduceJob(
            _word_mapper, _sum_reducer, metrics=registry
        )
        job.run(["a"])
        job.run(["b b"])
        counters = registry.snapshot().counters
        assert counters["mapreduce_jobs_total"] == 2
        assert counters["mapreduce_input_records_total"] == 2
        assert counters["mapreduce_map_output_records_total"] == 3

    def test_guarded_path_counts_waves_and_retries(self):
        from repro.faults import FaultPlan
        from repro.mapreduce.engine import RetryPolicy
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        plan = FaultPlan(seed=1).crash("map", index=0, attempts=1)
        job = MapReduceJob(
            _word_mapper,
            _sum_reducer,
            partitions=2,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            fault_plan=plan,
            metrics=registry,
        )
        job.run(["a b", "c d"])
        snapshot = registry.snapshot()
        # Wave 1 runs both scopes' tasks; the injected crash forces a
        # second map wave.
        assert snapshot.counters["mapreduce_waves_total{scope=map}"] == 2
        assert snapshot.counters["mapreduce_waves_total{scope=reduce}"] == 1
        assert snapshot.counters["mapreduce_retries_total"] == 1
        assert (
            snapshot.counters["mapreduce_attempts_total"]
            == job.stats.attempts
        )
        waves = snapshot.histograms["mapreduce_wave_seconds{scope=map}"]
        assert waves.count == 2

    def test_stats_published_even_when_the_job_dies(self):
        from repro.errors import RetryExhaustedError
        from repro.faults import FaultPlan
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        plan = FaultPlan(seed=1).crash("map", index=0, attempts=0)
        job = MapReduceJob(
            _word_mapper, _sum_reducer, fault_plan=plan, metrics=registry
        )
        with pytest.raises(RetryExhaustedError):
            job.run(["a b"])
        counters = registry.snapshot().counters
        assert counters["mapreduce_jobs_total"] == 1
        assert counters["mapreduce_attempts_total"] >= 1
