"""Multiprocess MapReduce: equivalence with the serial executor.

The engine guarantees that the ``"process"`` executor produces output
*identical* to ``"serial"`` regardless of worker count or partitioning
(deterministic shuffle + key-ordered reduce).  These tests pin the
guarantee for the fusion jobs the paper scales out — VOTE and ACCU —
across 1/2/4 workers and 1/4/16 partitions, plus the engine-level
mechanics (stats merging, picklability errors, chunked dispatch).
"""

import pytest

from repro.errors import ReproError
from repro.mapreduce.engine import MapReduceJob, word_count
from repro.mapreduce.jobs import mr_accu, mr_vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world

WORKER_COUNTS = [1, 2, 4]
PARTITION_COUNTS = [1, 4, 16]


@pytest.fixture(scope="module")
def claims():
    world = generate_claim_world(
        ClaimWorldConfig(seed=47, n_items=60, n_sources=8)
    )
    return world.claims


@pytest.fixture(scope="module")
def serial_vote(claims):
    """Serial VOTE per partition count.

    Partitioning itself can perturb float aggregation at ULP level
    (the combiner changes summation order), so the executor guarantee
    is: process output is identical to serial output *for the same
    partitioning*, at any worker count.
    """
    return {
        partitions: mr_vote(claims, partitions=partitions)
        for partitions in PARTITION_COUNTS
    }


@pytest.fixture(scope="module")
def serial_accu(claims):
    return {
        partitions: mr_accu(claims, rounds=4, partitions=partitions)
        for partitions in PARTITION_COUNTS
    }


def _fusion_state(result):
    """Everything a fusion result decides, in comparable form."""
    return (
        result.truths,
        result.belief,
        result.source_quality,
        result.iterations,
    )


def _canonical_bytes(result) -> bytes:
    """A canonical byte serialization of a fusion result's decisions."""
    return repr(
        (
            sorted((item, sorted(values)) for item, values in
                   result.truths.items()),
            sorted(result.belief.items()),
            sorted(result.source_quality.items()),
        )
    ).encode()


class TestVoteEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    def test_identical_to_serial(
        self, claims, serial_vote, workers, partitions
    ):
        serial = serial_vote[partitions]
        parallel = mr_vote(
            claims,
            partitions=partitions,
            executor="process",
            max_workers=workers,
        )
        assert _fusion_state(parallel) == _fusion_state(serial)
        # Byte-identical fused state on a canonical serialization
        # (pickle bytes can differ for equal graphs: object sharing is
        # lost at the process boundary and pickle memoizes it).
        assert _canonical_bytes(parallel) == _canonical_bytes(serial)


class TestAccuEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    def test_identical_to_serial(
        self, claims, serial_accu, workers, partitions
    ):
        parallel = mr_accu(
            claims,
            rounds=4,
            partitions=partitions,
            executor="process",
            max_workers=workers,
        )
        assert _fusion_state(parallel) == _fusion_state(
            serial_accu[partitions]
        )


class TestEngineMechanics:
    def test_word_count_process_executor(self):
        documents = ["a b a", "b c", "A"]
        assert word_count(
            documents, executor="process", max_workers=2
        ) == word_count(documents)

    def test_output_order_identical(self):
        documents = [f"w{i % 7} w{i % 3}" for i in range(40)]

        def jobs():
            for executor, workers in (("serial", None), ("process", 2)):
                yield MapReduceJob(
                    _split_mapper,
                    _count_reducer,
                    partitions=5,
                    executor=executor,
                    max_workers=workers,
                )

        serial_job, process_job = jobs()
        assert serial_job.run(documents) == process_job.run(documents)

    def test_stats_merged_across_workers(self):
        documents = ["x y", "x", "y z w"]
        serial_job = MapReduceJob(_split_mapper, _count_reducer)
        process_job = MapReduceJob(
            _split_mapper,
            _count_reducer,
            executor="process",
            max_workers=2,
        )
        serial_job.run(documents)
        process_job.run(documents)
        assert process_job.stats == serial_job.stats
        assert process_job.stats.input_records == 3
        assert process_job.stats.map_output_records == 6

    def test_combiner_stats_under_process_executor(self):
        documents = ["x x x x"] * 10
        job = MapReduceJob(
            _split_mapper,
            _count_reducer,
            combiner=_sum_combiner,
            partitions=2,
            executor="process",
            max_workers=2,
        )
        job.run(documents)
        assert job.stats.map_output_records == 40
        assert job.stats.combine_output_records == 2

    def test_unpicklable_job_raises_clear_error(self):
        job = MapReduceJob(
            lambda record: [(record, 1)],
            lambda key, values: [key],
            executor="process",
            max_workers=2,
        )
        with pytest.raises(ReproError, match="picklable"):
            job.run(["a"])

    def test_bad_executor_rejected(self):
        with pytest.raises(ReproError, match="executor"):
            MapReduceJob(
                _split_mapper, _count_reducer, executor="threads"
            )

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ReproError, match="max_workers"):
            MapReduceJob(
                _split_mapper, _count_reducer, max_workers=0
            )

    def test_empty_input_process_executor(self):
        job = MapReduceJob(
            _split_mapper,
            _count_reducer,
            executor="process",
            max_workers=2,
        )
        assert job.run([]) == []


def _split_mapper(doc):
    return [(word, 1) for word in doc.split()]


def _count_reducer(word, counts):
    return [(word, sum(counts))]


def _sum_combiner(_word, counts):
    return [sum(counts)]
