"""Unit tests for the deterministic fault-injection plans."""

import pickle

import pytest

from repro.faults import CorruptedRecord, FaultPlan, FaultSpec, InjectedFault


class TestFaultSpec:
    def test_transient_crash_matches_only_early_attempts(self):
        spec = FaultSpec("crash", "map", index=1, attempts=2)
        assert spec.matches("map", 1, 0)
        assert spec.matches("map", 1, 1)
        assert not spec.matches("map", 1, 2)

    def test_permanent_fault_matches_every_attempt(self):
        spec = FaultSpec("crash", "map", index=0, attempts=0)
        assert all(spec.matches("map", 0, attempt) for attempt in range(10))

    def test_index_none_matches_every_task(self):
        spec = FaultSpec("slow", "reduce", index=None, seconds=5.0)
        assert spec.matches("reduce", 0, 0)
        assert spec.matches("reduce", 17, 0)

    def test_scope_mismatch_never_matches(self):
        spec = FaultSpec("crash", "map", index=0)
        assert not spec.matches("reduce", 0, 0)


class TestFaultPlanHooks:
    def test_crash_raises_injected_fault(self):
        plan = FaultPlan(seed=1).crash("map", index=2)
        with pytest.raises(InjectedFault):
            plan.task_delay("map", 2, 0)

    def test_crash_is_transient_by_default(self):
        plan = FaultPlan(seed=1).crash("map", index=2)
        with pytest.raises(InjectedFault):
            plan.task_delay("map", 2, 0)
        assert plan.task_delay("map", 2, 1) == 0.0

    def test_slow_sums_injected_seconds_without_sleeping(self):
        plan = (
            FaultPlan(seed=1)
            .slow("stage:dom-extraction", seconds=30.0)
            .slow("stage:dom-extraction", seconds=12.5)
        )
        assert plan.task_delay("stage:dom-extraction", 0, 0) == 42.5
        assert plan.task_delay("stage:webtext-extraction", 0, 0) == 0.0

    def test_corrupt_record_replaces_only_target_index(self):
        plan = FaultPlan(seed=5).corrupt("records:querystream", index=3)
        clean = plan.corrupt_record("records:querystream", 2, "fine")
        corrupted = plan.corrupt_record("records:querystream", 3, "doomed")
        assert clean == "fine"
        assert isinstance(corrupted, CorruptedRecord)
        assert corrupted.original_repr == "'doomed'"

    def test_corruption_garbage_is_seeded_and_deterministic(self):
        first = FaultPlan(seed=5).corrupt("records:dom", index=1)
        second = FaultPlan(seed=5).corrupt("records:dom", index=1)
        other_seed = FaultPlan(seed=6).corrupt("records:dom", index=1)
        a = first.corrupt_record("records:dom", 1, object())
        b = second.corrupt_record("records:dom", 1, object())
        c = other_seed.corrupt_record("records:dom", 1, object())
        assert a.garbage == b.garbage
        assert a.garbage != c.garbage

    def test_hooks_never_mutate_the_plan(self):
        plan = FaultPlan(seed=1).crash("map", index=0).corrupt(
            "records:dom", index=0
        )
        before = list(plan.specs)
        with pytest.raises(InjectedFault):
            plan.task_delay("map", 0, 0)
        plan.task_delay("map", 0, 5)
        plan.corrupt_record("records:dom", 0, "x")
        assert plan.specs == before

    def test_plan_is_picklable(self):
        plan = (
            FaultPlan(seed=9)
            .crash("map", index=0, attempts=2)
            .slow("reduce", seconds=1.0, index=None)
            .corrupt("records:webtext", index=4)
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs
        assert clone.seed == plan.seed
        with pytest.raises(InjectedFault):
            clone.task_delay("map", 0, 1)
