"""Unit tests for attribute resolution (misspellings/synonyms/sub-attrs)."""

from repro.entity.resolution import (
    AttributeResolver,
    apply_resolution,
    build_value_profiles,
)
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


def claim(subject, predicate, value):
    return ScoredTriple(
        Triple(subject, predicate, Value(value)), Provenance("s", "e")
    )


class TestMisspellingMerge:
    def test_typo_maps_to_supported_name(self):
        resolver = AttributeResolver(
            "Book", {"price": 20, "pricce": 2}
        )
        resolution = resolver.run()
        assert resolution.canonical_map == {"pricce": "price"}

    def test_support_decides_direction(self):
        resolver = AttributeResolver("Book", {"pricce": 20, "price": 2})
        resolution = resolver.run()
        # Higher support wins even when it is the typo (garbage in...).
        assert resolution.canonical_map == {"price": "pricce"}

    def test_distant_names_not_merged(self):
        resolver = AttributeResolver(
            "Book", {"price": 10, "publisher": 10}
        )
        assert not resolver.run().canonical_map


class TestSynonymMerge:
    def test_token_permutation(self):
        resolver = AttributeResolver(
            "Book", {"publication date": 10, "date of publication": 3}
        )
        resolution = resolver.run()
        assert resolution.canonical_map == {
            "date of publication": "publication date"
        }

    def test_qualifier_prefix(self):
        resolver = AttributeResolver(
            "Book", {"publisher": 10, "official publisher": 2}
        )
        resolution = resolver.run()
        assert resolution.canonical_map == {
            "official publisher": "publisher"
        }

    def test_qualifier_suffix(self):
        resolver = AttributeResolver(
            "Book", {"price": 10, "price of record": 2}
        )
        assert resolver.run().canonical_map == {"price of record": "price"}


class TestValueProfileMerge:
    def test_identical_profiles_merge(self):
        profiles = {
            "writer": {("b1", "jane"), ("b2", "tom"), ("b3", "amy")},
            "scribbler": {("b1", "jane"), ("b2", "tom"), ("b3", "amy")},
        }
        resolver = AttributeResolver(
            "Book", {"writer": 10, "scribbler": 2}, profiles
        )
        assert resolver.run().canonical_map == {"scribbler": "writer"}

    def test_disjoint_profiles_stay_apart(self):
        profiles = {
            "writer": {("b1", "jane")},
            "painter": {("b2", "tom")},
        }
        resolver = AttributeResolver(
            "Book", {"writer": 10, "painter": 2}, profiles
        )
        assert not resolver.run().canonical_map


class TestSubAttributes:
    def test_specialising_modifier_recorded_not_merged(self):
        resolver = AttributeResolver(
            "University", {"library": 10, "main library": 4}
        )
        resolution = resolver.run()
        assert "main library" not in resolution.canonical_map
        assert resolution.sub_attributes == {"main library": "library"}

    def test_no_parent_no_subattribute(self):
        resolver = AttributeResolver("University", {"main gate": 4})
        assert not resolver.run().sub_attributes


class TestApplyResolution:
    def test_predicates_rewritten(self):
        resolver = AttributeResolver("Book", {"price": 10, "pricce": 2})
        resolutions = {"Book": resolver.run()}
        triples = [claim("book/1", "pricce", "9"), claim("book/1", "price", "9")]
        rewritten = apply_resolution(
            triples, resolutions, lambda subject: "Book"
        )
        assert {t.triple.predicate for t in rewritten} == {"price"}

    def test_unknown_class_passthrough(self):
        resolver = AttributeResolver("Book", {"price": 10, "pricce": 2})
        resolutions = {"Book": resolver.run()}
        triples = [claim("x/1", "pricce", "9")]
        rewritten = apply_resolution(
            triples, resolutions, lambda subject: None
        )
        assert rewritten[0].triple.predicate == "pricce"


class TestBuildValueProfiles:
    def test_profiles_casefold_values(self):
        profiles = build_value_profiles(
            [claim("b1", "author", "Jane"), claim("b2", "author", "JANE")]
        )
        assert profiles["author"] == {("b1", "jane"), ("b2", "jane")}
