"""Unit tests for attribute resolution (misspellings/synonyms/sub-attrs)."""

from repro.entity.resolution import (
    AttributeResolver,
    apply_resolution,
    build_value_profiles,
)
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


def claim(subject, predicate, value):
    return ScoredTriple(
        Triple(subject, predicate, Value(value)), Provenance("s", "e")
    )


class TestMisspellingMerge:
    def test_typo_maps_to_supported_name(self):
        resolver = AttributeResolver(
            "Book", {"price": 20, "pricce": 2}
        )
        resolution = resolver.run()
        assert resolution.canonical_map == {"pricce": "price"}

    def test_support_decides_direction(self):
        resolver = AttributeResolver("Book", {"pricce": 20, "price": 2})
        resolution = resolver.run()
        # Higher support wins even when it is the typo (garbage in...).
        assert resolution.canonical_map == {"price": "pricce"}

    def test_distant_names_not_merged(self):
        resolver = AttributeResolver(
            "Book", {"price": 10, "publisher": 10}
        )
        assert not resolver.run().canonical_map


class TestSynonymMerge:
    def test_token_permutation(self):
        resolver = AttributeResolver(
            "Book", {"publication date": 10, "date of publication": 3}
        )
        resolution = resolver.run()
        assert resolution.canonical_map == {
            "date of publication": "publication date"
        }

    def test_qualifier_prefix(self):
        resolver = AttributeResolver(
            "Book", {"publisher": 10, "official publisher": 2}
        )
        resolution = resolver.run()
        assert resolution.canonical_map == {
            "official publisher": "publisher"
        }

    def test_qualifier_suffix(self):
        resolver = AttributeResolver(
            "Book", {"price": 10, "price of record": 2}
        )
        assert resolver.run().canonical_map == {"price of record": "price"}


class TestValueProfileMerge:
    def test_identical_profiles_merge(self):
        profiles = {
            "writer": {("b1", "jane"), ("b2", "tom"), ("b3", "amy")},
            "scribbler": {("b1", "jane"), ("b2", "tom"), ("b3", "amy")},
        }
        resolver = AttributeResolver(
            "Book", {"writer": 10, "scribbler": 2}, profiles
        )
        assert resolver.run().canonical_map == {"scribbler": "writer"}

    def test_disjoint_profiles_stay_apart(self):
        profiles = {
            "writer": {("b1", "jane")},
            "painter": {("b2", "tom")},
        }
        resolver = AttributeResolver(
            "Book", {"writer": 10, "painter": 2}, profiles
        )
        assert not resolver.run().canonical_map


class TestSubAttributes:
    def test_specialising_modifier_recorded_not_merged(self):
        resolver = AttributeResolver(
            "University", {"library": 10, "main library": 4}
        )
        resolution = resolver.run()
        assert "main library" not in resolution.canonical_map
        assert resolution.sub_attributes == {"main library": "library"}

    def test_no_parent_no_subattribute(self):
        resolver = AttributeResolver("University", {"main gate": 4})
        assert not resolver.run().sub_attributes


class TestApplyResolution:
    def test_predicates_rewritten(self):
        resolver = AttributeResolver("Book", {"price": 10, "pricce": 2})
        resolutions = {"Book": resolver.run()}
        triples = [claim("book/1", "pricce", "9"), claim("book/1", "price", "9")]
        rewritten = apply_resolution(
            triples, resolutions, lambda subject: "Book"
        )
        assert {t.triple.predicate for t in rewritten} == {"price"}

    def test_unknown_class_passthrough(self):
        resolver = AttributeResolver("Book", {"price": 10, "pricce": 2})
        resolutions = {"Book": resolver.run()}
        triples = [claim("x/1", "pricce", "9")]
        rewritten = apply_resolution(
            triples, resolutions, lambda subject: None
        )
        assert rewritten[0].triple.predicate == "pricce"


class TestBuildValueProfiles:
    def test_profiles_casefold_values(self):
        profiles = build_value_profiles(
            [claim("b1", "author", "Jane"), claim("b2", "author", "JANE")]
        )
        assert profiles["author"] == {("b1", "jane"), ("b2", "jane")}


class TestBlockingEquivalence:
    """The inverted-index blocking must not change any verdict.

    A brute-force reference replays the original O(n^2) resolver —
    every variant checked against every already-accepted canonical in
    support order — and the blocked resolver must produce the exact
    same canonical map and sub-attribute table on a generated world of
    typos, permutations, qualifiers and overlapping profiles.
    """

    @staticmethod
    def _brute_force(class_name, support, profiles):
        from repro.entity.resolution import (
            AttributeResolution,
            _content_tokens,
            _specialising_parent,
            _strip_qualifiers,
        )
        from repro.textproc.normalize import is_probable_misspelling

        resolution = AttributeResolution(class_name)
        names = sorted(support, key=lambda n: (-support[n], n))
        cache = {name: _content_tokens(name) for name in names}
        helper = AttributeResolver(class_name, support, profiles)
        helper._tokens_cache = cache
        canonical = []
        for name in names:
            stripped = _strip_qualifiers(name)
            tokens = cache[name]
            profile = profiles.get(name) if profiles else None
            target = None
            for cand in canonical:
                if (
                    stripped == cand
                    or (tokens and tokens == cache[cand])
                    or (
                        abs(len(name) - len(cand)) <= 2
                        and is_probable_misspelling(
                            name, cand, normalized=True
                        )
                    )
                    or (profile and helper._profiles_match(profile, cand))
                ):
                    target = cand
                    break
            if target is None:
                parent = _specialising_parent(name)
                if parent is not None and parent in support:
                    resolution.sub_attributes[name] = parent
                canonical.append(name)
            else:
                resolution.canonical_map[name] = target
        return resolution

    @staticmethod
    def _seeded_world(seed):
        import random

        rng = random.Random(seed)
        bases = [
            "publisher", "publication date", "price", "library",
            "author name", "genre", "page count", "release year",
        ]
        variants = set()
        for base in bases:
            variants.add(base)
            variants.add("official " + base)
            variants.add(base + " of record")
            tokens = base.split()
            if len(tokens) >= 2:
                variants.add(" ".join(reversed(tokens)))
                variants.add(tokens[-1] + " of " + " ".join(tokens[:-1]))
            variants.add("main " + base)
            drop = rng.randrange(len(base))
            variants.add(base[:drop] + base[drop + 1:])
        support = {name: rng.randrange(1, 60) for name in variants}
        entities = [f"e{i}" for i in range(30)]
        profiles = {}
        for base in bases:
            pairs = {
                (rng.choice(entities), f"v{rng.randrange(40)}")
                for _ in range(12)
            }
            for name in variants:
                if base in name or name in base:
                    kept = {p for p in pairs if rng.random() < 0.8}
                    profiles.setdefault(name, set()).update(kept)
        return support, profiles

    def test_matches_brute_force_on_seeded_world(self):
        support, profiles = self._seeded_world(13)
        reference = self._brute_force("Book", support, profiles)
        blocked = AttributeResolver("Book", support, profiles).run()
        assert blocked.canonical_map == reference.canonical_map
        assert blocked.sub_attributes == reference.sub_attributes
        assert blocked.canonical_map  # the world does exercise merges

    def test_matches_brute_force_on_random_names(self):
        import random

        for seed in range(4):
            rng = random.Random(seed)
            words = ["pub", "date", "price", "lib", "name", "of", "main"]
            names = set()
            while len(names) < 60:
                names.add(
                    " ".join(
                        rng.choice(words)
                        for _ in range(rng.randrange(1, 4))
                    )
                )
            support = {name: rng.randrange(1, 40) for name in names}
            profiles = {
                name: {
                    (f"e{rng.randrange(10)}", f"v{rng.randrange(15)}")
                    for _ in range(rng.randrange(1, 8))
                }
                for name in names
                if rng.random() < 0.7
            }
            reference = self._brute_force("C", support, profiles)
            blocked = AttributeResolver("C", support, profiles).run()
            assert blocked.canonical_map == reference.canonical_map, seed
            assert blocked.sub_attributes == reference.sub_attributes, seed
