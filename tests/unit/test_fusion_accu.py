"""Unit tests for ACCU and POPACCU."""

import pytest

from repro.errors import FusionError
from repro.fusion.accu import Accu, PopAccu
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.vote import Vote
from repro.synth.claims import ClaimWorldConfig, generate_claim_world


def claim(item, value, source):
    return Claim(item, value, value, source, "ex")


def skewed_world(seed=21):
    """Sources with very unequal accuracy; VOTE struggles, ACCU should not."""
    return generate_claim_world(
        ClaimWorldConfig(
            seed=seed,
            n_items=80,
            n_sources=9,
            source_accuracies=[0.95, 0.9, 0.9, 0.45, 0.45, 0.45, 0.4, 0.4, 0.4],
            false_pool=3,
        )
    )


class TestValidation:
    def test_bad_n_false_values(self):
        with pytest.raises(FusionError):
            Accu(n_false_values=0)

    def test_bad_initial_accuracy(self):
        with pytest.raises(FusionError):
            Accu(initial_accuracy=1.0)


class TestAccu:
    def test_learns_source_accuracy(self):
        world = skewed_world()
        result = Accu().fuse(world.claims)
        learned = result.source_quality
        good = [s for s, a in world.source_accuracy.items() if a > 0.8]
        bad = [s for s, a in world.source_accuracy.items() if a < 0.5]
        avg_good = sum(learned[s] for s in good) / len(good)
        avg_bad = sum(learned[s] for s in bad) / len(bad)
        assert avg_good > avg_bad + 0.15

    def test_beats_vote_on_skewed_sources(self):
        world = skewed_world()
        vote = world.precision_of(Vote().fuse(world.claims).truths)
        accu = world.precision_of(Accu().fuse(world.claims).truths)
        assert accu > vote

    def test_single_truth_decisions(self):
        world = skewed_world()
        result = Accu().fuse(world.claims)
        assert all(len(values) == 1 for values in result.truths.values())

    def test_probabilities_normalised(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "a", "s1"),
                claim(("s", "p"), "b", "s2"),
            ]
        )
        result = Accu().fuse(claims)
        total = sum(
            belief
            for (item, _), belief in result.belief.items()
            if item == ("s", "p")
        )
        assert total == pytest.approx(1.0)

    def test_initial_accuracies_respected(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "a", "trusted"),
                claim(("s", "p"), "b", "shaky"),
            ]
        )
        result = Accu(
            initial_accuracies={"trusted": 0.95, "shaky": 0.1},
            max_iterations=1,
        ).fuse(claims)
        assert result.truths[("s", "p")] == {"a"}

    def test_source_weights_discount(self):
        claims = ClaimSet(
            [
                claim(("s", "p"), "a", "w1"),
                claim(("s", "p"), "b", "c1"),
                claim(("s", "p"), "b", "c2"),
                claim(("s", "p"), "b", "c3"),
            ]
        )
        weights = {"c1": 0.2, "c2": 0.2, "c3": 0.2, "w1": 1.0}
        result = Accu(source_weights=weights, max_iterations=1).fuse(claims)
        assert result.truths[("s", "p")] == {"a"}

    def test_converges(self):
        world = skewed_world()
        result = Accu(max_iterations=50).fuse(world.claims)
        assert result.iterations < 50

    def test_accuracy_bounds_clamped(self):
        world = skewed_world()
        result = Accu().fuse(world.claims)
        assert all(0.05 <= a <= 0.99 for a in result.source_quality.values())


class TestPopAccu:
    def test_beats_vote_on_skewed_sources(self):
        world = skewed_world(seed=5)
        vote = world.precision_of(Vote().fuse(world.claims).truths)
        popaccu = world.precision_of(PopAccu().fuse(world.claims).truths)
        assert popaccu >= vote

    def test_comparable_to_accu(self):
        world = skewed_world(seed=6)
        accu = world.precision_of(Accu().fuse(world.claims).truths)
        popaccu = world.precision_of(PopAccu().fuse(world.claims).truths)
        assert abs(accu - popaccu) < 0.15

    def test_empty_item_handled(self):
        claims = ClaimSet([claim(("s", "p"), "a", "s1")])
        result = PopAccu().fuse(claims)
        assert result.truths[("s", "p")] == {"a"}
