"""Unit tests for the website generator."""

import pytest

from repro.errors import GenerationError
from repro.htmldom.parser import parse_html
from repro.synth.websites import (
    LAYOUT_STYLES,
    WebsiteConfig,
    generate_websites,
)


class TestValidation:
    def test_zero_sites_rejected(self, world):
        with pytest.raises(GenerationError):
            generate_websites(world, WebsiteConfig(sites_per_class=0))

    def test_inverted_attribute_range_rejected(self, world):
        with pytest.raises(GenerationError):
            generate_websites(
                world,
                WebsiteConfig(
                    min_attributes_per_page=9, max_attributes_per_page=3
                ),
            )


class TestStructure:
    def test_sites_per_class(self, world, websites):
        by_class = {}
        for site in websites:
            by_class.setdefault(site.class_name, []).append(site)
        for class_name in world.classes():
            assert len(by_class[class_name]) == 2

    def test_styles_rotate(self, websites):
        styles = {site.style for site in websites}
        assert styles <= set(LAYOUT_STYLES)
        assert len(styles) >= 2

    def test_pages_have_entity_heading(self, websites):
        page = websites[0].pages[0]
        doc = parse_html(page.html)
        heading = doc.find("h1")
        assert heading.text_content() == page.entity_surface

    def test_pages_parse_and_contain_gold_rows(self, websites):
        for site in websites[:4]:
            for page in site.pages[:3]:
                doc = parse_html(page.html)
                text = " ".join(t.text for t in doc.iter_text_nodes())
                for mention in page.gold[:3]:
                    assert mention.value in text

    def test_urls_unique(self, websites):
        urls = [page.url for site in websites for page in site.pages]
        assert len(urls) == len(set(urls))

    def test_gold_entities_match_page(self, websites):
        for site in websites[:4]:
            for page in site.pages[:3]:
                for mention in page.gold:
                    assert mention.entity_id == page.entity_id


class TestGoldCorrectness:
    def test_value_is_true_flag(self, world, websites):
        from repro.fusion.base import value_key

        for site in websites:
            for page in site.pages:
                for mention in page.gold:
                    truths = {
                        value_key(v)
                        for v in world.true_values(
                            mention.entity_id, mention.attribute
                        )
                    }
                    # The flag records truth of the *unformatted* value;
                    # formatting variants may change case only.
                    if mention.value_is_true:
                        assert value_key(mention.value) in truths

    def test_error_rate_roughly_respected(self, world):
        sites = generate_websites(
            world,
            WebsiteConfig(
                seed=1, sites_per_class=1, pages_per_site=10, error_rate=0.0,
                label_misspell_rate=0.0, label_synonym_rate=0.0,
            ),
        )
        mentions = [m for s in sites for p in s.pages for m in p.gold]
        assert all(m.value_is_true for m in mentions)

    def test_deterministic(self, world):
        config = WebsiteConfig(seed=4, sites_per_class=1, pages_per_site=5)
        first = generate_websites(world, config)
        second = generate_websites(world, config)
        assert first[0].pages[0].html == second[0].pages[0].html
