"""Shared fixtures: a small deterministic world and derived sources.

The world is session-scoped — all read-only tests share one instance.
Tests that mutate state build their own objects.
"""

from __future__ import annotations

import pytest

from repro.extract.kb import KbExtractor, combine_kb_outputs
from repro.extract.querystream import QueryStreamExtractor
from repro.extract.seeds import build_seed_sets
from repro.synth.kb_snapshots import build_kb_pair
from repro.synth.querylog import QueryLogConfig, generate_query_log
from repro.synth.websites import WebsiteConfig, generate_websites
from repro.synth.webtext import WebTextConfig, generate_webtext
from repro.synth.world import GroundTruthWorld, WorldConfig


SMALL_WORLD_CONFIG = WorldConfig(
    seed=42,
    entities_per_class={
        "Book": 25,
        "Film": 25,
        "Country": 20,
        "University": 20,
        "Hotel": 15,
    },
    universe_sizes={
        "Book": 60,
        "Film": 70,
        "Country": 220,
        "University": 220,
        "Hotel": 120,
    },
    location_countries=6,
    location_regions=3,
    location_cities=4,
)


@pytest.fixture(scope="session")
def world() -> GroundTruthWorld:
    return GroundTruthWorld(SMALL_WORLD_CONFIG)


@pytest.fixture(scope="session")
def kb_pair(world):
    """(freebase, dbpedia) snapshots calibrated to the small world."""
    return build_kb_pair(world)


@pytest.fixture(scope="session")
def kb_outputs(kb_pair):
    freebase, dbpedia = kb_pair
    return KbExtractor(freebase).extract(), KbExtractor(dbpedia).extract()


@pytest.fixture(scope="session")
def combined_kb_output(kb_outputs):
    return combine_kb_outputs(list(kb_outputs))


@pytest.fixture(scope="session")
def query_log(world):
    return generate_query_log(world, QueryLogConfig(seed=5, scale=0.002))


@pytest.fixture(scope="session")
def query_extraction(world, query_log):
    extractor = QueryStreamExtractor(world.entity_index())
    return extractor.extract(query_log)


@pytest.fixture(scope="session")
def seed_sets(world, combined_kb_output, query_extraction):
    query_output, _stats = query_extraction
    return build_seed_sets(
        [combined_kb_output, query_output], world.classes()
    )


@pytest.fixture(scope="session")
def websites(world):
    return generate_websites(
        world,
        WebsiteConfig(seed=9, sites_per_class=2, pages_per_site=10),
    )


@pytest.fixture(scope="session")
def webtext_documents(world):
    return generate_webtext(
        world,
        WebTextConfig(seed=15, sources_per_class=2, documents_per_source=8),
    )
