"""Integration tests: new-entity creation through the pipeline.

With a Freebase snapshot covering only part of the world, pages about
uncovered entities must flow mention → joint resolution → new entity →
fused facts → KB augmentation (the paper's Sec. 3.1 plan).
"""

import pytest

from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.synth.kb_snapshots import KbPairConfig
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig
from tests.conftest import SMALL_WORLD_CONFIG


@pytest.fixture(scope="module")
def discovery_run():
    config = PipelineConfig(
        world=SMALL_WORLD_CONFIG,
        kb_pair=KbPairConfig(
            entity_ratio_freebase=0.6, entity_ratio_dbpedia=0.5
        ),
        querylog=QueryLogConfig(seed=5, scale=0.001),
        websites=WebsiteConfig(seed=9, sites_per_class=2, pages_per_site=12),
        webtext=WebTextConfig(
            seed=15, sources_per_class=2, documents_per_source=6
        ),
        discover_new_entities=True,
    )
    pipeline = KnowledgeBaseConstructionPipeline(config)
    return pipeline, pipeline.run()


class TestDiscoveryFlow:
    def test_resolution_stage_ran(self, discovery_run):
        _, report = discovery_run
        stages = [timing.stage for timing in report.timings]
        assert "entity-resolution" in stages

    def test_new_entities_discovered(self, discovery_run):
        _, report = discovery_run
        assert report.entity_resolution is not None
        assert report.entity_resolution.clusters

    def test_discovered_entities_are_real_world_entities(self, discovery_run):
        pipeline, report = discovery_run
        gold_index = pipeline.world.entity_index()
        resolved = 0
        for cluster in report.entity_resolution.clusters:
            if any(
                surface.lower() in gold_index
                for surface in cluster.surfaces
            ):
                resolved += 1
        # Mention surfaces come from real page headings, so almost all
        # clusters correspond to genuine world entities.
        assert resolved >= len(report.entity_resolution.clusters) * 0.9

    def test_no_mention_subjects_reach_fusion(self, discovery_run):
        pipeline, _ = discovery_run
        assert all(
            not claim.item[0].startswith("mention:")
            for claim in pipeline.claims
        )

    def test_new_entities_registered_in_kb(self, discovery_run):
        pipeline, report = discovery_run
        assert report.augmentation.new_entities == len(
            report.entity_resolution.clusters
        )
        registered = {
            entity.entity_id
            for view in pipeline.freebase.classes.values()
            for entity in view.entities
        }
        for cluster in report.entity_resolution.clusters:
            assert cluster.cluster_id in registered

    def test_fusion_quality_survives_discovery(self, discovery_run):
        _, report = discovery_run
        assert report.fusion_report.precision > 0.85
        assert report.fusion_report.recall > 0.7

    def test_discovered_facts_fused(self, discovery_run):
        pipeline, report = discovery_run
        new_ids = {
            cluster.cluster_id
            for cluster in report.entity_resolution.clusters
        }
        fused_new = [
            item
            for item in report.fusion_result.truths
            if item[0] in new_ids
        ]
        assert fused_new  # new entities carry fused facts


class TestBlockingKnob:
    def _config(self, entity_blocking):
        return PipelineConfig(
            world=SMALL_WORLD_CONFIG,
            kb_pair=KbPairConfig(
                entity_ratio_freebase=0.6, entity_ratio_dbpedia=0.5
            ),
            querylog=QueryLogConfig(seed=5, scale=0.001),
            websites=WebsiteConfig(
                seed=9, sites_per_class=2, pages_per_site=12
            ),
            webtext=WebTextConfig(
                seed=15, sources_per_class=2, documents_per_source=6
            ),
            discover_new_entities=True,
            entity_blocking=entity_blocking,
        )

    def test_blocking_on_off_identical_results(self, discovery_run):
        _, blocked_report = discovery_run  # default: blocking on
        brute = KnowledgeBaseConstructionPipeline(self._config(False))
        brute_report = brute.run()
        assert sorted(blocked_report.fusion_result.truths) == sorted(
            brute_report.fusion_result.truths
        )

        def canon(outcome):
            return sorted(
                (
                    cluster.cluster_id,
                    cluster.class_name,
                    cluster.name,
                    sorted(cluster.surfaces),
                )
                for cluster in outcome.clusters
            )

        assert canon(blocked_report.entity_resolution) == canon(
            brute_report.entity_resolution
        )

    def test_blocking_metrics_published(self, discovery_run):
        _, report = discovery_run
        counters = report.metrics.to_json_dict()["counters"]
        for site in ("linker", "discovery", "attributes"):
            assert (
                f"blocking_queries_total{{site={site}}}" in counters
            ), site
    def test_partial_kb_without_discovery_drops_unknown_pages(self):
        config = PipelineConfig(
            world=SMALL_WORLD_CONFIG,
            kb_pair=KbPairConfig(
                entity_ratio_freebase=0.6, entity_ratio_dbpedia=0.5
            ),
            querylog=QueryLogConfig(seed=5, scale=0.001),
            websites=WebsiteConfig(
                seed=9, sites_per_class=2, pages_per_site=12
            ),
            webtext=WebTextConfig(
                seed=15, sources_per_class=2, documents_per_source=6
            ),
            discover_new_entities=False,
        )
        pipeline = KnowledgeBaseConstructionPipeline(config)
        report = pipeline.run()
        assert report.entity_resolution is None
        assert report.augmentation.new_entities == 0
