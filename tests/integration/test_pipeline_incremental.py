"""Integration tests: incremental delta-apply through the pipeline.

Runs the full pipeline once on a small world, then drives
:meth:`run_incremental` — checking the engine's byte-identity contract
against the pipeline's own fusion configuration, sequence bookkeeping
across repeated deltas, and the checkpoint/resume composition (a fresh
pipeline process applies the next delta without re-running
extraction).
"""

from types import SimpleNamespace

import pytest

from repro.core.pipeline import (
    IncrementalReport,
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.errors import PipelineError
from repro.incremental import ClaimDelta, canonical_claims
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig
from repro.synth.world import WorldConfig


def _config(**overrides) -> PipelineConfig:
    return PipelineConfig(
        world=WorldConfig(
            entities_per_class={
                "Book": 15, "Film": 15, "Country": 12,
                "University": 12, "Hotel": 10,
            }
        ),
        querylog=QueryLogConfig(seed=17, scale=0.0005),
        websites=WebsiteConfig(sites_per_class=2, pages_per_site=6),
        webtext=WebTextConfig(sources_per_class=2, documents_per_source=6),
        fusion_tolerance=0.0,  # the byte-identity regime
        fusion_executor="serial",
        **overrides,
    )


def _delta(all_triples, value, *, retract_first=True):
    ordered = sorted(
        all_triples,
        key=lambda s: (s.triple.subject, s.triple.predicate, s.triple.obj.lexical),
    )
    first = ordered[0]
    added = [
        ScoredTriple(
            Triple(first.triple.subject, first.triple.predicate, Value(value)),
            Provenance(
                first.provenance.source_id, first.provenance.extractor_id
            ),
            0.7,
        )
    ]
    retracted = [ordered[-1].triple] if retract_first else []
    return ClaimDelta(added=added, retracted=retracted, label=value)


@pytest.fixture(scope="module")
def incremental_run(tmp_path_factory):
    checkpoint_dir = str(tmp_path_factory.mktemp("incremental-ckpt"))
    pipeline = KnowledgeBaseConstructionPipeline(
        _config(checkpoint_dir=checkpoint_dir)
    )
    run_report = pipeline.run()
    first = pipeline.run_incremental(
        _delta(pipeline.all_triples, "incremental-town")
    )
    second = pipeline.run_incremental(
        _delta(pipeline.all_triples, "incremental-city", retract_first=False)
    )
    return SimpleNamespace(
        checkpoint_dir=checkpoint_dir,
        pipeline=pipeline,
        run_report=run_report,
        first=first,
        second=second,
    )


class TestRunIncremental:
    def test_returns_incremental_reports(self, incremental_run):
        assert isinstance(incremental_run.first, IncrementalReport)
        assert isinstance(incremental_run.second, IncrementalReport)

    def test_first_call_primes_later_calls_reuse(self, incremental_run):
        assert incremental_run.first.primed
        assert incremental_run.first.resumed_from is None  # in-memory claims
        assert not incremental_run.second.primed

    def test_sequence_advances(self, incremental_run):
        assert incremental_run.first.sequence == 1
        assert incremental_run.second.sequence == 2

    def test_delta_content_landed_in_claim_corpus(self, incremental_run):
        values = {
            scored.triple.obj.lexical
            for scored in incremental_run.pipeline.all_triples
        }
        assert "incremental-town" in values
        assert "incremental-city" in values

    def test_result_matches_full_refusion_of_post_delta_store(
        self, incremental_run
    ):
        pipeline = incremental_run.pipeline
        engine = pipeline.incremental_fusion.incremental
        claims = canonical_claims(engine.store.copy())
        reference_fusion = pipeline._build_fusion(
            pipeline._select_functional_oracle(claims)
        )
        reference = reference_fusion.fuse(claims)
        assert (
            incremental_run.second.fusion_result.canonical_bytes()
            == reference.canonical_bytes()
        )

    def test_fusion_still_scores_against_world(self, incremental_run):
        report = incremental_run.second.fusion_report
        assert report.items > 0
        assert report.precision > 0.5

    def test_report_json_shape(self, incremental_run):
        payload = incremental_run.first.to_json_dict()
        assert payload["sequence"] == 1
        assert payload["primed"] is True
        assert payload["outcome"]["receipt"]["added"] == 1
        assert payload["fusion"]["items"] > 0

    def test_outcome_accounting(self, incremental_run):
        outcome = incremental_run.first.outcome
        assert outcome.receipt.added == 1
        assert outcome.receipt.removed_claims >= 1
        assert outcome.components >= 1
        assert 1 <= outcome.dirty_components <= outcome.components


class TestResumeComposition:
    def test_fresh_process_resumes_from_incremental_checkpoint(
        self, incremental_run
    ):
        resumed = KnowledgeBaseConstructionPipeline(
            _config(checkpoint_dir=incremental_run.checkpoint_dir)
        )
        # No run(): the claim corpus comes from the checkpoint.
        report = resumed.run_incremental(
            _delta(
                incremental_run.pipeline.all_triples,
                "incremental-village",
                retract_first=False,
            ),
            resume=True,
        )
        assert report.primed
        assert report.resumed_from == "incremental"
        # Sequence keeps counting across processes.
        assert report.sequence == incremental_run.second.sequence + 1
        values = {
            scored.triple.obj.lexical for scored in resumed.all_triples
        }
        assert {"incremental-town", "incremental-city",
                "incremental-village"} <= values

    def test_no_claims_and_no_checkpoint_rejected(self):
        pipeline = KnowledgeBaseConstructionPipeline(_config())
        with pytest.raises(PipelineError):
            pipeline.run_incremental(ClaimDelta())

    def test_resume_without_checkpoint_dir_rejected(self):
        pipeline = KnowledgeBaseConstructionPipeline(_config())
        with pytest.raises(PipelineError):
            pipeline.run_incremental(ClaimDelta(), resume=True)

    def test_resume_with_empty_checkpoint_dir_rejected(self, tmp_path):
        pipeline = KnowledgeBaseConstructionPipeline(
            _config(checkpoint_dir=str(tmp_path / "empty"))
        )
        with pytest.raises(PipelineError):
            pipeline.run_incremental(ClaimDelta(), resume=True)
