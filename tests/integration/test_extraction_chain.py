"""Integration tests: the extraction phase end to end.

Covers the seeded chain KBs+queries → seeds → DOM/text extraction, with
gold-standard quality checks — the paper's Phase 1 across modules.
"""

import pytest

from repro.core.confidence import ConfidenceScorer
from repro.evalx.metrics import attribute_discovery_metrics, triple_precision
from repro.extract.dom import DomTreeExtractor
from repro.extract.webtext import WebTextExtractor


@pytest.fixture(scope="module")
def dom_output(world, seed_sets, websites):
    return DomTreeExtractor(world.entity_index(), seed_sets).extract(websites)


@pytest.fixture(scope="module")
def webtext_output(world, seed_sets, combined_kb_output, webtext_documents):
    extractor = WebTextExtractor(
        world.entity_index(), seed_sets, combined_kb_output.triples
    )
    extractor.learn(webtext_documents)
    return extractor.extract(webtext_documents)


class TestSeedChain:
    def test_seeds_come_from_both_accurate_sources(
        self, seed_sets, combined_kb_output, query_extraction
    ):
        query_output, _ = query_extraction
        for class_name, seeds in seed_sets.items():
            kb_names = combined_kb_output.attribute_names(class_name)
            query_names = query_output.attribute_names(class_name)
            assert seeds.names() == kb_names | query_names

    def test_seed_precision_high(self, world, seed_sets):
        for class_name, seeds in seed_sets.items():
            gold = set(world.attribute_names(class_name))
            metrics = attribute_discovery_metrics(seeds.names(), gold)
            assert metrics.precision > 0.9


class TestDomPhase:
    def test_dom_extends_seed_sets(self, world, seed_sets, dom_output):
        extended = 0
        for class_name in world.classes():
            found = dom_output.attribute_names(class_name)
            if found - seed_sets[class_name].names():
                extended += 1
        assert extended >= 3  # most classes gain new attributes

    def test_dom_triples_precision(self, world, dom_output):
        assert triple_precision(world, dom_output.triples) > 0.7

    def test_dom_triples_subjects_are_entities(self, world, dom_output):
        valid = {
            entity.entity_id
            for class_name in world.classes()
            for entity in world.entities(class_name)
        }
        assert all(
            scored.triple.subject in valid for scored in dom_output.triples
        )


class TestWebTextPhase:
    def test_patterns_learned_from_corpus(
        self, world, seed_sets, combined_kb_output, webtext_documents
    ):
        extractor = WebTextExtractor(
            world.entity_index(), seed_sets, combined_kb_output.triples
        )
        adopted = extractor.learn(webtext_documents)
        assert adopted >= 3

    def test_webtext_triples_precision(self, world, webtext_output):
        assert triple_precision(world, webtext_output.triples) > 0.6


class TestUnifiedConfidence:
    def test_confident_claims_are_more_often_true(
        self, world, dom_output, webtext_output, combined_kb_output
    ):
        scorer = ConfidenceScorer()
        batch = scorer.score_batch(
            combined_kb_output.triples
            + dom_output.triples
            + webtext_output.triples
        )
        ranked = sorted(batch, key=lambda s: s.confidence, reverse=True)
        top = ranked[: len(ranked) // 4]
        bottom = ranked[-len(ranked) // 4 :]
        assert triple_precision(world, top) > triple_precision(world, bottom)
