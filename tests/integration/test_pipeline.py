"""Integration tests: the full Figure-1 pipeline."""

import pytest

from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig
from tests.conftest import SMALL_WORLD_CONFIG


@pytest.fixture(scope="module")
def pipeline_run():
    config = PipelineConfig(
        world=SMALL_WORLD_CONFIG,
        querylog=QueryLogConfig(seed=5, scale=0.002),
        websites=WebsiteConfig(seed=9, sites_per_class=2, pages_per_site=10),
        webtext=WebTextConfig(
            seed=15, sources_per_class=2, documents_per_source=8
        ),
    )
    pipeline = KnowledgeBaseConstructionPipeline(config)
    report = pipeline.run()
    return pipeline, report


class TestStages:
    def test_all_stages_ran(self, pipeline_run):
        _, report = pipeline_run
        stages = [timing.stage for timing in report.timings]
        assert stages == [
            "kb-extraction",
            "query-stream",
            "dom-extraction",
            "webtext-extraction",
            "attribute-resolution",
            "confidence",
            "fusion",
            "evaluation",
            "augmentation",
        ]

    def test_timings_positive(self, pipeline_run):
        _, report = pipeline_run
        assert all(timing.seconds >= 0 for timing in report.timings)
        assert report.total_seconds() > 0

    def test_all_four_extractors_produced_output(self, pipeline_run):
        pipeline, report = pipeline_run
        assert set(pipeline.outputs) == {"kb", "querystream", "dom", "webtext"}
        assert report.triple_counts["kb"] > 0
        assert report.triple_counts["dom"] > 0
        assert report.triple_counts["webtext"] > 0


class TestOutcomes:
    def test_fusion_quality(self, pipeline_run):
        _, report = pipeline_run
        assert report.fusion_report.precision > 0.8
        assert report.fusion_report.recall > 0.6

    def test_confidences_assigned(self, pipeline_run):
        pipeline, _ = pipeline_run
        confidences = [claim.confidence for claim in pipeline.claims]
        assert all(0 < c < 1 for c in confidences)
        assert len(set(round(c, 6) for c in confidences)) > 10

    def test_attribute_confidences_assigned(self, pipeline_run):
        pipeline, _ = pipeline_run
        for output in pipeline.outputs.values():
            for per_class in output.attributes.values():
                for record in per_class.values():
                    assert 0 < record.confidence <= 1

    def test_augmentation_added_knowledge(self, pipeline_run):
        _, report = pipeline_run
        assert report.augmentation.new_facts > 0
        assert report.augmentation.total_new_attributes() > 0

    def test_query_stats_match_table3_shape(self, pipeline_run):
        _, report = pipeline_run
        stats = report.query_stats
        assert stats.credible_attributes.get("Hotel", 0) == 0
        assert stats.relevant_records.get("Hotel", 0) > 0

    def test_seed_sizes_recorded(self, pipeline_run):
        _, report = pipeline_run
        assert set(report.seed_sizes) == {
            "Book", "Film", "Country", "University", "Hotel",
        }
        assert all(size > 0 for size in report.seed_sizes.values())


class TestAblationToggles:
    def test_pipeline_runs_with_everything_off(self):
        config = PipelineConfig(
            world=SMALL_WORLD_CONFIG,
            querylog=QueryLogConfig(seed=5, scale=0.001),
            websites=WebsiteConfig(
                seed=9, sites_per_class=1, pages_per_site=6
            ),
            webtext=WebTextConfig(
                seed=15, sources_per_class=1, documents_per_source=4
            ),
            use_hierarchy=False,
            use_source_correlations=False,
            use_extractor_correlations=False,
            use_confidence=False,
            resolve_attributes=False,
        )
        report = KnowledgeBaseConstructionPipeline(config).run()
        assert report.fusion_report.precision > 0.5


class TestFunctionalitySource:
    def test_estimated_functionality_runs(self):
        config = PipelineConfig(
            world=SMALL_WORLD_CONFIG,
            querylog=QueryLogConfig(seed=5, scale=0.001),
            websites=WebsiteConfig(seed=9, sites_per_class=1,
                                   pages_per_site=8),
            webtext=WebTextConfig(seed=15, sources_per_class=1,
                                  documents_per_source=4),
            functionality_source="estimated",
        )
        report = KnowledgeBaseConstructionPipeline(config).run()
        assert report.fusion_report.precision > 0.8

    def test_unknown_functionality_source_rejected(self):
        from repro.errors import PipelineError

        config = PipelineConfig(
            world=SMALL_WORLD_CONFIG,
            querylog=QueryLogConfig(seed=5, scale=0.001),
            websites=WebsiteConfig(seed=9, sites_per_class=1,
                                   pages_per_site=6),
            webtext=WebTextConfig(seed=15, sources_per_class=1,
                                  documents_per_source=3),
            functionality_source="astrology",
        )
        with pytest.raises(PipelineError):
            KnowledgeBaseConstructionPipeline(config).run()
