"""Integration tests: drift and copying scenarios through the pipeline.

These pin the two acceptance contracts of the moving-truth scenarios:

* :meth:`run_drift` drives the epoch-delta stream end-to-end through
  :meth:`Pipeline.serve` and its JSON report is byte-identical across
  two same-seed runs (determinism survives the full serving stack, not
  just the generator).
* :meth:`run_copying`'s eval table shows the correlation-aware mode
  suppressing strictly more copied errors than the correlation-blind
  mode, at no worse precision.
"""

import json

import pytest

from repro.core.pipeline import (
    CopyingScenarioReport,
    DriftScenarioReport,
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.serving.tenancy import TenantMixReport
from repro.obs.schema import validate_metrics, validate_tenant_metrics
from repro.synth.copying import CopyingConfig
from repro.synth.drift import DriftConfig
from repro.synth.tenants import TenantMixConfig

DRIFT = DriftConfig(seed=7, n_items=24, n_sources=5, epochs=4)
COPYING = CopyingConfig(seed=0, n_items=60, lag=1)
TENANTS = TenantMixConfig(
    n_tenants=3, seed=11, n_items=10, n_sources=4, parts=2, epochs=2
)


def _report_bytes(report):
    return json.dumps(
        report.to_json_dict(), sort_keys=True, separators=(",", ":")
    )


class TestRunDrift:
    @pytest.fixture(scope="class")
    def drift_report(self):
        pipeline = KnowledgeBaseConstructionPipeline(
            PipelineConfig(drift=DRIFT)
        )
        report = pipeline.run_drift()
        return pipeline, report

    def test_report_shape(self, drift_report):
        _, report = drift_report
        assert isinstance(report, DriftScenarioReport)
        assert report.seed == DRIFT.seed
        assert len(report.rows) == DRIFT.epochs
        assert report.base_claims > 0
        assert report.wall_seconds > 0

    def test_serving_tracks_every_epoch(self, drift_report):
        pipeline, report = drift_report
        # Fault-free: serving commits each epoch as it is published.
        for row in report.rows:
            assert row.served_epoch == row.epoch
            assert row.freshness.lag_epochs == 0
            assert row.freshness.staleness == 0.0
        assert report.final_version == DRIFT.epochs
        # The drift corpus replaced the claim corpus: a fresh server
        # primes on the post-drift engine state.
        assert pipeline.serve().versions.current.sequence == DRIFT.epochs

    def test_fusion_quality_holds_under_drift(self, drift_report):
        _, report = drift_report
        for row in report.rows:
            assert row.freshness.vs_served.f1 > 0.7

    def test_double_run_is_byte_identical(self, drift_report):
        _, first = drift_report
        second = KnowledgeBaseConstructionPipeline(
            PipelineConfig(drift=DRIFT)
        ).run_drift()
        assert _report_bytes(first) == _report_bytes(second)

    def test_metrics_published_and_schema_valid(self, drift_report):
        pipeline, _ = drift_report
        snapshot = pipeline.metrics.snapshot().to_json_dict()
        validate_metrics(snapshot)
        counters = snapshot["counters"]
        assert counters["drift_runs_total"] == 1
        assert counters["drift_epochs_total"] == DRIFT.epochs
        assert "drift_freshness_lag_epochs" in snapshot["gauges"]
        assert "drift_staleness_ratio" in snapshot["gauges"]

    def test_table_renders(self, drift_report):
        _, report = drift_report
        table = report.table()
        assert "epoch" in table
        assert "f1@served" in table

    def test_explicit_config_overrides_pipeline_config(self):
        pipeline = KnowledgeBaseConstructionPipeline(
            PipelineConfig(drift=DRIFT)
        )
        other = DriftConfig(seed=1, n_items=12, n_sources=4, epochs=2)
        report = pipeline.run_drift(other)
        assert report.seed == 1
        assert len(report.rows) == 2


class TestRunCopying:
    @pytest.fixture(scope="class")
    def copying_report(self):
        pipeline = KnowledgeBaseConstructionPipeline(
            PipelineConfig(copying=COPYING)
        )
        report = pipeline.run_copying()
        return pipeline, report

    def test_report_shape(self, copying_report):
        _, report = copying_report
        assert isinstance(report, CopyingScenarioReport)
        assert report.copied_errors > 0
        assert {row.mode for row in report.rows} == {
            "correlation-blind", "correlation-aware"
        }

    def test_aware_beats_blind_on_suppression(self, copying_report):
        _, report = copying_report
        blind = report.mode("correlation-blind")
        aware = report.mode("correlation-aware")
        assert aware.suppressed > blind.suppressed
        assert aware.leaked < blind.leaked
        assert aware.precision >= blind.precision

    def test_outcome_partition(self, copying_report):
        _, report = copying_report
        for row in report.rows:
            assert row.suppressed + row.leaked == report.copied_errors

    def test_metrics_published_and_schema_valid(self, copying_report):
        pipeline, report = copying_report
        snapshot = pipeline.metrics.snapshot().to_json_dict()
        validate_metrics(snapshot)
        counters = snapshot["counters"]
        assert counters["copying_runs_total"] == 1
        assert (
            counters["copying_copied_errors_total"] == report.copied_errors
        )
        aware = report.mode("correlation-aware")
        assert (
            counters['copying_suppressed_total{mode=correlation-aware}']
            == aware.suppressed
        )

    def test_double_run_is_byte_identical(self, copying_report):
        _, first = copying_report
        second = KnowledgeBaseConstructionPipeline(
            PipelineConfig(copying=COPYING)
        ).run_copying()
        assert _report_bytes(first) == _report_bytes(second)

    def test_table_renders(self, copying_report):
        _, report = copying_report
        table = report.table()
        assert "correlation-aware" in table
        assert "suppressed" in table


class TestRunTenants:
    @pytest.fixture(scope="class")
    def tenant_report(self):
        pipeline = KnowledgeBaseConstructionPipeline(
            PipelineConfig(tenants=TENANTS)
        )
        report = pipeline.run_tenants()
        return pipeline, report

    def test_report_shape(self, tenant_report):
        _, report = tenant_report
        assert isinstance(report, TenantMixReport)
        assert report.tenants == TENANTS.n_tenants
        assert report.rounds > 0
        assert report.wall_seconds > 0
        kinds = [row.kind for row in report.rows]
        assert kinds == ["static", "drift", "copying"]
        for row in report.rows:
            assert row.published == row.deltas
            assert row.halted is None
            assert row.f1 > 0.5

    def test_double_run_is_byte_identical(self, tenant_report):
        _, first = tenant_report
        second = KnowledgeBaseConstructionPipeline(
            PipelineConfig(tenants=TENANTS)
        ).run_tenants()
        assert _report_bytes(first) == _report_bytes(second)

    def test_metrics_are_tenant_labeled_and_schema_valid(
        self, tenant_report
    ):
        pipeline, report = tenant_report
        snapshot = pipeline.metrics.snapshot().to_json_dict()
        assert validate_metrics(snapshot) == []
        names = [row.name for row in report.rows]
        assert validate_tenant_metrics(snapshot, names) == []
        assert snapshot["counters"]["tenant_runs_total"] == 1

    def test_table_renders(self, tenant_report):
        _, report = tenant_report
        table = report.table()
        assert "tenant" in table
        assert "tenant02" in table
