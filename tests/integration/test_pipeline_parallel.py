"""Concurrent extractor execution produces the serial pipeline's output.

The pipeline's parallel mode runs KB extraction next to query-log
generation (phase A) and the DOM/Web-text extractors side by side
(phase B).  Every stage is a deterministic function of the world and
its config, so the fused knowledge — claims, metrics, augmentation —
must be identical to a serial run's.  A small world keeps this fast.
"""

import pytest

from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
)
from repro.errors import PipelineError
from repro.synth.kb_snapshots import KbPairConfig
from repro.synth.querylog import QueryLogConfig
from repro.synth.websites import WebsiteConfig
from repro.synth.webtext import WebTextConfig
from repro.synth.world import WorldConfig


def _small_config(**overrides) -> PipelineConfig:
    return PipelineConfig(
        world=WorldConfig(
            entities_per_class={
                "Book": 15, "Film": 15, "Country": 12,
                "University": 12, "Hotel": 10,
            }
        ),
        querylog=QueryLogConfig(seed=17, scale=0.0005),
        websites=WebsiteConfig(sites_per_class=2, pages_per_site=6),
        webtext=WebTextConfig(sources_per_class=2, documents_per_source=6),
        kb_pair=KbPairConfig(),
        **overrides,
    )


def _run(config):
    pipeline = KnowledgeBaseConstructionPipeline(config)
    report = pipeline.run()
    return pipeline, report


def _claim_signature(pipeline):
    return sorted(
        (claim.item, claim.value, claim.source_id, claim.extractor_id,
         claim.confidence)
        for claim in pipeline.claims
    )


@pytest.fixture(scope="module")
def serial():
    return _run(_small_config())


@pytest.fixture(scope="module")
def parallel_process(serial):
    return _run(_small_config(parallelism=2, stage_executor="process"))


class TestParallelEquivalence:
    def test_claims_identical(self, serial, parallel_process):
        assert _claim_signature(serial[0]) == _claim_signature(
            parallel_process[0]
        )

    def test_metrics_identical(self, serial, parallel_process):
        serial_report = serial[1].fusion_report
        parallel_report = parallel_process[1].fusion_report
        assert serial_report.precision == parallel_report.precision
        assert serial_report.recall == parallel_report.recall
        assert serial_report.f1 == parallel_report.f1

    def test_per_extractor_yield_identical(self, serial, parallel_process):
        assert serial[1].triple_counts == parallel_process[1].triple_counts
        assert (
            serial[1].attribute_counts == parallel_process[1].attribute_counts
        )
        assert serial[1].seed_sizes == parallel_process[1].seed_sizes

    def test_stage_timings_complete(self, serial, parallel_process):
        stages = [timing.stage for timing in parallel_process[1].timings]
        assert stages[:4] == [
            "kb-extraction", "query-stream",
            "dom-extraction", "webtext-extraction",
        ]
        assert [t.stage for t in serial[1].timings] == stages

    def test_extraction_wall_recorded_only_when_parallel(
        self, serial, parallel_process
    ):
        assert serial[1].extraction_wall == {}
        assert set(parallel_process[1].extraction_wall) == {
            "phase-a", "phase-b",
        }
        assert all(
            seconds > 0
            for seconds in parallel_process[1].extraction_wall.values()
        )

    def test_thread_executor_also_identical(self, serial):
        pipeline, report = _run(
            _small_config(parallelism=2, stage_executor="thread")
        )
        assert _claim_signature(serial[0]) == _claim_signature(pipeline)
        assert report.fusion_report.f1 == serial[1].fusion_report.f1

    def test_bad_stage_executor_rejected(self):
        with pytest.raises(PipelineError, match="stage_executor"):
            _run(_small_config(parallelism=2, stage_executor="fork"))
