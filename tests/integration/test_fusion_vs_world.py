"""Integration tests: fusion methods against extraction-phase claims.

The methods are compared on real extractor output (not synthetic claim
worlds), checking the ordering the paper's Section 3.2 predicts.
"""

import pytest

from repro.core.confidence import ConfidenceScorer
from repro.evalx.metrics import evaluate_fusion
from repro.extract.dom import DomTreeExtractor
from repro.extract.webtext import WebTextExtractor
from repro.fusion.accu import Accu, PopAccu
from repro.fusion.base import ClaimSet
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.fusion.multitruth import MultiTruth
from repro.fusion.vote import Vote


@pytest.fixture(scope="module")
def claims(world, seed_sets, combined_kb_output, websites, webtext_documents):
    dom = DomTreeExtractor(world.entity_index(), seed_sets).extract(websites)
    text_extractor = WebTextExtractor(
        world.entity_index(), seed_sets, combined_kb_output.triples
    )
    text_extractor.learn(webtext_documents)
    text = text_extractor.extract(webtext_documents)
    scorer = ConfidenceScorer()
    batch = scorer.score_batch(
        combined_kb_output.triples + dom.triples + text.triples
    )
    return ClaimSet.from_scored_triples(batch)


@pytest.fixture(scope="module")
def functional_oracle(world):
    functional = {}
    for class_name in world.classes():
        for spec in world.catalogs[class_name].attributes:
            functional.setdefault(spec.name, spec.functional)
    return lambda predicate: functional.get(predicate, False)


class TestMethodOrdering:
    def test_all_methods_run_on_real_claims(self, world, claims):
        for method in (Vote(), Accu(), PopAccu(), MultiTruth()):
            report = evaluate_fusion(world, method.fuse(claims))
            assert report.precision > 0.6

    def test_knowledge_fusion_not_worse_than_vote(
        self, world, claims, functional_oracle
    ):
        vote = evaluate_fusion(world, Vote().fuse(claims))
        fused = evaluate_fusion(
            world,
            KnowledgeFusion(
                hierarchy=world.hierarchy, functional_of=functional_oracle
            ).fuse(claims),
        )
        assert fused.f1 >= vote.f1 - 0.02

    def test_fused_beliefs_are_calibrated_signals(self, world, claims):
        result = KnowledgeFusion(hierarchy=world.hierarchy).fuse(claims)
        from repro.evalx.metrics import true_value_keys

        decided = sorted(
            (
                (result.belief_of(item, value), item, value)
                for item, values in result.truths.items()
                for value in values
            ),
            reverse=True,
        )
        quartile = len(decided) // 4
        assert quartile > 10

        def precision(slice_):
            correct = sum(
                1
                for _belief, item, value in slice_
                if value in true_value_keys(world, item[0], item[1])
            )
            return correct / len(slice_)

        # Higher fused belief must mean a higher chance of being true.
        assert precision(decided[:quartile]) > precision(decided[-quartile:])
