"""Integration tests: the paper's table shapes must hold.

These tests assert the *qualitative* results of Tables 1-3 on the
shared small world; the benchmarks regenerate the full tables at paper
scale.
"""

import pytest

from repro.extract.kb import KbExtractor, combine_kb_outputs
from repro.synth.kb_snapshots import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    build_representative_snapshots,
)


class TestTable1Shape:
    @pytest.fixture(scope="class")
    def snapshots(self, world):
        return build_representative_snapshots(world)

    def test_entity_ratios_preserved(self, snapshots):
        counts = {
            name: snap.entity_count() for name, snap in snapshots.items()
        }
        paper = {name: spec[0] for name, spec in PAPER_TABLE1.items()}
        ordered_ours = sorted(counts, key=counts.get)
        ordered_paper = sorted(paper, key=paper.get)
        assert ordered_ours == ordered_paper

    def test_attribute_ratios_preserved(self, snapshots):
        counts = {
            name: snap.attribute_count() for name, snap in snapshots.items()
        }
        paper = {name: spec[1] for name, spec in PAPER_TABLE1.items()}
        assert sorted(counts, key=counts.get) == sorted(paper, key=paper.get)


class TestTable2Shape:
    def test_combined_exceeds_each_extraction(self, kb_outputs, world):
        combined = combine_kb_outputs(list(kb_outputs))
        for class_name in world.classes():
            for output in kb_outputs:
                assert combined.attribute_count(class_name) >= (
                    output.attribute_count(class_name)
                )

    def test_extraction_exceeds_original_schema(self, kb_pair, world):
        for snapshot in kb_pair:
            extractor = KbExtractor(snapshot)
            output = extractor.extract()
            for class_name in world.classes():
                assert output.attribute_count(class_name) >= len(
                    extractor.schema_attribute_names(class_name)
                )

    def test_university_has_largest_relative_gain_in_freebase(
        self, kb_pair, world
    ):
        freebase, _ = kb_pair
        extractor = KbExtractor(freebase)
        output = extractor.extract()
        gains = {}
        for class_name in world.classes():
            schema = len(extractor.schema_attribute_names(class_name))
            extracted = output.attribute_count(class_name)
            gains[class_name] = extracted / max(1, schema)
        assert max(gains, key=gains.get) in {"University", "Hotel"}

    def test_combined_counts_track_paper_ordering(self, kb_outputs, world):
        combined = combine_kb_outputs(list(kb_outputs))
        ours = {
            class_name: combined.attribute_count(class_name)
            for class_name in world.classes()
        }
        paper = {name: spec[4] for name, spec in PAPER_TABLE2.items()}
        assert sorted(ours, key=ours.get) == sorted(paper, key=paper.get)


class TestTable3Shape:
    def test_more_records_more_attributes_and_hotel_na(
        self, query_extraction
    ):
        _, stats = query_extraction
        # Hotel: relevant records exist but no credible attributes.
        assert stats.relevant_records.get("Hotel", 0) > 0
        assert stats.credible_attributes.get("Hotel", 0) == 0
        # Classes with the most relevant records find the most
        # attributes (coarse monotonicity over extremes, as in paper).
        populous = max(stats.relevant_records, key=stats.relevant_records.get)
        assert stats.credible_attributes.get(populous, 0) >= max(
            stats.credible_attributes.get("University", 0), 1
        )
