"""Command-line interface.

``python -m repro <command>`` exposes the main entry points without
writing any code:

* ``pipeline``   — run the end-to-end framework, print the report,
  optionally export the fused KB;
* ``table1`` / ``table2`` / ``table3`` — regenerate the paper's tables;
* ``fusion-demo`` — compare fusion methods on a synthetic claim regime;
* ``drift``     — run a drifting-world scenario through the serving
  stream and print per-epoch freshness metrics;
* ``copying``   — fuse a source-copying world with correlations off
  vs on and print the copied-error suppression table;
* ``tenants``   — ingest and serve a multi-tenant world mix on one
  shared runtime and print the per-tenant eval table;
* ``query``     — run a single-pattern query against an exported
  claims TSV file.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Generating Actionable Knowledge from Big "
            "Data' (SIGMOD 2015 PhD Symposium)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pipeline = sub.add_parser(
        "pipeline", help="run the end-to-end KB-construction framework"
    )
    pipeline.add_argument("--seed", type=int, default=7)
    pipeline.add_argument(
        "--query-scale", type=float, default=0.002,
        help="query-stream scale relative to the paper's 29.3M records",
    )
    pipeline.add_argument(
        "--discover-entities", action="store_true",
        help="enable new-entity creation from unknown page headings",
    )
    pipeline.add_argument(
        "--no-entity-blocking", action="store_true",
        help="disable MinHash/LSH blocking in entity matching and use "
        "the reference brute-force scans (verdicts are identical; "
        "only speed changes)",
    )
    pipeline.add_argument(
        "--export", metavar="PATH",
        help="write the augmented Freebase snapshot's claims as TSV",
    )
    pipeline.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="run independent extraction stages concurrently (N >= 2); "
        "output is identical to a serial run",
    )
    pipeline.add_argument(
        "--stage-executor", choices=("process", "thread"),
        default="process",
        help="pool type for concurrent extraction stages",
    )
    pipeline.add_argument(
        "--fusion-parallel", type=int, default=1, metavar="N",
        help="shard fusion over connected components of the claim "
        "graph on N workers (N >= 2); truths identical to serial",
    )
    pipeline.add_argument(
        "--fusion-executor", choices=("process", "serial"),
        default="process",
        help="mapreduce executor for sharded fusion",
    )
    pipeline.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry failed fusion map/reduce tasks up to N extra times "
        "with exponential backoff (0 keeps single-attempt behaviour)",
    )
    pipeline.add_argument(
        "--stage-timeout", type=float, default=None, metavar="SECONDS",
        help="deadline per extraction stage; overruns degrade the stage "
        "instead of aborting the run",
    )
    pipeline.add_argument(
        "--min-sources", type=int, default=1, metavar="N",
        help="abort unless at least N extractor outputs survive "
        "extraction (degraded stages are dropped, not fatal)",
    )
    pipeline.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="spill extraction/claims stage outputs to DIR so a crashed "
        "run can resume",
    )
    pipeline.add_argument(
        "--resume", action="store_true",
        help="restore completed stages from --checkpoint-dir instead of "
        "recomputing (stale checkpoints are ignored)",
    )
    pipeline.add_argument(
        "--storage-backend", choices=("memory", "segment"),
        default="memory",
        help="claim-store backend for incremental runs: 'memory' keeps "
        "claims in dicts, 'segment' spills them to mmapped LSM segment "
        "files under --storage-dir (verdicts identical either way)",
    )
    pipeline.add_argument(
        "--storage-dir", metavar="DIR",
        help="segment-file directory (required with "
        "--storage-backend=segment)",
    )
    pipeline.add_argument(
        "--memtable-limit", type=int, default=8192, metavar="N",
        help="memtable entries that trigger a segment flush",
    )
    pipeline.add_argument(
        "--apply-delta", metavar="PATH", action="append", default=[],
        help="after the run, apply a JSON claim delta (added/retracted "
        "triples) incrementally, re-fusing only the dirty connected "
        "components; repeatable, applied in order",
    )
    pipeline.add_argument(
        "--serve", action="store_true",
        help="route --apply-delta files through the serving layer "
        "(publish to the event log, consume with redelivery/dedup "
        "semantics, report version/lag/staleness) instead of calling "
        "run_incremental directly",
    )
    pipeline.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the run's metric snapshot (counters/gauges/"
        "histograms) as JSON",
    )
    pipeline.add_argument(
        "--trace-out", metavar="FILE",
        help="write the run's span trace tree as JSON",
    )

    for name, help_text in (
        ("table1", "statistics of representative KBs"),
        ("table2", "attribute extraction from existing KBs"),
        ("table3", "query-stream extraction results"),
    ):
        table = sub.add_parser(name, help=f"regenerate {help_text}")
        table.add_argument("--seed", type=int, default=7)
        if name == "table3":
            table.add_argument("--scale", type=float, default=0.01)

    demo = sub.add_parser(
        "fusion-demo", help="compare fusion methods on a claim regime"
    )
    demo.add_argument(
        "--scenario",
        choices=("skewed", "copiers", "multi-truth", "hierarchy"),
        default="copiers",
    )
    demo.add_argument("--items", type=int, default=120)
    demo.add_argument("--seed", type=int, default=2)

    drift = sub.add_parser(
        "drift",
        help="run a drifting-world scenario through the serving stream",
    )
    drift.add_argument("--seed", type=int, default=7)
    drift.add_argument("--items", type=int, default=40)
    drift.add_argument("--sources", type=int, default=6)
    drift.add_argument("--epochs", type=int, default=5)
    drift.add_argument(
        "--value-change-rate", type=float, default=0.25,
        help="per epoch: fraction of surviving items whose truth changes",
    )
    drift.add_argument(
        "--birth-rate", type=float, default=0.10,
        help="per epoch: new items as a fraction of the initial population",
    )
    drift.add_argument(
        "--death-rate", type=float, default=0.05,
        help="per epoch: fraction of live items retired",
    )
    drift.add_argument(
        "--rename-rate", type=float, default=0.05,
        help="per epoch: fraction of surviving items whose attribute "
        "is renamed",
    )
    drift.add_argument(
        "--json", metavar="FILE",
        help="write the deterministic scenario report as JSON",
    )
    drift.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the run's metric snapshot as JSON",
    )

    copying = sub.add_parser(
        "copying",
        help="fuse a source-copying world with correlations off vs on",
    )
    copying.add_argument("--seed", type=int, default=0)
    copying.add_argument("--items", type=int, default=80)
    copying.add_argument("--independents", type=int, default=4)
    copying.add_argument("--copiers", type=int, default=3)
    copying.add_argument(
        "--copy-fraction", type=float, default=0.9,
        help="chance a copier replicates any given victim claim",
    )
    copying.add_argument(
        "--victim-accuracy", type=float, default=0.5,
        help="the victim source's accuracy (its errors get copied)",
    )
    copying.add_argument(
        "--lag", type=int, default=1,
        help="with lag > 0 the victim corrects some errors after the "
        "copiers replicated them",
    )
    copying.add_argument(
        "--json", metavar="FILE",
        help="write the deterministic scenario report as JSON",
    )
    copying.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the run's metric snapshot as JSON",
    )

    tenants = sub.add_parser(
        "tenants",
        help="serve a multi-tenant world mix on one shared runtime",
    )
    tenants.add_argument("--tenants", type=int, default=3, dest="n_tenants")
    tenants.add_argument("--seed", type=int, default=7)
    tenants.add_argument(
        "--kinds", default="static,drift,copying",
        help="comma-separated tenant kinds the derived fleet cycles "
        "through (static, drift, copying)",
    )
    tenants.add_argument("--items", type=int, default=24)
    tenants.add_argument("--sources", type=int, default=4)
    tenants.add_argument(
        "--parts", type=int, default=3,
        help="deltas per static/copying tenant",
    )
    tenants.add_argument(
        "--epochs", type=int, default=3,
        help="mutation epochs per drift tenant",
    )
    tenants.add_argument(
        "--checkpoint-root", metavar="DIR",
        help="checkpoint every tenant under DIR/<tenant>/",
    )
    tenants.add_argument(
        "--json", metavar="FILE",
        help="write the deterministic mix report as JSON",
    )
    tenants.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the run's metric snapshot as JSON",
    )

    query = sub.add_parser(
        "query", help="query an exported claims TSV file"
    )
    query.add_argument("path")
    query.add_argument("--subject")
    query.add_argument("--predicate")
    query.add_argument("--object", dest="obj")
    query.add_argument("--limit", type=int, default=20)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "pipeline": _run_pipeline,
        "table1": _run_table1,
        "table2": _run_table2,
        "table3": _run_table3,
        "fusion-demo": _run_fusion_demo,
        "drift": _run_drift,
        "copying": _run_copying,
        "tenants": _run_tenants,
        "query": _run_query,
    }
    return handlers[args.command](args)


# ----------------------------------------------------------------------
def _run_pipeline(args) -> int:
    from repro.core.pipeline import (
        KnowledgeBaseConstructionPipeline,
        PipelineConfig,
    )
    from repro.mapreduce.engine import RetryPolicy
    from repro.synth.querylog import QueryLogConfig
    from repro.synth.world import WorldConfig

    retry = (
        RetryPolicy(max_attempts=args.retries + 1)
        if args.retries > 0
        else None
    )
    config = PipelineConfig(
        world=WorldConfig(seed=args.seed),
        querylog=QueryLogConfig(scale=args.query_scale),
        discover_new_entities=args.discover_entities,
        entity_blocking=not args.no_entity_blocking,
        parallelism=args.parallel,
        stage_executor=args.stage_executor,
        fusion_parallelism=args.fusion_parallel,
        fusion_executor=args.fusion_executor,
        retry=retry,
        stage_timeout=args.stage_timeout,
        min_sources=args.min_sources,
        checkpoint_dir=args.checkpoint_dir,
        storage_backend=args.storage_backend,
        storage_dir=args.storage_dir,
        memtable_limit=args.memtable_limit,
    )
    pipeline = KnowledgeBaseConstructionPipeline(config)
    report = pipeline.run(resume=args.resume)
    for timing in report.timings:
        print(f"{timing.stage:<22} {timing.seconds:6.2f}s  {timing.detail}")
    for phase, seconds in report.extraction_wall.items():
        print(f"{phase + ' wall':<22} {seconds:6.2f}s")
    print(f"{'fusion wall':<22} {report.fusion_wall:6.2f}s")
    if report.fusion_shards:
        shards = report.fusion_shards
        print(
            f"{'fusion shards':<22} {shards['components']} components "
            f"on {shards['workers']} {shards['executor']} workers, "
            f"largest {shards['largest_claims']} claims"
        )
    health = report.health
    if (
        health.status != "ok"
        or health.resumed_stages
        or health.quarantined.get("total")
        or health.retry
    ):
        print(
            f"health: {health.status}; "
            f"degraded: {sorted(health.degraded) or 'none'}; "
            f"quarantined: {health.quarantined.get('total', 0)}; "
            f"resumed: {health.resumed_stages or 'none'}; "
            f"retry: {health.retry or 'none'}"
        )
    fusion = report.fusion_report
    print(
        f"fusion: {fusion.items} items, precision {fusion.precision:.3f}, "
        f"recall {fusion.recall:.3f}, F1 {fusion.f1:.3f}"
    )
    augmentation = report.augmentation
    if augmentation is not None:
        print(
            f"augmentation: +{augmentation.new_facts} facts, "
            f"+{augmentation.total_new_attributes()} attributes, "
            f"+{augmentation.new_entities} entities"
        )
    if args.serve and args.apply_delta:
        from repro.incremental import load_delta

        server = pipeline.serve()
        for path in args.apply_delta:
            event = server.publish(load_delta(path))
            print(
                f"published {path} as event {event.offset} "
                f"({event.event_id})"
            )
        for outcome in server.drain():
            print(
                f"event {outcome.offset}: {outcome.action} -> version "
                f"{outcome.version_id} (sequence {outcome.sequence}, "
                f"{outcome.attempts} attempt(s))"
            )
        status = server.status()
        print(
            f"serving: version {status.version_id}, "
            f"{status.applied_events} events applied, "
            f"lag {status.lag_events}, "
            f"{'DEGRADED' if status.degraded else 'healthy'}"
            f"{f', {status.poisoned} poisoned' if status.poisoned else ''}"
        )
        reader = server.reader()
        for subject, score in reader.top_entities(5):
            print(f"  top entity {subject}: belief {score:.3f}")
    for path in ([] if args.serve else args.apply_delta):
        from repro.incremental import load_delta

        incremental = pipeline.run_incremental(load_delta(path))
        outcome = incremental.outcome
        receipt = outcome.receipt
        print(
            f"delta #{incremental.sequence} ({path}): "
            f"+{receipt.added} claims, -{receipt.removed_claims} claims; "
            f"{outcome.dirty_components}/{outcome.components} components "
            f"re-fused, {outcome.reused_verdicts} verdicts reused"
            f"{' (degenerate: full re-fusion)' if outcome.degenerate else ''}"
            f" in {outcome.wall_seconds:.2f}s"
        )
        fused = incremental.fusion_report
        print(
            f"  fusion: {fused.items} items, "
            f"precision {fused.precision:.3f}, recall {fused.recall:.3f}, "
            f"F1 {fused.f1:.3f}"
        )
    if args.export:
        from repro.rdf.io import dump_claims_tsv

        written = dump_claims_tsv(pipeline.freebase.store, args.export)
        print(f"exported {written} claims to {args.export}")
    if args.metrics_out:
        # report.metrics is frozen at the end of run(); deltas applied
        # afterwards accrue storage_*/incremental_* metrics in the live
        # registry, so re-snapshot to include them.
        metrics = report.metrics
        if args.apply_delta:
            metrics = pipeline.metrics.snapshot()
        _dump_json(args.metrics_out, metrics.to_json_dict())
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out:
        _dump_json(args.trace_out, report.trace)
        print(f"trace written to {args.trace_out}")
    return 0


def _dump_json(path: str, payload: dict) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _run_table1(args) -> int:
    from repro.evalx.tables import render_table
    from repro.synth.kb_snapshots import (
        PAPER_TABLE1,
        build_representative_snapshots,
    )
    from repro.synth.world import GroundTruthWorld, WorldConfig

    world = GroundTruthWorld(WorldConfig(seed=args.seed))
    snapshots = build_representative_snapshots(world)
    rows = [
        [
            name,
            f"{PAPER_TABLE1[name][0]}M / {PAPER_TABLE1[name][1]}",
            snapshots[name].entity_count(),
            snapshots[name].attribute_count(),
        ]
        for name in PAPER_TABLE1
    ]
    print(
        render_table(
            ["KB", "paper (entities/attrs)", "ours entities", "ours attrs"],
            rows,
            title="Table 1: Statistics of Representative KBs",
        )
    )
    return 0


def _run_table2(args) -> int:
    from repro.evalx.tables import render_table
    from repro.extract.kb import KbExtractor, combine_kb_outputs
    from repro.synth.kb_snapshots import build_kb_pair
    from repro.synth.world import GroundTruthWorld, WorldConfig

    world = GroundTruthWorld(WorldConfig(seed=args.seed))
    freebase, dbpedia = build_kb_pair(world)
    freebase_extractor = KbExtractor(freebase)
    dbpedia_extractor = KbExtractor(dbpedia)
    freebase_output = freebase_extractor.extract()
    dbpedia_output = dbpedia_extractor.extract()
    combined = combine_kb_outputs([freebase_output, dbpedia_output])
    rows = [
        [
            class_name,
            len(dbpedia_extractor.schema_attribute_names(class_name)),
            dbpedia_output.attribute_count(class_name),
            len(freebase_extractor.schema_attribute_names(class_name)),
            freebase_output.attribute_count(class_name),
            combined.attribute_count(class_name),
        ]
        for class_name in world.classes()
    ]
    print(
        render_table(
            [
                "Class", "DBpedia", "Extrac.(DBpedia)", "Freebase",
                "Extrac.(Freebase)", "Combine",
            ],
            rows,
            title="Table 2: Statistics of Five Representative Classes",
        )
    )
    return 0


def _run_table3(args) -> int:
    from repro.evalx.tables import render_table
    from repro.extract.querystream import QueryStreamExtractor
    from repro.synth.querylog import QueryLogConfig, generate_query_log
    from repro.synth.world import GroundTruthWorld, WorldConfig

    world = GroundTruthWorld(WorldConfig(seed=args.seed))
    log = generate_query_log(world, QueryLogConfig(scale=args.scale))
    _output, stats = QueryStreamExtractor(world.entity_index()).extract(log)
    rows = [
        [
            class_name,
            stats.relevant_records.get(class_name, 0),
            stats.credible_attributes.get(class_name, 0) or "N/A",
        ]
        for class_name in world.classes()
    ]
    print(
        render_table(
            ["Class", "relevant records", "credible attributes"],
            rows,
            title=(
                f"Table 3: Query Stream Extraction "
                f"({len(log)} records, scale {args.scale})"
            ),
        )
    )
    return 0


def _run_fusion_demo(args) -> int:
    from repro.evalx.tables import render_table
    from repro.fusion.accu import Accu, PopAccu
    from repro.fusion.hierarchy import HierarchicalFusion
    from repro.fusion.knowledge_fusion import KnowledgeFusion
    from repro.fusion.multitruth import MultiTruth
    from repro.fusion.vote import Vote
    from repro.synth.claims import ClaimWorldConfig, generate_claim_world

    configs = {
        "skewed": ClaimWorldConfig(
            seed=args.seed, n_items=args.items, n_sources=9,
            source_accuracies=[0.95, 0.9, 0.9, 0.5, 0.45, 0.45, 0.4, 0.4,
                               0.35],
        ),
        "copiers": ClaimWorldConfig(
            seed=args.seed, n_items=args.items, n_sources=8,
            copier_cliques=2,
        ),
        "multi-truth": ClaimWorldConfig(
            seed=args.seed, n_items=args.items, n_sources=10,
            truths_per_item=2, source_accuracies=[0.85] * 10,
        ),
        "hierarchy": ClaimWorldConfig(
            seed=args.seed, n_items=args.items, n_sources=8,
            hierarchical=True, generalization_rate=0.4,
        ),
    }
    world = generate_claim_world(configs[args.scenario])
    methods = [
        Vote(), Accu(), PopAccu(), MultiTruth(),
        KnowledgeFusion(hierarchy=world.hierarchy),
    ]
    if world.hierarchy is not None:
        methods.insert(4, HierarchicalFusion(Accu(), world.hierarchy))
    rows = []
    for method in methods:
        result = method.fuse(world.claims)
        rows.append(
            [
                method.name,
                f"{world.precision_of(result.truths):.3f}",
                f"{world.recall_of(result.truths):.3f}",
                result.iterations,
            ]
        )
    print(
        render_table(
            ["method", "precision", "recall", "iterations"],
            rows,
            title=f"Fusion demo: scenario={args.scenario}",
        )
    )
    return 0


def _run_drift(args) -> int:
    from repro.core.pipeline import KnowledgeBaseConstructionPipeline
    from repro.synth.drift import DriftConfig

    pipeline = KnowledgeBaseConstructionPipeline()
    report = pipeline.run_drift(
        DriftConfig(
            seed=args.seed,
            n_items=args.items,
            n_sources=args.sources,
            epochs=args.epochs,
            value_change_rate=args.value_change_rate,
            birth_rate=args.birth_rate,
            death_rate=args.death_rate,
            rename_rate=args.rename_rate,
        )
    )
    print(report.table())
    print(
        f"{report.epochs} epochs over {report.base_claims} base claims; "
        f"served version {report.final_version} "
        f"in {report.wall_seconds:.2f}s"
    )
    if args.json:
        _dump_json(args.json, report.to_json_dict())
        print(f"report written to {args.json}")
    if args.metrics_out:
        _dump_json(
            args.metrics_out, pipeline.metrics.snapshot().to_json_dict()
        )
        print(f"metrics written to {args.metrics_out}")
    return 0


def _run_copying(args) -> int:
    from repro.core.pipeline import KnowledgeBaseConstructionPipeline
    from repro.synth.copying import CopyingConfig

    pipeline = KnowledgeBaseConstructionPipeline()
    report = pipeline.run_copying(
        CopyingConfig(
            seed=args.seed,
            n_items=args.items,
            n_independent=args.independents,
            n_copiers=args.copiers,
            copy_fraction=args.copy_fraction,
            victim_accuracy=args.victim_accuracy,
            lag=args.lag,
        )
    )
    print(report.table())
    aware = report.mode("correlation-aware")
    blind = report.mode("correlation-blind")
    print(
        f"correlation-aware suppressed {aware.suppressed}/"
        f"{report.copied_errors} copied errors vs {blind.suppressed} "
        f"correlation-blind, in {report.wall_seconds:.2f}s"
    )
    if args.json:
        _dump_json(args.json, report.to_json_dict())
        print(f"report written to {args.json}")
    if args.metrics_out:
        _dump_json(
            args.metrics_out, pipeline.metrics.snapshot().to_json_dict()
        )
        print(f"metrics written to {args.metrics_out}")
    return 0


def _run_tenants(args) -> int:
    from repro.core.pipeline import (
        KnowledgeBaseConstructionPipeline,
        PipelineConfig,
    )
    from repro.synth.tenants import TenantMixConfig

    pipeline = KnowledgeBaseConstructionPipeline(
        PipelineConfig(checkpoint_dir=args.checkpoint_root)
    )
    report = pipeline.run_tenants(
        TenantMixConfig(
            n_tenants=args.n_tenants,
            seed=args.seed,
            kinds=tuple(
                kind for kind in args.kinds.split(",") if kind
            ),
            n_items=args.items,
            n_sources=args.sources,
            parts=args.parts,
            epochs=args.epochs,
        )
    )
    print(report.table())
    halted = [row.name for row in report.rows if row.halted]
    print(
        f"{report.tenants} tenants drained in {report.rounds} rounds "
        f"({len(halted)} halted) in {report.wall_seconds:.2f}s"
    )
    if args.json:
        _dump_json(args.json, report.to_json_dict())
        print(f"report written to {args.json}")
    if args.metrics_out:
        _dump_json(
            args.metrics_out, pipeline.metrics.snapshot().to_json_dict()
        )
        print(f"metrics written to {args.metrics_out}")
    return 0


def _run_query(args) -> int:
    from repro.rdf.io import load_claims_tsv
    from repro.rdf.query import TriplePattern, Var, GraphQuery

    store = load_claims_tsv(args.path)
    pattern = TriplePattern(
        args.subject if args.subject else Var("s"),
        args.predicate if args.predicate else Var("p"),
        args.obj if args.obj else Var("o"),
    )
    rows = GraphQuery([pattern]).solve(store)
    for binding in rows[: args.limit]:
        subject = args.subject or binding.get("s", "")
        predicate = args.predicate or binding.get("p", "")
        obj = args.obj or binding.get("o", "")
        print(f"({subject}, {predicate}, {obj})")
    print(f"{len(rows)} solutions")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
