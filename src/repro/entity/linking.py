"""Entity linking: mentions → known entities.

Extractors produce entity *mentions* (surface strings).  The linker
maps a mention to an existing entity of the ontology when one matches
well enough — exact (normalised) surface match first, then fuzzy
matching over names and aliases — and reports the rest as unlinked, to
be handed to new-entity discovery.

Matching runs as a 3-tier cascade when ``blocking`` is on (the
default):

* **tier 1** — exact normalised-surface hash hit;
* **tier 2** — candidate generation through
  :class:`repro.entity.blocking.SurfaceBlockingIndex` (MinHash/LSH
  buckets + bounded token/prefix postings);
* **tier 3** — the expensive :func:`surface_similarity` scorer, run
  only on tier-2 survivors in catalog order, so the argmax and its
  tie-breaking match the brute-force loop.

``blocking=False`` keeps the reference brute-force scan over the full
catalog; pools at or below ``brute_floor`` fall back to it as well
(blocking an almost-empty catalog costs more than it saves).  Catalog
surfaces are normalised and tokenised exactly once, at construction —
``link()`` builds one :class:`SurfaceForm` for the mention and never
re-tokenises the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.entity.blocking import (
    DEFAULT_BRUTE_FLOOR,
    BlockingStats,
    SurfaceBlockingIndex,
)
from repro.rdf.ontology import Entity
from repro.textproc.normalize import normalize_name
from repro.textproc.similarity import jaro_winkler, token_set_jaccard

MENTION_PREFIX = "mention:"

_CONNECTIVES = frozenset({"of", "the", "a", "an", "in", "for"})


@dataclass(frozen=True, slots=True)
class SurfaceForm:
    """A surface pre-normalised and pre-tokenised for repeated scoring.

    ``tokens`` feeds the token-Jaccard signal; ``content_tokens``
    (connectives removed) feeds the permutation/containment boosts.
    Building the form once per catalog entry is what keeps ``link()``
    from re-tokenising the whole catalog on every call.
    """

    norm: str
    tokens: frozenset[str]
    content_tokens: frozenset[str]

    @classmethod
    def from_norm(cls, norm: str) -> "SurfaceForm":
        """Form of an already-normalised surface."""
        tokens = frozenset(norm.split())
        return cls(
            norm,
            tokens,
            frozenset(t for t in tokens if t not in _CONNECTIVES),
        )

    @classmethod
    def build(cls, surface: str) -> "SurfaceForm":
        return cls.from_norm(normalize_name(surface))


def form_similarity(left: SurfaceForm, right: SurfaceForm) -> float:
    """:func:`surface_similarity` over precomputed forms.

    Scores are identical to the string version — the same Jaro-Winkler
    / token-Jaccard max and the same token-set boosts — without
    re-normalising or re-splitting either side.
    """
    if left.norm == right.norm:
        score = 1.0
    else:
        score = max(
            jaro_winkler(left.norm, right.norm),
            token_set_jaccard(left.tokens, right.tokens),
        )
    left_tokens = left.content_tokens
    right_tokens = right.content_tokens
    if left_tokens and left_tokens == right_tokens:
        return max(score, 0.9)
    if left_tokens and right_tokens and (
        left_tokens <= right_tokens or right_tokens <= left_tokens
    ):
        return max(score, 0.85)
    return score


def surface_similarity(left: str, right: str) -> float:
    """Similarity between two entity surfaces for linking/clustering.

    Extends character/token name similarity with token-set reasoning on
    content words: a permutation ("Adelaide University" ~ "University
    of Adelaide") scores 0.9 and a containment ("Atlantis" ⊆ "Republic
    of Atlantis") scores 0.85 — both common co-reference shapes.
    """
    return form_similarity(SurfaceForm.build(left), SurfaceForm.build(right))


def _link_similarity(left: str, right: str) -> float:
    return surface_similarity(left, right)


def mention_subject(surface: str) -> str:
    """The subject id used for an unlinked mention."""
    return MENTION_PREFIX + normalize_name(surface)


def is_mention(subject: str) -> bool:
    """Is a triple subject an unlinked mention id?"""
    return subject.startswith(MENTION_PREFIX)


@dataclass(frozen=True, slots=True)
class LinkDecision:
    """Outcome of linking one mention."""

    surface: str
    entity: Entity | None
    score: float

    @property
    def linked(self) -> bool:
        return self.entity is not None


class EntityLinker:
    """Match mention surfaces against an entity index.

    Parameters
    ----------
    entity_index:
        Surface form → entity (from
        :meth:`repro.rdf.ontology.Ontology.entity_index`).
    min_similarity:
        Fuzzy-match acceptance threshold; matches below it stay
        unlinked.
    blocking:
        Generate fuzzy candidates through the MinHash/LSH blocking
        index instead of scanning the whole catalog.  ``False`` keeps
        the reference brute-force loop.
    brute_floor:
        Candidate pools at or below this size are scanned exhaustively
        even with blocking on.
    """

    def __init__(
        self,
        entity_index: dict[str, Entity],
        *,
        min_similarity: float = 0.88,
        blocking: bool = True,
        brute_floor: int = DEFAULT_BRUTE_FLOOR,
    ) -> None:
        self._exact = {
            normalize_name(surface): entity
            for surface, entity in entity_index.items()
        }
        self.min_similarity = min_similarity
        self.blocking = blocking
        self.brute_floor = brute_floor
        self.blocking_stats = BlockingStats("linker")
        # Fuzzy candidates bucketed by class for optional restriction.
        self._by_class: dict[str, list[tuple[str, Entity]]] = {}
        for surface, entity in self._exact.items():
            self._by_class.setdefault(entity.class_name, []).append(
                (surface, entity)
            )
        # Catalog forms, computed once.  ``_entries`` follows the exact
        # order the brute-force loop visits (classes in insertion
        # order, surfaces within each class), so ascending entry ids
        # replay its tie-breaking.
        self._forms: dict[str, SurfaceForm] = {
            norm: SurfaceForm.from_norm(norm) for norm in self._exact
        }
        self._entries: list[tuple[SurfaceForm, Entity]] = []
        self._class_pool: dict[str, int] = {}
        index = SurfaceBlockingIndex() if blocking else None
        for class_name, pairs in self._by_class.items():
            self._class_pool[class_name] = len(pairs)
            for norm, entity in pairs:
                form = self._forms[norm]
                if index is not None:
                    index.add(len(self._entries), norm, form.content_tokens)
                self._entries.append((form, entity))
        self._index = index

    def publish_blocking_metrics(self, registry) -> None:
        """Fold cascade counters (and, when blocking is on, the LSH
        bucket-size histogram) into a metrics registry."""
        self.blocking_stats.publish(registry, self._index)

    def link(self, surface: str, class_name: str | None = None) -> LinkDecision:
        """Link one mention; optionally restricted to a class."""
        normalized = normalize_name(surface)
        stats = self.blocking_stats
        exact = self._exact.get(normalized)
        if exact is not None and (
            class_name is None or exact.class_name == class_name
        ):
            stats.tier1_hits += 1
            return LinkDecision(surface, exact, 1.0)
        probe = SurfaceForm.from_norm(normalized)
        best: Entity | None = None
        best_score = 0.0
        pool = (
            len(self._entries)
            if class_name is None
            else self._class_pool.get(class_name, 0)
        )
        if self._index is not None and pool > self.brute_floor:
            candidate_ids = self._index.candidates(
                probe.norm, probe.content_tokens
            )
            if class_name is not None:
                candidate_ids = [
                    entry_id
                    for entry_id in candidate_ids
                    if self._entries[entry_id][1].class_name == class_name
                ]
            stats.observe_candidates(len(candidate_ids), pool)
            stats.tier3_scored += len(candidate_ids)
            for entry_id in candidate_ids:
                form, entity = self._entries[entry_id]
                score = form_similarity(probe, form)
                if score > best_score:
                    best, best_score = entity, score
        else:
            # Reference brute-force loop (also the small-pool fallback).
            stats.fallback_queries += 1
            if class_name is None:
                candidates = [
                    pair for pairs in self._by_class.values() for pair in pairs
                ]
            else:
                candidates = self._by_class.get(class_name, [])
            stats.tier3_scored += len(candidates)
            for candidate_surface, entity in candidates:
                score = form_similarity(probe, self._forms[candidate_surface])
                if score > best_score:
                    best, best_score = entity, score
        if best is not None and best_score >= self.min_similarity:
            return LinkDecision(surface, best, best_score)
        return LinkDecision(surface, None, best_score)
