"""Entity linking: mentions → known entities.

Extractors produce entity *mentions* (surface strings).  The linker
maps a mention to an existing entity of the ontology when one matches
well enough — exact (normalised) surface match first, then fuzzy
matching over names and aliases — and reports the rest as unlinked, to
be handed to new-entity discovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rdf.ontology import Entity
from repro.textproc.normalize import normalize_name
from repro.textproc.similarity import name_similarity

MENTION_PREFIX = "mention:"

_CONNECTIVES = frozenset({"of", "the", "a", "an", "in", "for"})


def surface_similarity(left: str, right: str) -> float:
    """Similarity between two entity surfaces for linking/clustering.

    Extends :func:`name_similarity` with token-set reasoning on content
    words: a permutation ("Adelaide University" ~ "University of
    Adelaide") scores 0.9 and a containment ("Atlantis" ⊆ "Republic of
    Atlantis") scores 0.85 — both common co-reference shapes.
    """
    left_norm = normalize_name(left)
    right_norm = normalize_name(right)
    left_tokens = {t for t in left_norm.split() if t not in _CONNECTIVES}
    right_tokens = {t for t in right_norm.split() if t not in _CONNECTIVES}
    score = name_similarity(left_norm, right_norm)
    if left_tokens and left_tokens == right_tokens:
        return max(score, 0.9)
    if left_tokens and right_tokens and (
        left_tokens <= right_tokens or right_tokens <= left_tokens
    ):
        return max(score, 0.85)
    return score


def _link_similarity(left: str, right: str) -> float:
    return surface_similarity(left, right)


def mention_subject(surface: str) -> str:
    """The subject id used for an unlinked mention."""
    return MENTION_PREFIX + normalize_name(surface)


def is_mention(subject: str) -> bool:
    """Is a triple subject an unlinked mention id?"""
    return subject.startswith(MENTION_PREFIX)


@dataclass(frozen=True, slots=True)
class LinkDecision:
    """Outcome of linking one mention."""

    surface: str
    entity: Entity | None
    score: float

    @property
    def linked(self) -> bool:
        return self.entity is not None


class EntityLinker:
    """Match mention surfaces against an entity index.

    Parameters
    ----------
    entity_index:
        Surface form → entity (from
        :meth:`repro.rdf.ontology.Ontology.entity_index`).
    min_similarity:
        Fuzzy-match acceptance threshold; matches below it stay
        unlinked.
    """

    def __init__(
        self,
        entity_index: dict[str, Entity],
        *,
        min_similarity: float = 0.88,
    ) -> None:
        self._exact = {
            normalize_name(surface): entity
            for surface, entity in entity_index.items()
        }
        self.min_similarity = min_similarity
        # Fuzzy candidates bucketed by class for optional restriction.
        self._by_class: dict[str, list[tuple[str, Entity]]] = {}
        for surface, entity in self._exact.items():
            self._by_class.setdefault(entity.class_name, []).append(
                (surface, entity)
            )

    def link(self, surface: str, class_name: str | None = None) -> LinkDecision:
        """Link one mention; optionally restricted to a class."""
        normalized = normalize_name(surface)
        exact = self._exact.get(normalized)
        if exact is not None and (
            class_name is None or exact.class_name == class_name
        ):
            return LinkDecision(surface, exact, 1.0)
        best: Entity | None = None
        best_score = 0.0
        if class_name is None:
            candidates = [
                pair for pairs in self._by_class.values() for pair in pairs
            ]
        else:
            candidates = self._by_class.get(class_name, [])
        for candidate_surface, entity in candidates:
            score = _link_similarity(normalized, candidate_surface)
            if score > best_score:
                best, best_score = entity, score
        if best is not None and best_score >= self.min_similarity:
            return LinkDecision(surface, best, best_score)
        return LinkDecision(surface, None, best_score)
