"""Entity layer: linking, joint discovery, attribute resolution."""

from repro.entity.discovery import (
    EntityCluster,
    JointEntityResolver,
    MentionRecord,
    ResolutionOutcome,
    resolve_mention_triples,
)
from repro.entity.linking import (
    EntityLinker,
    LinkDecision,
    is_mention,
    mention_subject,
)
from repro.entity.resolution import (
    AttributeResolution,
    AttributeResolver,
    apply_resolution,
    build_value_profiles,
)

__all__ = [
    "AttributeResolution",
    "AttributeResolver",
    "EntityCluster",
    "EntityLinker",
    "JointEntityResolver",
    "LinkDecision",
    "MentionRecord",
    "ResolutionOutcome",
    "apply_resolution",
    "build_value_profiles",
    "is_mention",
    "mention_subject",
    "resolve_mention_triples",
]
