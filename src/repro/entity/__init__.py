"""Entity layer: linking, joint discovery, attribute resolution."""

from repro.entity.blocking import (
    BlockingStats,
    MinHashLSH,
    QGramIndex,
    SurfaceBlockingIndex,
    shingle_surface,
)
from repro.entity.discovery import (
    EntityCluster,
    JointEntityResolver,
    MentionRecord,
    ResolutionOutcome,
    resolve_mention_triples,
)
from repro.entity.linking import (
    EntityLinker,
    LinkDecision,
    SurfaceForm,
    form_similarity,
    is_mention,
    mention_subject,
    surface_similarity,
)
from repro.entity.resolution import (
    AttributeResolution,
    AttributeResolver,
    apply_resolution,
    build_value_profiles,
)

__all__ = [
    "AttributeResolution",
    "AttributeResolver",
    "BlockingStats",
    "EntityCluster",
    "EntityLinker",
    "JointEntityResolver",
    "LinkDecision",
    "MentionRecord",
    "MinHashLSH",
    "QGramIndex",
    "ResolutionOutcome",
    "SurfaceBlockingIndex",
    "SurfaceForm",
    "apply_resolution",
    "build_value_profiles",
    "form_similarity",
    "is_mention",
    "mention_subject",
    "resolve_mention_triples",
    "shingle_surface",
    "surface_similarity",
]
