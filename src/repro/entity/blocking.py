"""Blocking for entity matching: MinHash/LSH + exact q-gram filters.

The entity layer's hot paths — mention linking, joint cluster
resolution and attribute-variant resolution — all reduce to "find the
best match for one probe among N candidates".  Scanning all N with the
expensive scorers (``surface_similarity``, ``_profiles_match``) is
quadratic over a corpus whose probes also number ~N; "From Data Fusion
to Knowledge Fusion" is blunt that fusion quality work is moot when
candidate matching cannot keep up.  This module supplies the candidate
generators that turn those scans into a 3-tier cascade:

* **tier 1 — exact key**: a normalised-surface hash hit (handled by the
  callers; free).
* **tier 2 — cheap blocked fuzzy**: candidates from this module — the
  union of banded MinHash/LSH bucket collisions (Jaccard-family
  similarity over token + character shingles), inverted token postings
  (bounded, for permutation/containment shapes), a short prefix bucket
  (misspellings that keep their head), and profile-pair postings.
* **tier 3 — expensive scorer**: the original similarity functions run
  only on tier-2 survivors, replayed in the same order the brute-force
  loop would have visited them, so the argmax (and its tie-breaking)
  is preserved.

Everything is deterministic and seed-stable: hash permutations come
from a seeded PRNG over CRC32 shingle hashes (never the salted builtin
``hash``), so two processes — or two runs years apart — build the same
signatures and the same buckets.

:class:`QGramIndex` is the one *exact* blocker: positional q-gram
count filtering guarantees that any pair within the misspelling window
(edit distance <= 2, length difference <= 2) shares at least one
3-gram once the longer string has >= 10 characters; shorter names live
in a small pool that is scanned exhaustively.  AttributeResolver's
misspelling tier uses it instead of a length-window scan, keeping its
verdicts provably identical to brute force.

Candidate sets from :class:`SurfaceBlockingIndex` are *probabilistic*
supersets: the LSH tier can in principle miss a pair whose shingle
Jaccard is low even though the expensive scorer would accept it.  The
repo's contract is therefore pinned empirically — property tests replay
seeded worlds through both paths and require byte-identical verdicts —
and callers fall back to brute force outright for small pools
(``brute_floor``), where blocking buys nothing.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

__all__ = [
    "BlockingStats",
    "MinHashLSH",
    "QGramIndex",
    "SurfaceBlockingIndex",
    "shingle_surface",
]

# Mersenne prime 2^31 - 1: the modulus of the universal hash family
# h(x) = (a*x + b) mod P used for the MinHash permutations.
_PRIME = 2_147_483_647

# Defaults shared by every SurfaceBlockingIndex (linker, discovery).
# 32 permutations banded 16x2 favours recall: a pair with shingle
# Jaccard s collides in >= 1 band with probability 1 - (1 - s^2)^16
# (~0.99 at s = 0.5, the typo regime), at the cost of admitting some
# low-similarity pairs that tier 3 then rejects.
DEFAULT_NUM_PERM = 32
DEFAULT_BANDS = 16
DEFAULT_SEED = 2015

# Posting lists longer than this are skipped at query time: a token
# shared by thousands of surfaces has no blocking power, and unioning
# its posting list would reintroduce the linear scan.  Deterministic,
# so candidate sets stay a pure function of the indexed corpus.
DEFAULT_TOKEN_CAP = 2048

# Pools at or below this size are scanned brute-force by the callers:
# index maintenance costs more than it saves, and the reference loop
# is trivially verdict-identical.
DEFAULT_BRUTE_FLOOR = 64

_PREFIX_LEN = 4
_SUFFIX_LEN = 4

# Short-surface pool: Jaro-Winkler accepts single-edit pairs of short
# strings that share no 3-gram, token, or affix bucket ("nzj" ~
# "ndzj"), so surfaces this short are pooled and scanned exhaustively
# by probes short enough to sit in their edit window.  Longer pairs
# within one edit always keep their 4-char prefix or suffix intact
# (the two regions are disjoint from length 8 up), so the affix
# buckets cover them exactly.
_SHORT_SURFACE_LEN = 7
_SHORT_SURFACE_QUERY_LEN = 9

# QGramIndex geometry: q-gram width, the edit budget the misspelling
# check allows, and the derived length bounds (see class docstring).
_Q = 3
_EDIT_BUDGET = 2
# Longer string >= _LONG_LEN guarantees a shared q-gram for any pair
# within the edit budget: shared >= L - (q-1) - q*k = 10 - 2 - 6 = 2.
_LONG_LEN = 10
_SHORT_POOL_LEN = _LONG_LEN - 1           # names kept in the short pool
_SHORT_QUERY_LEN = _SHORT_POOL_LEN + _EDIT_BUDGET  # probes that scan it


def _shingle_hash(shingle: str) -> int:
    """Deterministic 32-bit hash of one shingle (process-stable)."""
    return zlib.crc32(shingle.encode("utf-8"))


def shingle_surface(norm: str, tokens: frozenset[str] | None = None):
    """Shingle set of a normalised surface: tokens + char 3-grams.

    Token shingles make permutations and containments near-identical
    under Jaccard; character 3-grams keep misspelled pairs similar even
    when no token survives the typo.  Surfaces shorter than 3 chars
    contribute themselves.
    """
    if tokens is None:
        tokens = frozenset(norm.split())
    if len(norm) >= _Q:
        grams = {norm[i:i + _Q] for i in range(len(norm) - _Q + 1)}
    else:
        grams = {norm} if norm else set()
    return frozenset(grams | set(tokens))


@dataclass(slots=True)
class BlockingStats:
    """Cascade accounting for one blocking site (linker/discovery/...).

    Count-type only — pure functions of the corpus and seeds, so they
    ride the obs determinism contract.  ``publish`` bridges the totals
    into a :class:`repro.obs.MetricsRegistry`; like
    ``publish_cache_metrics`` it must run once per run against a fresh
    registry, and takes the registry as an argument so the entity layer
    keeps no obs import.
    """

    site: str
    tier1_hits: int = 0          # exact-key resolutions (no scoring)
    tier2_candidates: int = 0    # candidates produced by blocking
    tier3_scored: int = 0        # expensive-scorer invocations
    pruned: int = 0              # pool entries blocking skipped
    queries: int = 0             # probes that reached tier 2
    fallback_queries: int = 0    # probes brute-forced (small pool/off)
    # candidate-set size -> number of probes that saw it (histogram
    # source; bounded by the variety of candidate-set sizes).
    candidate_sizes: dict[int, int] = field(default_factory=dict)

    def observe_candidates(self, count: int, pool: int) -> None:
        self.queries += 1
        self.tier2_candidates += count
        self.pruned += max(0, pool - count)
        self.candidate_sizes[count] = self.candidate_sizes.get(count, 0) + 1

    def publish(self, registry, index: "SurfaceBlockingIndex | None" = None):
        """Fold the totals into a metrics registry (+= semantics)."""
        site = self.site
        registry.counter("blocking_tier1_hits_total", site=site).inc(
            self.tier1_hits
        )
        registry.counter("blocking_tier2_candidates_total", site=site).inc(
            self.tier2_candidates
        )
        registry.counter("blocking_tier3_scored_total", site=site).inc(
            self.tier3_scored
        )
        registry.counter("blocking_candidates_pruned_total", site=site).inc(
            self.pruned
        )
        registry.counter("blocking_queries_total", site=site).inc(
            self.queries
        )
        registry.counter("blocking_fallback_queries_total", site=site).inc(
            self.fallback_queries
        )
        candidates = registry.histogram("blocking_candidates", site=site)
        for size in sorted(self.candidate_sizes):
            for _ in range(self.candidate_sizes[size]):
                candidates.observe(size)
        if index is not None:
            buckets = registry.histogram("blocking_bucket_size", site=site)
            for size in index.bucket_sizes():
                buckets.observe(size)


class MinHashLSH:
    """Banded MinHash index over shingle sets, seeded and stable.

    ``num_perm`` hash permutations are split into ``bands`` bands of
    ``num_perm // bands`` rows; two sets land in the same bucket of a
    band when their signatures agree on every row of that band, which
    happens with probability ``s^rows`` for Jaccard similarity ``s``.
    Members are integer ids assigned by the caller.
    """

    __slots__ = (
        "num_perm", "bands", "rows", "_params", "_row_cache", "_buckets",
    )

    def __init__(
        self,
        *,
        num_perm: int = DEFAULT_NUM_PERM,
        bands: int = DEFAULT_BANDS,
        seed: int = DEFAULT_SEED,
    ) -> None:
        if num_perm < 1 or bands < 1 or num_perm % bands:
            raise ValueError(
                f"num_perm ({num_perm}) must be a positive multiple of "
                f"bands ({bands})"
            )
        self.num_perm = num_perm
        self.bands = bands
        self.rows = num_perm // bands
        rng = random.Random(seed)
        self._params = tuple(
            (rng.randrange(1, _PRIME), rng.randrange(0, _PRIME))
            for _ in range(num_perm)
        )
        # shingle -> its value under every permutation; shingles repeat
        # massively across surfaces (small token/3-gram alphabets), so
        # this cache does most of the signature work exactly once.
        self._row_cache: dict[str, tuple[int, ...]] = {}
        # band index -> band key tuple -> member ids.
        self._buckets: list[dict[tuple[int, ...], list[int]]] = [
            {} for _ in range(bands)
        ]

    def _rows_of(self, shingle: str) -> tuple[int, ...]:
        cached = self._row_cache.get(shingle)
        if cached is None:
            base = _shingle_hash(shingle)
            cached = tuple(
                (a * base + b) % _PRIME for a, b in self._params
            )
            self._row_cache[shingle] = cached
        return cached

    def signature(self, shingles) -> tuple[int, ...]:
        """The MinHash signature of a shingle set (empty set => sentinel
        signature of all ``_PRIME``)."""
        signature = [_PRIME] * self.num_perm
        for shingle in shingles:
            row = self._rows_of(shingle)
            signature = [
                mine if mine < theirs else theirs
                for mine, theirs in zip(signature, row)
            ]
        return tuple(signature)

    def _band_keys(self, signature: tuple[int, ...]):
        rows = self.rows
        for band in range(self.bands):
            yield band, signature[band * rows:(band + 1) * rows]

    def add(self, member: int, shingles) -> None:
        signature = self.signature(shingles)
        for band, key in self._band_keys(signature):
            self._buckets[band].setdefault(key, []).append(member)

    def candidates(self, shingles, into: set[int]) -> None:
        """Union every colliding bucket's members into ``into``."""
        signature = self.signature(shingles)
        for band, key in self._band_keys(signature):
            members = self._buckets[band].get(key)
            if members:
                into.update(members)

    def bucket_sizes(self):
        """Sizes of every non-empty bucket (histogram source)."""
        for buckets in self._buckets:
            for members in buckets.values():
                yield len(members)


class SurfaceBlockingIndex:
    """Tier-2 candidate generator over (id, normalised surface) pairs.

    Ids are caller-assigned ints whose ascending order must equal the
    brute-force visitation order — candidates are returned sorted, so
    the tier-3 replay keeps the reference loop's tie-breaking.

    Six sub-blocks feed the candidate union:

    * LSH bucket collisions over :func:`shingle_surface` shingles;
    * inverted token postings (skipped per-token beyond ``token_cap``
      members — ubiquitous tokens have no blocking power);
    * ``_PREFIX_LEN``-char prefix and ``_SUFFIX_LEN``-char suffix
      buckets (same cap): a surface within one edit of the probe keeps
      at least one of the two affixes intact once both sides reach
      length 8, exactly the regime where Jaro-Winkler is most generous;
    * a short-surface pool (norm ≤ ``_SHORT_SURFACE_LEN``) scanned by
      probes of norm ≤ ``_SHORT_SURFACE_QUERY_LEN``, covering the tiny
      strings whose 3-grams and affixes a single edit destroys;
    * profile-pair postings (:meth:`add_pair`) for callers whose score
      blends in (attribute, value) overlap.
    """

    __slots__ = (
        "_lsh", "token_cap", "_tokens", "_prefixes", "_suffixes",
        "_short", "_pairs", "_size",
    )

    def __init__(
        self,
        *,
        num_perm: int = DEFAULT_NUM_PERM,
        bands: int = DEFAULT_BANDS,
        seed: int = DEFAULT_SEED,
        token_cap: int = DEFAULT_TOKEN_CAP,
    ) -> None:
        self._lsh = MinHashLSH(num_perm=num_perm, bands=bands, seed=seed)
        self.token_cap = token_cap
        self._tokens: dict[str, set[int]] = {}
        self._prefixes: dict[str, set[int]] = {}
        self._suffixes: dict[str, set[int]] = {}
        self._short: set[int] = set()
        self._pairs: dict[object, set[int]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, member: int, norm: str, tokens: frozenset[str]) -> None:
        """Index one surface under ``member`` (re-adds are idempotent
        for the posting blocks; the LSH tier stores one entry per
        distinct surface added)."""
        self._size += 1
        self._lsh.add(member, shingle_surface(norm, tokens))
        for token in tokens:
            self._tokens.setdefault(token, set()).add(member)
        if norm:
            self._prefixes.setdefault(norm[:_PREFIX_LEN], set()).add(member)
            self._suffixes.setdefault(norm[-_SUFFIX_LEN:], set()).add(member)
        if len(norm) <= _SHORT_SURFACE_LEN:
            self._short.add(member)

    def add_pair(self, member: int, pair) -> None:
        """Index one profile (attribute, value) pair for ``member``."""
        self._pairs.setdefault(pair, set()).add(member)

    def candidates(
        self, norm: str, tokens: frozenset[str], pairs=()
    ) -> list[int]:
        """Sorted candidate ids for one probe surface (+profile)."""
        found: set[int] = set()
        self._lsh.candidates(shingle_surface(norm, tokens), found)
        cap = self.token_cap
        for token in tokens:
            posting = self._tokens.get(token)
            if posting is not None and len(posting) <= cap:
                found.update(posting)
        if norm:
            for bucket in (
                self._prefixes.get(norm[:_PREFIX_LEN]),
                self._suffixes.get(norm[-_SUFFIX_LEN:]),
            ):
                if bucket is not None and len(bucket) <= cap:
                    found.update(bucket)
        if len(norm) <= _SHORT_SURFACE_QUERY_LEN:
            found.update(self._short)
        for pair in pairs:
            posting = self._pairs.get(pair)
            if posting is not None:
                found.update(posting)
        return sorted(found)

    def bucket_sizes(self):
        return self._lsh.bucket_sizes()


class QGramIndex:
    """Exact candidate generation for the misspelling window.

    Guarantees: for names ``x`` and ``y`` with ``|len(x) - len(y)| <= 2``
    and ``levenshtein(x, y) <= 2`` (the widest window
    ``is_probable_misspelling`` accepts), ``candidates(x)`` contains
    ``y`` whenever ``y`` was added.  Proof sketch: an edit script of
    length ``k`` destroys at most ``q*k`` of the longer string's
    ``L - q + 1`` q-grams, so at ``L >= 10`` (``q=3``, ``k=2``) at
    least one 3-gram survives in both and the inverted postings find
    the pair; pairs whose longer side is shorter than 10 involve a name
    of length <= 9, which sits in the short pool that every probe of
    length <= 11 scans exhaustively.
    """

    __slots__ = ("_grams", "_short", "_all_short_probe")

    def __init__(self) -> None:
        self._grams: dict[str, list[int]] = {}
        self._short: list[int] = []
        self._all_short_probe = _SHORT_QUERY_LEN

    def add(self, member: int, name: str) -> None:
        for i in range(len(name) - _Q + 1):
            self._grams.setdefault(name[i:i + _Q], []).append(member)
        if len(name) <= _SHORT_POOL_LEN:
            self._short.append(member)

    def candidates(self, name: str, into: set[int]) -> None:
        """Union every member that could sit in ``name``'s misspelling
        window into ``into`` (a superset; callers re-check exactly)."""
        for i in range(len(name) - _Q + 1):
            posting = self._grams.get(name[i:i + _Q])
            if posting:
                into.update(posting)
        if len(name) <= self._all_short_probe:
            into.update(self._short)
