"""Attribute resolution: misspellings, synonyms and sub-attributes.

The fusion phase "identifies the misspellings, synonyms, and
sub-attributes" among extracted attribute names (Sec. 3).  The resolver
builds a mapping ``variant → canonical`` per class:

* **misspellings** — small edit distance to a better-supported name;
* **synonyms** — token permutations ("date of publication" ↔
  "publication date", minus connective words) and qualifier wrappers
  added by noisy sources ("official publisher" → "publisher",
  "price of record" → "price");
* **value-profile merges** — two names whose observed
  (entity, value) pairs largely coincide describe the same attribute
  even when their surfaces differ;
* **sub-attributes** — a name that *extends* another by a specialising
  modifier ("main library" vs "library") is recorded as a child, not
  merged: its facts remain valid but more specific.

Resolution always maps lower-supported variants onto higher-supported
canonicals, so a typo never absorbs the true spelling.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.entity.blocking import BlockingStats, QGramIndex
from repro.rdf.triple import ScoredTriple, Triple
from repro.textproc.normalize import is_probable_misspelling

# Qualifier wrappers that noisy sources prepend/append to a base name.
_QUALIFIER_PREFIXES = ("official", "total", "overall")
_QUALIFIER_SUFFIXES = ("of record",)

# Specialising modifiers marking a sub-attribute rather than a synonym.
_SUBATTRIBUTE_MODIFIERS = (
    "main", "first", "largest", "oldest", "primary", "famous",
)

_CONNECTIVES = frozenset({"of", "the", "a", "an", "in", "for"})


@dataclass(slots=True)
class AttributeResolution:
    """The resolver's verdict for one class."""

    class_name: str
    canonical_map: dict[str, str] = field(default_factory=dict)
    sub_attributes: dict[str, str] = field(default_factory=dict)  # child -> parent

    def resolve(self, name: str) -> str:
        """Canonical name for a possibly-variant attribute name."""
        return self.canonical_map.get(name, name)


def _content_tokens(name: str) -> frozenset[str]:
    return frozenset(
        token for token in name.split(" ") if token not in _CONNECTIVES
    )


def _strip_qualifiers(name: str) -> str:
    for prefix in _QUALIFIER_PREFIXES:
        if name.startswith(prefix + " ") and len(name) > len(prefix) + 1:
            return name[len(prefix) + 1 :]
    for suffix in _QUALIFIER_SUFFIXES:
        if name.endswith(" " + suffix) and len(name) > len(suffix) + 1:
            return name[: -(len(suffix) + 1)]
    return name


def _specialising_parent(name: str) -> str | None:
    """The parent name when ``name`` is a sub-attribute, else None."""
    for modifier in _SUBATTRIBUTE_MODIFIERS:
        if name.startswith(modifier + " ") and len(name) > len(modifier) + 1:
            return name[len(modifier) + 1 :]
    return None


class AttributeResolver:
    """Resolve attribute-name variants for one class.

    Parameters
    ----------
    support:
        Canonical name → evidence support; higher support wins merges.
    value_profiles:
        Optional name → set of (subject, value) pairs from extracted
        triples; used for profile-based merging.
    blocking:
        Route ``_find_target`` through the blocking indexes (the
        default).  ``False`` keeps the reference brute-force scan over
        every accepted canonical — the loop the blocked path's verdicts
        are pinned against.
    stats:
        Optional shared :class:`repro.entity.blocking.BlockingStats`
        (the pipeline passes one per run so per-class resolvers
        aggregate into a single "attributes" site).
    """

    def __init__(
        self,
        class_name: str,
        support: dict[str, int],
        value_profiles: dict[str, set[tuple[str, str]]] | None = None,
        *,
        profile_jaccard: float = 0.5,
        blocking: bool = True,
        stats: BlockingStats | None = None,
    ) -> None:
        self.class_name = class_name
        self.support = dict(support)
        self.value_profiles = value_profiles or {}
        self.profile_jaccard = profile_jaccard
        self.blocking = blocking
        self.stats = stats if stats is not None else BlockingStats("attributes")

    def run(self) -> AttributeResolution:
        resolution = AttributeResolution(self.class_name)
        names = sorted(
            self.support, key=lambda name: (-self.support[name], name)
        )
        self._tokens_cache = {name: _content_tokens(name) for name in names}
        if not self.blocking:
            return self._run_brute(resolution, names)
        # Blocking indexes over the accepted canonicals.  Each of the
        # four merge checks admits a cheap necessary condition, so a
        # variant only has to be compared against canonicals sharing
        # its full stripped name, its content-token set, at least one
        # 3-gram (or the short pool) for the misspelling window, or at
        # least one profile pair — instead of every canonical seen so
        # far (the old O(n²) scan).
        self._rank: dict[str, int] = {}  # canonical -> acceptance order
        self._canonicals: list[str] = []  # acceptance order -> canonical
        self._by_tokens: dict[frozenset[str], list[int]] = {}
        self._qgrams = QGramIndex()
        self._by_pair: dict[tuple[str, str], list[int]] = {}
        for name in names:
            target = self._find_target(name)
            if target is None:
                parent = _specialising_parent(name)
                if parent is not None and parent in self.support:
                    resolution.sub_attributes[name] = parent
                self._accept_canonical(name)
            else:
                resolution.canonical_map[name] = target
        return resolution

    # ------------------------------------------------------------------
    def _run_brute(self, resolution: AttributeResolution, names) -> AttributeResolution:
        """Reference path: scan every accepted canonical per variant."""
        canonical: list[str] = []
        stats = self.stats
        for name in names:
            stats.fallback_queries += 1
            target = self._find_target_brute(name, canonical)
            if target is None:
                parent = _specialising_parent(name)
                if parent is not None and parent in self.support:
                    resolution.sub_attributes[name] = parent
                canonical.append(name)
            else:
                resolution.canonical_map[name] = target
        return resolution

    def _find_target_brute(self, name: str, canonical: list[str]) -> str | None:
        stripped = _strip_qualifiers(name)
        tokens = self._tokens_cache[name]
        profile = self.value_profiles.get(name)
        name_len = len(name)
        for target in canonical:
            self.stats.tier3_scored += 1
            if stripped == target:
                return target
            if tokens and tokens == self._tokens_cache[target]:
                return target
            if abs(name_len - len(target)) <= 2 and is_probable_misspelling(
                name, target, normalized=True
            ):
                return target
            if profile and self._profiles_match(profile, target):
                return target
        return None

    def _accept_canonical(self, name: str) -> None:
        """Insert a newly accepted canonical into the blocking indexes."""
        member = len(self._canonicals)
        self._rank[name] = member
        self._canonicals.append(name)
        tokens = self._tokens_cache[name]
        if tokens:
            self._by_tokens.setdefault(tokens, []).append(member)
        self._qgrams.add(member, name)
        for pair in self.value_profiles.get(name) or ():
            self._by_pair.setdefault(pair, []).append(member)

    def _find_target(self, name: str) -> str | None:
        """The canonical name this variant should merge into, if any.

        Gathers candidates from the blocking indexes (a superset of
        every canonical any check could match — the q-gram filter is
        exact over the misspelling window, see
        :class:`repro.entity.blocking.QGramIndex`) and replays the
        checks against them in acceptance order, so the verdict is
        identical to scanning the full canonical list.
        """
        stripped = _strip_qualifiers(name)
        tokens = self._tokens_cache[name]
        profile = self.value_profiles.get(name)
        name_len = len(name)

        candidates: set[int] = set()
        rank = self._rank.get(stripped)
        if rank is not None:
            candidates.add(rank)
        if tokens:
            candidates.update(self._by_tokens.get(tokens, ()))
        self._qgrams.candidates(name, candidates)
        if profile:
            for pair in profile:
                candidates.update(self._by_pair.get(pair, ()))

        self.stats.observe_candidates(len(candidates), len(self._canonicals))
        for member in sorted(candidates):
            self.stats.tier3_scored += 1
            target = self._canonicals[member]
            if stripped == target:
                return target  # qualifier wrapper
            if tokens and tokens == self._tokens_cache[target]:
                return target  # token permutation ("date of publication")
            if abs(name_len - len(target)) <= 2 and is_probable_misspelling(
                name, target, normalized=True
            ):
                return target
            if profile and self._profiles_match(profile, target):
                return target
        return None

    def _profiles_match(
        self, profile: set[tuple[str, str]], target: str
    ) -> bool:
        other = self.value_profiles.get(target)
        if not other:
            return False
        # Intersect small-into-large and derive the union size
        # arithmetically — this comparison runs for every
        # (variant, canonical) pair, and building union sets dominated
        # the resolver's profile pass.
        if len(profile) > len(other):
            overlap = len(other & profile)
        else:
            overlap = len(profile & other)
        union = len(profile) + len(other) - overlap
        if union == 0:
            return False
        # Containment-leaning Jaccard: a low-support variant whose
        # profile sits inside the canonical's profile should merge.
        smaller = min(len(profile), len(other))
        return (
            overlap / union >= self.profile_jaccard
            or (smaller > 0 and overlap / smaller >= 0.8 and overlap >= 3)
        )


def build_value_profiles(
    triples: Iterable[ScoredTriple],
) -> dict[str, set[tuple[str, str]]]:
    """Name → set of (subject, casefolded value) pairs across claims."""
    profiles: dict[str, set[tuple[str, str]]] = {}
    for scored in triples:
        triple = scored.triple
        profiles.setdefault(triple.predicate, set()).add(
            (triple.subject, triple.obj.lexical.casefold())
        )
    return profiles


def apply_resolution(
    triples: Iterable[ScoredTriple],
    resolutions: dict[str, AttributeResolution],
    class_of_subject,
) -> list[ScoredTriple]:
    """Rewrite triple predicates through per-class resolutions.

    ``class_of_subject`` maps a subject id to its class name (or None
    when unknown — such triples pass through unchanged).
    """
    rewritten: list[ScoredTriple] = []
    for scored in triples:
        class_name = class_of_subject(scored.triple.subject)
        resolution = resolutions.get(class_name) if class_name else None
        if resolution is None:
            rewritten.append(scored)
            continue
        predicate = resolution.resolve(scored.triple.predicate)
        if predicate == scored.triple.predicate:
            rewritten.append(scored)
        else:
            rewritten.append(
                ScoredTriple(
                    Triple(
                        scored.triple.subject, predicate, scored.triple.obj
                    ),
                    scored.provenance,
                    scored.confidence,
                )
            )
    return rewritten
