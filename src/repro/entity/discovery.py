"""Joint entity linking and new-entity discovery.

Open IE adds entities the KB has never seen.  Following the paper's
plan (improving Wick et al.'s joint model, Sec. 3.1), mentions are
resolved *jointly*: each mention either links to an existing entity or
joins a cluster of co-referring unseen mentions; clusters maintain a
compact representation (canonical name + attribute/value profile) that
subsequent mentions are compared against, so linking decisions inform
discovery and vice versa.

The clustering is greedy agglomerative over a combined signal:

* name similarity between mention surface and cluster name, and
* attribute overlap: Jaccard of (attribute, value) pairs observed with
  the mention vs. the cluster profile.

With ``blocking`` on (the default) each class keeps a
:class:`repro.entity.blocking.SurfaceBlockingIndex` over its clusters,
grown as clusters are created and joined; an unlinked mention is scored
only against the clusters the index proposes (in creation order, so the
greedy argmax ties break exactly like the full scan).  Unlike the
linker there is no tier-1 exact shortcut here — an exact surface match
does not imply the best blended score, because the profile term can
favour another cluster.  ``blocking=False`` keeps the reference scan
over every cluster of the class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.entity.blocking import (
    DEFAULT_BRUTE_FLOOR,
    BlockingStats,
    SurfaceBlockingIndex,
)
from repro.entity.linking import (
    EntityLinker,
    LinkDecision,
    SurfaceForm,
    form_similarity,
    is_mention,
    mention_subject,
    surface_similarity,
)
from repro.rdf.ontology import Entity
from repro.rdf.triple import ScoredTriple, Triple


@dataclass(slots=True)
class MentionRecord:
    """One mention to resolve: surface + observed facts."""

    surface: str
    class_name: str
    facts: set[tuple[str, str]] = field(default_factory=set)  # (attr, value)


@dataclass(slots=True)
class EntityCluster:
    """A discovered (new) entity: its mentions and profile."""

    cluster_id: str
    class_name: str
    name: str  # canonical: the longest mention surface
    surfaces: set[str] = field(default_factory=set)
    profile: set[tuple[str, str]] = field(default_factory=set)

    def to_entity(self) -> Entity:
        """Materialise the cluster as an ontology entity."""
        aliases = tuple(
            sorted(surface for surface in self.surfaces if surface != self.name)
        )
        return Entity(self.cluster_id, self.name, self.class_name, aliases)


@dataclass(slots=True)
class ResolutionOutcome:
    """Results of joint resolution."""

    linked: dict[str, Entity] = field(default_factory=dict)  # surface -> entity
    clusters: list[EntityCluster] = field(default_factory=list)

    def new_entities(self) -> list[Entity]:
        return [cluster.to_entity() for cluster in self.clusters]


class _ClassBlock:
    """Blocking state for one class: index + per-cluster surface forms."""

    __slots__ = ("index", "forms")

    def __init__(self) -> None:
        self.index = SurfaceBlockingIndex()
        # cluster ordinal -> forms of its distinct surfaces.
        self.forms: list[list[SurfaceForm]] = []

    def new_cluster(self, form: SurfaceForm, facts) -> None:
        ordinal = len(self.forms)
        self.forms.append([form])
        self.index.add(ordinal, form.norm, form.content_tokens)
        for pair in facts:
            self.index.add_pair(ordinal, pair)

    def join(self, ordinal: int, form: SurfaceForm, new_facts) -> None:
        self.forms[ordinal].append(form)
        self.index.add(ordinal, form.norm, form.content_tokens)
        for pair in new_facts:
            self.index.add_pair(ordinal, pair)


class JointEntityResolver:
    """Greedy joint linking + discovery over a stream of mentions."""

    def __init__(
        self,
        linker: EntityLinker,
        *,
        cluster_threshold: float = 0.82,
        profile_weight: float = 0.35,
        blocking: bool = True,
        brute_floor: int = DEFAULT_BRUTE_FLOOR,
    ) -> None:
        if not 0 <= profile_weight <= 1:
            raise ValueError("profile_weight must lie in [0, 1]")
        self.linker = linker
        self.cluster_threshold = cluster_threshold
        self.profile_weight = profile_weight
        self.blocking = blocking
        self.brute_floor = brute_floor
        self.blocking_stats = BlockingStats("discovery")

    def resolve(self, mentions: list[MentionRecord]) -> ResolutionOutcome:
        """Resolve all mentions jointly.

        Mentions are processed longest-surface first so cluster
        canonical names prefer complete titles over fragments.
        """
        outcome = ResolutionOutcome()
        clusters_by_class: dict[str, list[EntityCluster]] = {}
        blocks: dict[str, _ClassBlock] = {}
        stats = self.blocking_stats
        counter = 0
        for mention in sorted(
            mentions, key=lambda record: (-len(record.surface), record.surface)
        ):
            decision: LinkDecision = self.linker.link(
                mention.surface, mention.class_name
            )
            if decision.linked:
                outcome.linked[mention.surface] = decision.entity
                continue
            clusters = clusters_by_class.setdefault(mention.class_name, [])
            best_cluster: EntityCluster | None = None
            best_ordinal = -1
            best_score = 0.0
            if self.blocking:
                block = blocks.get(mention.class_name)
                if block is None:
                    block = blocks[mention.class_name] = _ClassBlock()
                probe = SurfaceForm.build(mention.surface)
                if len(clusters) > self.brute_floor:
                    ordinals = block.index.candidates(
                        probe.norm, probe.content_tokens, mention.facts
                    )
                    stats.observe_candidates(len(ordinals), len(clusters))
                else:
                    ordinals = range(len(clusters))
                    stats.fallback_queries += 1
                stats.tier3_scored += len(ordinals)
                for ordinal in ordinals:
                    score = self._cluster_score_blocked(
                        probe, mention, clusters[ordinal], block.forms[ordinal]
                    )
                    if score > best_score:
                        best_cluster = clusters[ordinal]
                        best_ordinal = ordinal
                        best_score = score
            else:
                # Reference scan over every cluster of the class.
                stats.fallback_queries += 1
                stats.tier3_scored += len(clusters)
                for cluster in clusters:
                    score = self._cluster_score(mention, cluster)
                    if score > best_score:
                        best_cluster, best_score = cluster, score
            if best_cluster is not None and best_score >= self.cluster_threshold:
                if self.blocking:
                    new_facts = mention.facts - best_cluster.profile
                    if mention.surface not in best_cluster.surfaces:
                        blocks[mention.class_name].join(
                            best_ordinal, probe, new_facts
                        )
                    else:
                        for pair in new_facts:
                            blocks[mention.class_name].index.add_pair(
                                best_ordinal, pair
                            )
                best_cluster.surfaces.add(mention.surface)
                best_cluster.profile |= mention.facts
                if len(mention.surface) > len(best_cluster.name):
                    best_cluster.name = mention.surface
            else:
                counter += 1
                cluster = EntityCluster(
                    cluster_id=(
                        f"new/{mention.class_name.lower()}/{counter:04d}"
                    ),
                    class_name=mention.class_name,
                    name=mention.surface,
                    surfaces={mention.surface},
                    profile=set(mention.facts),
                )
                if self.blocking:
                    blocks[mention.class_name].new_cluster(
                        probe, mention.facts
                    )
                clusters.append(cluster)
        outcome.clusters = [
            cluster
            for clusters in clusters_by_class.values()
            for cluster in clusters
        ]
        return outcome

    def _cluster_score(
        self, mention: MentionRecord, cluster: EntityCluster
    ) -> float:
        name_score = max(
            surface_similarity(mention.surface, surface)
            for surface in cluster.surfaces
        )
        return self._blend(name_score, mention.facts, cluster.profile)

    def _cluster_score_blocked(
        self,
        probe: SurfaceForm,
        mention: MentionRecord,
        cluster: EntityCluster,
        forms: list[SurfaceForm],
    ) -> float:
        name_score = max(form_similarity(probe, form) for form in forms)
        return self._blend(name_score, mention.facts, cluster.profile)

    def _blend(self, name_score: float, facts, profile) -> float:
        if not facts or not profile:
            return name_score
        overlap = len(facts & profile)
        union = len(facts | profile)
        profile_score = overlap / union if union else 0.0
        return (
            (1 - self.profile_weight) * name_score
            + self.profile_weight * profile_score
        )


def resolve_mention_triples(
    triples: list[ScoredTriple],
    mention_classes: dict[str, str],
    resolver: JointEntityResolver,
) -> tuple[list[ScoredTriple], ResolutionOutcome]:
    """Rewrite mention-subject triples through joint resolution.

    Mention surfaces (from pages whose entity was unknown to ``Set_E``)
    are linked or clustered jointly; each triple's subject is rewritten
    to the linked entity's id or the new cluster's id.  Non-mention
    triples pass through untouched.
    """
    facts_by_surface: dict[str, set[tuple[str, str]]] = {}
    for scored in triples:
        if not is_mention(scored.triple.subject):
            continue
        for surface, class_name in mention_classes.items():
            if mention_subject(surface) == scored.triple.subject:
                facts_by_surface.setdefault(surface, set()).add(
                    (scored.triple.predicate, scored.triple.obj.lexical)
                )
    mentions = [
        MentionRecord(surface, mention_classes[surface],
                      facts_by_surface.get(surface, set()))
        for surface in mention_classes
    ]
    outcome = resolver.resolve(mentions)

    subject_of: dict[str, str] = {}
    for surface, entity in outcome.linked.items():
        subject_of[mention_subject(surface)] = entity.entity_id
    for cluster in outcome.clusters:
        for surface in cluster.surfaces:
            subject_of[mention_subject(surface)] = cluster.cluster_id

    rewritten: list[ScoredTriple] = []
    for scored in triples:
        target = subject_of.get(scored.triple.subject)
        if target is None:
            rewritten.append(scored)
        else:
            rewritten.append(
                ScoredTriple(
                    Triple(target, scored.triple.predicate, scored.triple.obj),
                    scored.provenance,
                    scored.confidence,
                )
            )
    return rewritten, outcome
