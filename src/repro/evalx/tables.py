"""Plain-text table rendering for benchmark reports.

Benchmarks print the same rows the paper's tables report; this module
renders aligned ASCII tables without any dependency.
"""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(row: Sequence[str]) -> str:
        return " | ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(row)
        )

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)


def format_ratio(value: float, *, digits: int = 3) -> str:
    """Format a ratio/score for table cells."""
    return f"{value:.{digits}f}"
