"""Evaluation metrics: attribute discovery and truth discovery.

All evaluations run against the ground-truth world (the gold standard
by construction).  Truth checks are hierarchy-aware and case-folded, so
``adelaide`` extracted from a page matches the world's ``Adelaide``,
and a fused truth of ``Australia`` counts as correct when the asserted
leaf is one of its descendants.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.fusion.base import FusionResult, Item, value_key
from repro.rdf.triple import ScoredTriple
from repro.synth.world import GroundTruthWorld


@dataclass(frozen=True, slots=True)
class PrecisionRecall:
    """Precision/recall/F1 over some decision set."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)


def attribute_discovery_metrics(
    discovered: Iterable[str],
    gold: Iterable[str],
) -> PrecisionRecall:
    """Score discovered attribute names against the gold universe.

    Both sides pass through the same :func:`value_key` normalisation
    (whitespace-collapsed, case-folded) the rest of the evaluation
    layer uses, so ``Capital`` discovered against ``capital`` gold is
    one true positive, not a false positive plus a false negative.
    """
    discovered_set = {value_key(name) for name in discovered}
    gold_set = {value_key(name) for name in gold}
    true_positives = len(discovered_set & gold_set)
    return PrecisionRecall(
        true_positives=true_positives,
        false_positives=len(discovered_set) - true_positives,
        false_negatives=len(gold_set) - true_positives,
    )


def true_value_keys(
    world: GroundTruthWorld, subject: str, predicate: str
) -> set[str]:
    """Case-folded, hierarchy-expanded true values of one item."""
    return {
        value_key(value) for value in world.true_values(subject, predicate)
    }


def triple_precision(
    world: GroundTruthWorld, triples: Iterable[ScoredTriple]
) -> float:
    """Fraction of *distinct* extracted triples whose value is true.

    Triples are deduplicated on ``(subject, predicate, value_key)``
    before scoring: a source asserting the same triple under many
    provenances states one fact, so repeats must not inflate (true
    duplicates) or deflate (false duplicates) the precision.
    """
    seen: set[tuple[str, str, str]] = set()
    total = 0
    correct = 0
    for scored in triples:
        triple = scored.triple
        key = (triple.subject, triple.predicate, value_key(triple.obj.lexical))
        if key in seen:
            continue
        seen.add(key)
        total += 1
        truths = true_value_keys(world, triple.subject, triple.predicate)
        if key[2] in truths:
            correct += 1
    return correct / total if total else 0.0


@dataclass(slots=True)
class TruthDiscoveryReport:
    """Scores of one fusion run against the world."""

    method: str
    items: int
    decided: PrecisionRecall
    # Precision over items where the world asserts at least one truth.
    answerable_items: int

    @property
    def precision(self) -> float:
        return self.decided.precision

    @property
    def recall(self) -> float:
        return self.decided.recall

    @property
    def f1(self) -> float:
        return self.decided.f1


def evaluate_fusion(
    world: GroundTruthWorld,
    result: FusionResult,
    *,
    items: Iterable[Item] | None = None,
) -> TruthDiscoveryReport:
    """Score fused truths item by item.

    For each item, decided values are matched against the world's true
    value set (leaf values plus hierarchy generalisations).  Recall
    counts the world's *leaf* truths as the targets: deciding only a
    generalisation of a leaf earns its precision but misses recall for
    the leaf unless the leaf itself (or an ancestor matching it) is
    decided.  Items unknown to the world (no true values) count every
    decided value as a false positive.
    """
    true_positives = 0
    false_positives = 0
    false_negatives = 0
    answerable = 0
    selected = list(items) if items is not None else list(result.truths)
    for item in selected:
        subject, predicate = item
        decided = result.truths.get(item, set())
        truth_set = true_value_keys(world, subject, predicate)
        leaf_set = {
            value_key(value)
            for value in world.true_leaf_values(subject, predicate)
        }
        if truth_set:
            answerable += 1
        for value in decided:
            if value in truth_set:
                true_positives += 1
            else:
                false_positives += 1
        # Recall is strict: a leaf truth counts as recalled only when
        # decided exactly — a generalisation earns precision, not recall.
        false_negatives += len(leaf_set - decided)
    return TruthDiscoveryReport(
        method=result.method,
        items=len(selected),
        decided=PrecisionRecall(true_positives, false_positives, false_negatives),
        answerable_items=answerable,
    )


def remap_subjects(
    result: FusionResult, mapping: dict[str, str]
) -> FusionResult:
    """A copy of a fusion result with subjects rewritten through a map.

    Used by evaluation when *discovered* entities must be resolved back
    to their gold identities: the pipeline's ``new/<class>/NNNN``
    cluster ids name real world entities that were merely absent from
    ``Set_E``, so scoring them requires the gold-side translation.
    """
    remapped = FusionResult(result.method)
    remapped.iterations = result.iterations
    remapped.source_quality = dict(result.source_quality)
    for (subject, predicate), values in result.truths.items():
        target = (mapping.get(subject, subject), predicate)
        remapped.truths.setdefault(target, set()).update(values)
    for ((subject, predicate), value), belief in result.belief.items():
        target = ((mapping.get(subject, subject), predicate), value)
        remapped.belief[target] = max(
            belief, remapped.belief.get(target, 0.0)
        )
    return remapped
