"""Freshness / staleness metrics for serving against drifting truth.

When ground truth mutates over epochs (``repro.synth.drift``) the
served KB version lags behind: it reflects the truth of the epoch it
was built from, not necessarily the truth *now*.  A
:class:`FreshnessReport` scores one served version on both axes:

* ``vs_served`` — precision/recall of the served truths against the
  ground truth **of the epoch the version corresponds to**.  This is
  pure fusion quality: did fusion recover its own epoch's truth?
* ``vs_current`` — the same verdicts scored against the **newest**
  ground truth.  The gap between the two is the cost of staleness.
* ``lag_epochs`` — how many epochs behind the newest truth the served
  version is; ``stale_items`` counts the items whose served value is
  right for its own epoch but wrong now (the drift casualties).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evalx.metrics import PrecisionRecall

__all__ = ["FreshnessReport", "freshness_report", "truth_metrics"]

Item = tuple[str, str]


def truth_metrics(
    decided: dict[Item, set[str]], truth: dict[Item, set[str]]
) -> PrecisionRecall:
    """Value-level precision/recall of a verdict set against a truth."""
    true_positives = 0
    false_positives = 0
    for item, values in decided.items():
        gold = truth.get(item, set())
        for value in values:
            if value in gold:
                true_positives += 1
            else:
                false_positives += 1
    false_negatives = sum(
        1
        for item, gold in truth.items()
        for value in gold
        if value not in decided.get(item, set())
    )
    return PrecisionRecall(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
    )


@dataclass(frozen=True, slots=True)
class FreshnessReport:
    """How fresh one served KB version is against a drifting truth."""

    served_epoch: int
    current_epoch: int
    vs_served: PrecisionRecall
    vs_current: PrecisionRecall
    # Served items correct for their own epoch but wrong (or gone) now.
    stale_items: int
    decided_items: int

    @property
    def lag_epochs(self) -> int:
        return self.current_epoch - self.served_epoch

    @property
    def staleness(self) -> float:
        """Fraction of decided items that drift has invalidated."""
        if not self.decided_items:
            return 0.0
        return self.stale_items / self.decided_items

    def to_json_dict(self) -> dict:
        return {
            "served_epoch": self.served_epoch,
            "current_epoch": self.current_epoch,
            "lag_epochs": self.lag_epochs,
            "vs_served": {
                "precision": self.vs_served.precision,
                "recall": self.vs_served.recall,
                "f1": self.vs_served.f1,
            },
            "vs_current": {
                "precision": self.vs_current.precision,
                "recall": self.vs_current.recall,
                "f1": self.vs_current.f1,
            },
            "stale_items": self.stale_items,
            "decided_items": self.decided_items,
            "staleness": self.staleness,
        }


def freshness_report(
    decided: dict[Item, set[str]],
    *,
    served_epoch: int,
    current_epoch: int,
    served_truth: dict[Item, set[str]],
    current_truth: dict[Item, set[str]],
) -> FreshnessReport:
    """Score one served verdict set against its epoch's and the newest truth."""
    stale_items = 0
    for item, values in decided.items():
        then = served_truth.get(item, set())
        now = current_truth.get(item, set())
        if values & then and not values & now:
            stale_items += 1
    return FreshnessReport(
        served_epoch=served_epoch,
        current_epoch=current_epoch,
        vs_served=truth_metrics(decided, served_truth),
        vs_current=truth_metrics(decided, current_truth),
        stale_items=stale_items,
        decided_items=len(decided),
    )
