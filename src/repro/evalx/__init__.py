"""Evaluation: gold-standard metrics and report tables."""

from repro.evalx.freshness import (
    FreshnessReport,
    freshness_report,
    truth_metrics,
)
from repro.evalx.metrics import (
    PrecisionRecall,
    TruthDiscoveryReport,
    attribute_discovery_metrics,
    evaluate_fusion,
    remap_subjects,
    triple_precision,
    true_value_keys,
)
from repro.evalx.tables import format_ratio, render_table

__all__ = [
    "FreshnessReport",
    "PrecisionRecall",
    "TruthDiscoveryReport",
    "attribute_discovery_metrics",
    "evaluate_fusion",
    "freshness_report",
    "remap_subjects",
    "format_ratio",
    "render_table",
    "triple_precision",
    "true_value_keys",
]
