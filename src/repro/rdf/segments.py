"""Disk-resident LSM-style storage backend over mmapped segment files.

The :class:`SegmentBackend` keeps claims in append-only **segment
files** plus a small in-memory **memtable**:

* mutations land in the memtable; when it crosses ``memtable_limit``
  live entries it is *flushed* to a new immutable segment file;
* ``remove`` writes a **tombstone** (triple + sequence number) — a
  segment row is live iff its seqno is greater than the newest
  tombstone seqno for its triple;
* **compaction** merges every segment into one *canonical* segment
  (unique keys, insertion-ordered, max confidence folded, no
  tombstones) and drops the rest.

A segment file is the :mod:`repro.fusion.compiled` idiom spilled to
disk: string-interning tables plus flat ``array('q')``/``array('d')``
columns, mmapped read-only at open and accessed zero-copy through
``memoryview.cast``.  The intern tables are *lazy*: each is length-
prefixed so opening a segment skips over them without touching their
pages, and strings are only decoded when a query actually needs them —
an ingest-only workload never materializes them at all.  CSR-style
SPO/POS/OSP permutation indexes make bound-position lookups slice
scans instead of full scans, and a per-row **key-hash column**
(blake2b-64 of the full claim key) feeds an in-memory hash filter so
the dedup probe for a never-seen claim is a set miss, not a per-
segment string lookup.

Byte layout (all integers native-endian int64, every section 8-byte
aligned)::

    header   : magic "REPROSEG" | version | flags | n_rows | n_tombs
    tables   : 6 string tables (subjects, predicates, lexicals,
               sources, extractors, locators), each:
               nbytes | count | (byte_len | utf8 bytes)*count | pad
               (nbytes spans the whole table, enabling lazy skip)
    rows     : seq[q] subject[q] predicate[q] lexical[q] kind[q]
               source[q] extractor[q] locator[q] confidence[d]
               (one column = n_rows contiguous values)
    tombs    : seq[q] subject[q] predicate[q] lexical[q] kind[q]
    indexes  : spo_perm[q*n_rows]  subj_start[q*(n_subjects+1)]
               pos_perm[q*n_rows]  pred_start[q*(n_predicates+1)]
               osp_perm[q*n_rows]  lex_start[q*(n_lexicals+1)]
               keyhash[q*n_rows]

``flags`` bit 0 marks a *canonical* segment (compaction output),
enabling the streaming iteration fast path.

Durability model: segment + manifest writes follow the checkpoint
temp-file pattern (write temp, ``os.replace``), so a crash mid-flush
or mid-compaction leaves either the previous manifest or the new one —
never a torn store.  The memtable is volatile: reopening a directory
recovers exactly the state as of the last completed flush.  Injected
faults (chaos tests) hook ``storage:flush`` / ``storage:compaction``
scopes with the phase as the task index.

Ordering contract (see :mod:`repro.rdf.backend`): every claim key's
position is the seqno of its first *live* add; iteration sorts live
keys by that position, reproducing ``MemoryBackend``'s dict insertion
order — confidence refreshes keep their position, remove + re-add
moves to the end — so fusion verdicts are byte-identical.

Concurrency model: one live writer lineage per directory.  ``copy()``
shares the immutable segment readers (cheap staging for the
incremental engine); whichever copy flushes last owns the on-disk
manifest.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import mmap
import os
import struct
import time
from array import array
from collections.abc import Iterator
from pathlib import Path

from repro.errors import StoreError
from repro.rdf.backend import StorageBackend
from repro.rdf.triple import (
    Provenance,
    ScoredTriple,
    Triple,
    Value,
    ValueKind,
)

__all__ = ["SegmentBackend", "SegmentReader"]

_MAGIC = b"REPROSEG"
_VERSION = 1
_FLAG_CANONICAL = 1
_HEADER = struct.Struct("=8sqqqq")

# Fixed object-kind encoding (column values index this tuple).
_KINDS = (
    ValueKind.STRING,
    ValueKind.NUMBER,
    ValueKind.DATE,
    ValueKind.ENTITY,
)
_KIND_INDEX = {kind: index for index, kind in enumerate(_KINDS)}

_MANIFEST = "MANIFEST.json"

# Module-level so two backends in one process never mint the same
# segment or temp file name (same trick as the checkpoint store).
_SERIAL = itertools.count()


def _pad8(out: bytearray) -> None:
    out.extend(b"\x00" * (-len(out) % 8))


def _append_table(out: bytearray, strings: list[str]) -> None:
    start = len(out)
    out.extend(struct.pack("=qq", 0, len(strings)))  # nbytes backfilled
    for text in strings:
        raw = text.encode("utf-8")
        out.extend(struct.pack("=q", len(raw)))
        out.extend(raw)
    _pad8(out)
    struct.pack_into("=q", out, start, len(out) - start)


def _key_hash(triple: Triple, prov: Provenance) -> int:
    """Deterministic 64-bit hash of a full claim key.

    Process-independent (unlike ``hash()`` under ``PYTHONHASHSEED``),
    so hashes computed at build time match hashes computed by any
    later reader.  Collisions — including separator ambiguity — only
    cost a wasted exact lookup, never a wrong answer: the hash filter
    gates the probe, the interned-id comparison decides it.
    """
    raw = "\x1f".join(
        (
            triple.subject,
            triple.predicate,
            triple.obj.lexical,
            str(_KIND_INDEX[triple.obj.kind]),
            prov.source_id,
            prov.extractor_id,
            prov.locator,
        )
    ).encode("utf-8", "surrogatepass")
    digest = hashlib.blake2b(raw, digest_size=8).digest()
    return struct.unpack("=q", digest)[0]


def _intern(table: dict[str, int], value: str) -> int:
    index = table.get(value)
    if index is None:
        index = len(table)
        table[value] = index
    return index


def build_segment_bytes(
    rows: list[tuple[int, ScoredTriple]],
    tombs: list[tuple[Triple, int]],
    *,
    canonical: bool = False,
) -> bytes:
    """Serialize claims + tombstones into one segment blob.

    ``rows`` are ``(seqno, claim)`` in the order they should be stored
    (compaction stores them position-sorted and sets ``canonical``).
    """
    subjects: dict[str, int] = {}
    predicates: dict[str, int] = {}
    lexicals: dict[str, int] = {}
    sources: dict[str, int] = {}
    extractors: dict[str, int] = {}
    locators: dict[str, int] = {}

    n = len(rows)
    col_seq = array("q", bytes(8 * n))
    col_subj = array("q", bytes(8 * n))
    col_pred = array("q", bytes(8 * n))
    col_lex = array("q", bytes(8 * n))
    col_kind = array("q", bytes(8 * n))
    col_src = array("q", bytes(8 * n))
    col_ext = array("q", bytes(8 * n))
    col_loc = array("q", bytes(8 * n))
    col_conf = array("d", bytes(8 * n))
    col_key = array("q", bytes(8 * n))

    for i, (seq, scored) in enumerate(rows):
        triple = scored.triple
        prov = scored.provenance
        col_key[i] = _key_hash(triple, prov)
        col_seq[i] = seq
        col_subj[i] = _intern(subjects, triple.subject)
        col_pred[i] = _intern(predicates, triple.predicate)
        col_lex[i] = _intern(lexicals, triple.obj.lexical)
        col_kind[i] = _KIND_INDEX[triple.obj.kind]
        col_src[i] = _intern(sources, prov.source_id)
        col_ext[i] = _intern(extractors, prov.extractor_id)
        col_loc[i] = _intern(locators, prov.locator)
        col_conf[i] = scored.confidence

    tomb_cols = [array("q", bytes(8 * len(tombs))) for _ in range(5)]
    for i, (triple, seq) in enumerate(tombs):
        tomb_cols[0][i] = seq
        tomb_cols[1][i] = _intern(subjects, triple.subject)
        tomb_cols[2][i] = _intern(predicates, triple.predicate)
        tomb_cols[3][i] = _intern(lexicals, triple.obj.lexical)
        tomb_cols[4][i] = _KIND_INDEX[triple.obj.kind]

    def perm_and_starts(primary: array, secondary, n_ids: int):
        perm = array(
            "q",
            sorted(range(n), key=lambda i: (primary[i], *secondary(i))),
        )
        starts = array("q", bytes(8 * (n_ids + 1)))
        for i in primary:
            starts[i + 1] += 1
        for i in range(n_ids):
            starts[i + 1] += starts[i]
        return perm, starts

    spo_perm, subj_start = perm_and_starts(
        col_subj,
        lambda i: (col_pred[i], col_lex[i], col_kind[i], col_seq[i]),
        len(subjects),
    )
    pos_perm, pred_start = perm_and_starts(
        col_pred,
        lambda i: (col_lex[i], col_kind[i], col_subj[i], col_seq[i]),
        len(predicates),
    )
    osp_perm, lex_start = perm_and_starts(
        col_lex,
        lambda i: (col_kind[i], col_subj[i], col_pred[i], col_seq[i]),
        len(lexicals),
    )

    out = bytearray()
    out.extend(
        _HEADER.pack(
            _MAGIC,
            _VERSION,
            _FLAG_CANONICAL if canonical else 0,
            n,
            len(tombs),
        )
    )
    for table in (subjects, predicates, lexicals, sources, extractors,
                  locators):
        _append_table(out, list(table))
    for col in (col_seq, col_subj, col_pred, col_lex, col_kind, col_src,
                col_ext, col_loc, col_conf):
        out.extend(col.tobytes())
    for col in tomb_cols:
        out.extend(col.tobytes())
    for col in (spo_perm, subj_start, pos_perm, pred_start, osp_perm,
                lex_start, col_key):
        out.extend(col.tobytes())
    return bytes(out)


def _read_table(buf: memoryview, offset: int) -> list[str]:
    (count,) = struct.unpack_from("=q", buf, offset + 8)
    offset += 16
    strings: list[str] = []
    for _ in range(count):
        (length,) = struct.unpack_from("=q", buf, offset)
        offset += 8
        strings.append(bytes(buf[offset:offset + length]).decode("utf-8"))
        offset += length
    return strings


class SegmentReader:
    """Zero-copy read access to one mmapped segment file.

    Columns are ``memoryview.cast`` views straight over the mmap — no
    deserialization at open; even the string intern tables are decoded
    lazily, on the first query that needs them, so opening (and
    ingest-only use) touches a handful of pages regardless of segment
    size.  Readers are immutable and safely shareable between a
    backend and its ``copy()`` lineage (and, via the OS page cache,
    between processes mapping the same file).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._file = open(self.path, "rb")
        try:
            self._mm = mmap.mmap(self._file.fileno(), 0,
                                 access=mmap.ACCESS_READ)
        except ValueError:
            self._file.close()
            raise StoreError(f"empty or unmappable segment: {self.path}")
        buf = memoryview(self._mm)
        magic, version, flags, n_rows, n_tombs = _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            self._release(buf)
            raise StoreError(f"not a segment file: {self.path}")
        if version != _VERSION:
            self._release(buf)
            raise StoreError(
                f"unsupported segment version {version} in {self.path}"
            )
        self.canonical = bool(flags & _FLAG_CANONICAL)
        self.n_rows = n_rows
        self.n_tombs = n_tombs
        self.nbytes = len(self._mm)

        # Record where each intern table lives without decoding it —
        # the nbytes prefix lets us hop over the string payloads.
        offset = _HEADER.size
        table_offsets: list[int] = []
        table_counts: list[int] = []
        for _ in range(6):
            nbytes, count = struct.unpack_from("=qq", buf, offset)
            table_offsets.append(offset)
            table_counts.append(count)
            offset += nbytes
        self._table_offsets = table_offsets
        self._tables: list[list[str] | None] = [None] * 6
        n_subjects, n_predicates, n_lexicals = table_counts[:3]

        views: list[memoryview] = [buf]

        def col(fmt: str, count: int) -> memoryview:
            nonlocal offset
            view = buf[offset:offset + 8 * count].cast(fmt)
            views.append(view)
            offset += 8 * count
            return view

        self.col_seq = col("q", n_rows)
        self.col_subject = col("q", n_rows)
        self.col_predicate = col("q", n_rows)
        self.col_lexical = col("q", n_rows)
        self.col_kind = col("q", n_rows)
        self.col_source = col("q", n_rows)
        self.col_extractor = col("q", n_rows)
        self.col_locator = col("q", n_rows)
        self.col_confidence = col("d", n_rows)

        self.tomb_seq = col("q", n_tombs)
        self.tomb_subject = col("q", n_tombs)
        self.tomb_predicate = col("q", n_tombs)
        self.tomb_lexical = col("q", n_tombs)
        self.tomb_kind = col("q", n_tombs)

        self.spo_perm = col("q", n_rows)
        self.subj_start = col("q", n_subjects + 1)
        self.pos_perm = col("q", n_rows)
        self.pred_start = col("q", n_predicates + 1)
        self.osp_perm = col("q", n_rows)
        self.lex_start = col("q", n_lexicals + 1)
        self.key_hashes = col("q", n_rows)

        self._views = views
        # str -> id reverse maps, built lazily on first point lookup.
        self._subject_ids: dict[str, int] | None = None
        self._predicate_ids: dict[str, int] | None = None
        self._lexical_ids: dict[str, int] | None = None
        self._source_ids: dict[str, int] | None = None
        self._extractor_ids: dict[str, int] | None = None
        self._locator_ids: dict[str, int] | None = None

    def _release(self, buf: memoryview) -> None:
        buf.release()
        self._mm.close()
        self._file.close()

    def close(self) -> None:
        """Release the mmap.  Invalidates every column view."""
        views = self.__dict__.pop("_views", None)
        if views is None:
            return
        for name in (
            "col_seq", "col_subject", "col_predicate", "col_lexical",
            "col_kind", "col_source", "col_extractor", "col_locator",
            "col_confidence", "tomb_seq", "tomb_subject",
            "tomb_predicate", "tomb_lexical", "tomb_kind", "spo_perm",
            "subj_start", "pos_perm", "pred_start", "osp_perm",
            "lex_start", "key_hashes",
        ):
            self.__dict__.pop(name, None)
        for view in reversed(views):
            view.release()
        self._mm.close()
        self._file.close()

    # -- lazy intern tables --------------------------------------------
    def _table(self, index: int) -> list[str]:
        table = self._tables[index]
        if table is None:
            buf = memoryview(self._mm)
            try:
                table = _read_table(buf, self._table_offsets[index])
            finally:
                buf.release()
            self._tables[index] = table
        return table

    @property
    def subjects(self) -> list[str]:
        return self._table(0)

    @property
    def predicates(self) -> list[str]:
        return self._table(1)

    @property
    def lexicals(self) -> list[str]:
        return self._table(2)

    @property
    def sources(self) -> list[str]:
        return self._table(3)

    @property
    def extractors(self) -> list[str]:
        return self._table(4)

    @property
    def locators(self) -> list[str]:
        return self._table(5)

    # -- id lookups ----------------------------------------------------
    @staticmethod
    def _lazy_ids(strings: list[str], cached) -> dict[str, int]:
        if cached is None:
            cached = {text: i for i, text in enumerate(strings)}
        return cached

    def subject_id(self, subject: str) -> int | None:
        self._subject_ids = self._lazy_ids(self.subjects, self._subject_ids)
        return self._subject_ids.get(subject)

    def predicate_id(self, predicate: str) -> int | None:
        self._predicate_ids = self._lazy_ids(
            self.predicates, self._predicate_ids
        )
        return self._predicate_ids.get(predicate)

    def lexical_id(self, lexical: str) -> int | None:
        self._lexical_ids = self._lazy_ids(self.lexicals, self._lexical_ids)
        return self._lexical_ids.get(lexical)

    def source_id(self, source: str) -> int | None:
        self._source_ids = self._lazy_ids(self.sources, self._source_ids)
        return self._source_ids.get(source)

    def extractor_id(self, extractor: str) -> int | None:
        self._extractor_ids = self._lazy_ids(
            self.extractors, self._extractor_ids
        )
        return self._extractor_ids.get(extractor)

    def locator_id(self, locator: str) -> int | None:
        self._locator_ids = self._lazy_ids(self.locators, self._locator_ids)
        return self._locator_ids.get(locator)

    # -- row materialization -------------------------------------------
    def row_scored(self, row: int) -> ScoredTriple:
        return ScoredTriple(
            Triple(
                self.subjects[self.col_subject[row]],
                self.predicates[self.col_predicate[row]],
                Value(
                    self.lexicals[self.col_lexical[row]],
                    _KINDS[self.col_kind[row]],
                ),
            ),
            Provenance(
                self.sources[self.col_source[row]],
                self.extractors[self.col_extractor[row]],
                self.locators[self.col_locator[row]],
            ),
            self.col_confidence[row],
        )

    def row_provenance(self, row: int) -> Provenance:
        return Provenance(
            self.sources[self.col_source[row]],
            self.extractors[self.col_extractor[row]],
            self.locators[self.col_locator[row]],
        )

    # -- slice access --------------------------------------------------
    def subject_rows(self, subject: str) -> Iterator[int]:
        """Row indexes of one subject, via the SPO permutation slice."""
        sid = self.subject_id(subject)
        if sid is None:
            return iter(())
        lo, hi = self.subj_start[sid], self.subj_start[sid + 1]
        perm = self.spo_perm
        return (perm[i] for i in range(lo, hi))

    def predicate_rows(self, predicate: str) -> Iterator[int]:
        pid = self.predicate_id(predicate)
        if pid is None:
            return iter(())
        lo, hi = self.pred_start[pid], self.pred_start[pid + 1]
        perm = self.pos_perm
        return (perm[i] for i in range(lo, hi))

    def object_rows(self, obj: Value) -> Iterator[int]:
        lid = self.lexical_id(obj.lexical)
        if lid is None:
            return iter(())
        kind = _KIND_INDEX[obj.kind]
        lo, hi = self.lex_start[lid], self.lex_start[lid + 1]
        perm = self.osp_perm
        kinds = self.col_kind
        return (
            perm[i] for i in range(lo, hi) if kinds[perm[i]] == kind
        )

    def triple_rows(self, triple: Triple, tomb_seq: int) -> list[int]:
        """Live row indexes asserting exactly ``triple``."""
        pid = self.predicate_id(triple.predicate)
        lid = self.lexical_id(triple.obj.lexical)
        if pid is None or lid is None:
            return []
        kind = _KIND_INDEX[triple.obj.kind]
        seqs = self.col_seq
        preds = self.col_predicate
        lexes = self.col_lexical
        kinds = self.col_kind
        return [
            row
            for row in self.subject_rows(triple.subject)
            if preds[row] == pid
            and lexes[row] == lid
            and kinds[row] == kind
            and seqs[row] > tomb_seq
        ]

    def intern_tomb_map(
        self, tomb: dict[Triple, int]
    ) -> dict[tuple[int, int, int, int], int]:
        """Project a triple-keyed tombstone map onto this segment's ids.

        Triples whose strings this segment never interned cannot match
        any row here and are skipped.
        """
        out: dict[tuple[int, int, int, int], int] = {}
        for triple, seq in tomb.items():
            sid = self.subject_id(triple.subject)
            if sid is None:
                continue
            pid = self.predicate_id(triple.predicate)
            lid = self.lexical_id(triple.obj.lexical)
            if pid is None or lid is None:
                continue
            out[(sid, pid, lid, _KIND_INDEX[triple.obj.kind])] = seq
        return out

    def live_rows(
        self, tomb: dict[Triple, int]
    ) -> Iterator[int]:
        """All live row indexes, in storage order."""
        if not tomb:
            return iter(range(self.n_rows))
        tomb_ids = self.intern_tomb_map(tomb)
        if not tomb_ids:
            return iter(range(self.n_rows))
        seqs = self.col_seq
        subs = self.col_subject
        preds = self.col_predicate
        lexes = self.col_lexical
        kinds = self.col_kind

        def generate():
            for row in range(self.n_rows):
                dead_at = tomb_ids.get(
                    (subs[row], preds[row], lexes[row], kinds[row])
                )
                if dead_at is None or seqs[row] > dead_at:
                    yield row

        return generate()

    def iter_tombstones(self) -> Iterator[tuple[Triple, int]]:
        for i in range(self.n_tombs):
            yield (
                Triple(
                    self.subjects[self.tomb_subject[i]],
                    self.predicates[self.tomb_predicate[i]],
                    Value(
                        self.lexicals[self.tomb_lexical[i]],
                        _KINDS[self.tomb_kind[i]],
                    ),
                ),
                self.tomb_seq[i],
            )

    def lookup_key(
        self,
        triple: Triple,
        prov: Provenance,
        tomb_seq: int,
    ) -> tuple[float, int] | None:
        """(max confidence, first seqno) of live rows for one claim key."""
        src = self.source_id(prov.source_id)
        ext = self.extractor_id(prov.extractor_id)
        loc = self.locator_id(prov.locator)
        if src is None or ext is None or loc is None:
            return None
        srcs = self.col_source
        exts = self.col_extractor
        locs = self.col_locator
        seqs = self.col_seq
        confs = self.col_confidence
        best: tuple[float, int] | None = None
        for row in self.triple_rows(triple, tomb_seq):
            if srcs[row] != src or exts[row] != ext or locs[row] != loc:
                continue
            if best is None:
                best = (confs[row], seqs[row])
            else:
                best = (
                    max(best[0], confs[row]),
                    min(best[1], seqs[row]),
                )
        return best


class SegmentBackend(StorageBackend):
    """LSM-style triple storage: memtable + mmapped segments + manifest.

    Parameters
    ----------
    directory:
        Where segments and the manifest live; created if absent.
        Reopening a directory recovers the state of the last completed
        flush.
    memtable_limit:
        Live memtable entries that trigger an automatic flush.
    compact_threshold:
        Segment count that triggers an automatic compaction after a
        flush.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; publishes the
        ``storage_*`` counters/gauges/histograms.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; flush/compaction
        phases call its crash hook under the ``storage:flush`` /
        ``storage:compaction`` scopes (index = phase).
    """

    name = "segment"

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        memtable_limit: int = 8192,
        compact_threshold: int = 8,
        metrics=None,
        fault_plan=None,
    ) -> None:
        if memtable_limit < 1:
            raise StoreError("memtable_limit must be >= 1")
        if compact_threshold < 2:
            raise StoreError("compact_threshold must be >= 2")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.memtable_limit = memtable_limit
        self.compact_threshold = compact_threshold
        self.metrics = metrics
        self.fault_plan = fault_plan
        self._segments: list[SegmentReader] = []
        self._names: list[str] = []
        # (triple, provenance) -> [position seqno, stored claim]
        self._mem: dict[tuple[Triple, Provenance], list] = {}
        self._mem_tombs: list[tuple[Triple, int]] = []
        # triple -> newest tombstone seqno (memtable + all segments)
        self._tomb: dict[Triple, int] = {}
        # Key hashes of every segment-resident row (live or not): the
        # dedup probe for a never-stored claim is one set miss instead
        # of a per-segment string lookup.  ~tens of bytes per key —
        # the in-RAM role a bloom filter plays in production LSMs.
        self._key_filter: set[int] = set()
        self._seq = 0
        self._live = 0
        self._open_directory()

    # -- open / manifest -----------------------------------------------
    def _open_directory(self) -> None:
        manifest = self.directory / _MANIFEST
        names: list[str] = []
        if manifest.exists():
            state = json.loads(manifest.read_text())
            names = list(state["segments"])
            self._seq = int(state["next_seq"])
            self._live = int(state["live"])
        for name in names:
            reader = SegmentReader(self.directory / name)
            self._segments.append(reader)
            self._names.append(name)
            self._key_filter.update(reader.key_hashes)
            for triple, seq in reader.iter_tombstones():
                if seq > self._tomb.get(triple, -1):
                    self._tomb[triple] = seq
        self._sweep_orphans(set(names))
        self._publish_gauges()

    def _sweep_orphans(self, referenced: set[str]) -> None:
        """Drop segment/temp files the manifest does not reference.

        Only called at open time, when no sibling ``copy()`` lineage
        can be holding them.
        """
        for candidate in self.directory.glob("seg-*.seg"):
            if candidate.name not in referenced:
                try:
                    candidate.unlink()
                except OSError:
                    pass
        for orphan in self.directory.glob("*.tmp"):
            try:
                orphan.unlink()
            except OSError:
                pass

    def _write_manifest(self) -> None:
        blob = json.dumps(
            {
                "version": 1,
                "next_seq": self._seq,
                "live": self._live,
                "segments": self._names,
            }
        ).encode()
        temp = self.directory / (
            f"{_MANIFEST}.{os.getpid()}.{next(_SERIAL)}.tmp"
        )
        temp.write_bytes(blob)
        os.replace(temp, self.directory / _MANIFEST)

    def _write_segment_file(self, blob: bytes) -> str:
        name = f"seg-{os.getpid()}-{next(_SERIAL)}.seg"
        temp = self.directory / f"{name}.tmp"
        temp.write_bytes(blob)
        return name

    # -- fault / metrics hooks -----------------------------------------
    def _fault(self, scope: str, phase: int) -> None:
        if self.fault_plan is not None:
            self.fault_plan.task_delay(scope, phase, 0)

    def _count(self, metric: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(metric).inc(amount)

    def _observe_seconds(self, metric: str, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(metric).observe(seconds)

    def _publish_gauges(self) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge("storage_segments").set(len(self._segments))
        self.metrics.gauge("storage_segment_bytes").set(
            sum(reader.nbytes for reader in self._segments)
        )
        self.metrics.gauge("storage_open_mmaps").set(len(self._segments))
        self.metrics.gauge("storage_memtable_claims").set(len(self._mem))

    # -- size / iteration ----------------------------------------------
    def __len__(self) -> int:
        return self._live

    def _tomb_seq(self, triple: Triple) -> int:
        return self._tomb.get(triple, -1)

    def iter_claims(self) -> Iterator[ScoredTriple]:
        if not self._segments:
            # All positions were minted fresh into the memtable, so
            # dict order *is* position order: stream it zero-copy.
            return (entry[1] for entry in self._mem.values())
        only = self._segments[0]
        if (
            len(self._segments) == 1
            and only.canonical
            and not self._mem
            and not self._tomb
        ):
            # Canonical fast path: rows are already unique,
            # position-ordered and confidence-folded.
            return (only.row_scored(row) for row in range(only.n_rows))
        return (scored for _pos, scored in self._ordered_entries())

    def _fold(self, segment_rows, mem_pred) -> dict:
        """Merge segment rows + memtable entries into per-key entries.

        ``segment_rows(seg)`` yields candidate row indexes (liveness
        is checked here); ``mem_pred(key)`` filters memtable entries.
        Returns ``{key: [position, claim]}`` with max confidence
        folded; the memtable entry, when present, is authoritative for
        both (its position was resolved against the segments at add
        time, and its confidence is by construction the maximum).
        """
        merged: dict = {}
        for seg in self._segments:
            tomb_ids = (
                seg.intern_tomb_map(self._tomb) if self._tomb else {}
            )
            seqs = seg.col_seq
            subs = seg.col_subject
            preds = seg.col_predicate
            lexes = seg.col_lexical
            kinds = seg.col_kind
            confs = seg.col_confidence
            for row in segment_rows(seg):
                seq = seqs[row]
                if tomb_ids:
                    dead_at = tomb_ids.get(
                        (subs[row], preds[row], lexes[row], kinds[row])
                    )
                    if dead_at is not None and seq <= dead_at:
                        continue
                scored = seg.row_scored(row)
                key = (scored.triple, scored.provenance)
                entry = merged.get(key)
                if entry is None:
                    merged[key] = [seq, scored]
                else:
                    if seq < entry[0]:
                        entry[0] = seq
                    if confs[row] > entry[1].confidence:
                        entry[1] = scored
        for key, entry in self._mem.items():
            if not mem_pred(key):
                continue
            merged[key] = [entry[0], entry[1]]
        return merged

    def _ordered_entries(self) -> list[list]:
        merged = self._fold(
            lambda seg: range(seg.n_rows), lambda key: True
        )
        return sorted(merged.values(), key=lambda entry: entry[0])

    def contains_triple(self, triple: Triple) -> bool:
        for key in self._mem:
            if key[0] == triple:
                return True
        tomb_seq = self._tomb_seq(triple)
        return any(
            seg.triple_rows(triple, tomb_seq) for seg in self._segments
        )

    # -- mutation ------------------------------------------------------
    def add(self, scored: ScoredTriple) -> None:
        if self._add_one(scored):
            self._maybe_flush()

    def _add_one(self, scored: ScoredTriple) -> bool:
        """Install one claim; True iff a brand-new key grew the memtable.

        Only brand-new keys are followed by the auto-flush size check:
        confidence refreshes (memtable- or segment-resident) must stay
        in place — the delta journal inspects the freshly-installed
        object by identity right after ``add`` returns, which a flush
        would replace with a reconstructed segment copy.
        """
        key = (scored.triple, scored.provenance)
        entry = self._mem.get(key)
        if entry is not None:
            if entry[1].confidence < scored.confidence:
                entry[1] = scored  # refresh keeps its position
            return False
        existing = self._segment_lookup(key)
        if existing is not None:
            conf, position = existing
            if conf < scored.confidence:
                # Refresh of a segment-resident claim: shadow it in
                # the memtable at its original position.
                self._mem[key] = [position, scored]
            return False
        self._seq += 1
        self._mem[key] = [self._seq, scored]
        self._live += 1
        return True

    def _segment_lookup(
        self, key: tuple[Triple, Provenance]
    ) -> tuple[float, int] | None:
        triple, prov = key
        if _key_hash(triple, prov) not in self._key_filter:
            return None
        tomb_seq = self._tomb_seq(triple)
        best: tuple[float, int] | None = None
        for seg in self._segments:
            found = seg.lookup_key(triple, prov, tomb_seq)
            if found is None:
                continue
            if best is None:
                best = found
            else:
                best = (max(best[0], found[0]), min(best[1], found[1]))
        return best

    def add_all(self, scored) -> None:
        """Bulk insert from any iterable, including one-shot streams.

        The memtable limit is enforced *mid-batch*: a batch far larger
        than the memtable streams through bounded memory, spilling a
        segment every ``memtable_limit`` fresh claims instead of
        accumulating the whole batch first.
        """
        for one in scored:
            if self._add_one(one):
                self._maybe_flush()

    def remove(self, triple: Triple) -> int:
        mem_keys = [key for key in self._mem if key[0] == triple]
        tomb_seq = self._tomb_seq(triple)
        seg_keys: set = set()
        for seg in self._segments:
            for row in seg.triple_rows(triple, tomb_seq):
                seg_keys.add((triple, seg.row_provenance(row)))
        victims = set(mem_keys) | seg_keys
        if not victims:
            return 0
        for key in mem_keys:
            del self._mem[key]
        if seg_keys:
            # Only segment-resident rows need a tombstone; pure
            # memtable keys are simply purged.
            self._seq += 1
            self._tomb[triple] = self._seq
            self._mem_tombs.append((triple, self._seq))
            self._count("storage_tombstones_total")
        self._live -= len(victims)
        self._maybe_flush()
        return len(victims)

    # -- flush / compaction --------------------------------------------
    def _maybe_flush(self) -> None:
        if len(self._mem) >= self.memtable_limit:
            self.flush()
            if len(self._segments) >= self.compact_threshold:
                self.compact()

    def flush(self) -> None:
        """Spill the memtable (claims + tombstones) to a new segment.

        Atomic via the checkpoint temp-file pattern: segment temp →
        ``os.replace`` → manifest temp → ``os.replace``.  A crash at
        any point leaves the directory recoverable at the previous or
        the new flush point, never torn; the in-memory state is only
        advanced after the manifest lands, so a failed flush can
        simply be retried.
        """
        if not self._mem and not self._mem_tombs:
            return
        started = time.perf_counter()
        self._fault("storage:flush", 0)
        rows = [
            (entry[0], entry[1]) for entry in self._mem.values()
        ]
        blob = build_segment_bytes(rows, list(self._mem_tombs))
        name = self._write_segment_file(blob)
        self._fault("storage:flush", 1)
        os.replace(self.directory / f"{name}.tmp", self.directory / name)
        self._fault("storage:flush", 2)
        self._names.append(name)
        try:
            self._write_manifest()
            self._fault("storage:flush", 3)
        except BaseException:
            self._names.pop()
            raise
        reader = SegmentReader(self.directory / name)
        self._segments.append(reader)
        self._key_filter.update(reader.key_hashes)
        self._mem.clear()
        self._mem_tombs.clear()
        self._count("storage_flushes_total")
        self._count("storage_segments_written_total")
        self._observe_seconds(
            "storage_flush_seconds", time.perf_counter() - started
        )
        self._publish_gauges()

    def compact(self) -> None:
        """Merge all segments into one canonical segment.

        Folds duplicate keys to their max confidence, drops dead rows
        and every tombstone, and stores rows in position order with
        the canonical flag set (enabling the streaming iteration fast
        path).  Replaced segment files are unlinked best-effort after
        the new manifest lands — a crash in between only leaves
        orphans for the next open to sweep.
        """
        self.flush()
        if not self._segments:
            return
        if (
            len(self._segments) == 1
            and self._segments[0].canonical
            and not self._tomb
        ):
            return
        started = time.perf_counter()
        self._fault("storage:compaction", 0)
        rows = [
            (entry[0], entry[1]) for entry in self._ordered_entries()
        ]
        blob = build_segment_bytes(rows, [], canonical=True)
        name = self._write_segment_file(blob)
        self._fault("storage:compaction", 1)
        os.replace(self.directory / f"{name}.tmp", self.directory / name)
        self._fault("storage:compaction", 2)
        old_names = self._names
        self._names = [name]
        try:
            self._write_manifest()
            self._fault("storage:compaction", 3)
        except BaseException:
            self._names = old_names
            raise
        # Old readers are dropped, not closed: a copy() lineage may
        # still share them (mmaps survive the unlink; the OS reclaims
        # on GC).
        self._segments = [SegmentReader(self.directory / name)]
        self._key_filter = set(self._segments[0].key_hashes)
        self._tomb.clear()
        for old in old_names:
            try:
                (self.directory / old).unlink()
            except OSError:
                pass
        self._count("storage_compactions_total")
        self._count("storage_segments_written_total")
        self._observe_seconds(
            "storage_compaction_seconds", time.perf_counter() - started
        )
        self._publish_gauges()

    def close(self) -> None:
        """Release every mmap.  Invalidates copies sharing the readers."""
        for reader in self._segments:
            reader.close()
        self._segments = []
        self._publish_gauges()

    def segment_paths(self) -> list[Path]:
        """Paths of the current segment files, oldest first."""
        return [self.directory / name for name in self._names]

    def segment_readers(self) -> list[SegmentReader]:
        """The open segment readers, oldest first (shared, immutable)."""
        return list(self._segments)

    # -- lookup --------------------------------------------------------
    def claims(self, triple: Triple | None = None) -> list[ScoredTriple]:
        if triple is None:
            return [scored for scored in self.iter_claims()]
        tomb_seq = self._tomb_seq(triple)
        merged = self._fold(
            lambda seg: seg.triple_rows(triple, tomb_seq),
            lambda key: key[0] == triple,
        )
        return [
            entry[1]
            for entry in sorted(merged.values(), key=lambda e: e[0])
        ]

    def claims_for_item(
        self, subject: str, predicate: str
    ) -> list[ScoredTriple]:
        def rows(seg):
            preds = seg.col_predicate
            pid = seg.predicate_id(predicate)
            if pid is None:
                return ()
            return (
                row
                for row in seg.subject_rows(subject)
                if preds[row] == pid
            )

        merged = self._fold(
            rows,
            lambda key: (
                key[0].subject == subject and key[0].predicate == predicate
            ),
        )
        return [
            entry[1]
            for entry in sorted(merged.values(), key=lambda e: e[0])
        ]

    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: Value | None = None,
    ) -> list[Triple]:
        if subject is not None:
            merged = self._fold(
                lambda seg: seg.subject_rows(subject),
                lambda key: key[0].subject == subject,
            )
        elif predicate is not None:
            merged = self._fold(
                lambda seg: seg.predicate_rows(predicate),
                lambda key: key[0].predicate == predicate,
            )
        elif obj is not None:
            merged = self._fold(
                lambda seg: seg.object_rows(obj),
                lambda key: key[0].obj == obj,
            )
        else:
            merged = self._fold(
                lambda seg: range(seg.n_rows), lambda key: True
            )
        seen: set[Triple] = set()
        out: list[Triple] = []
        for entry in sorted(merged.values(), key=lambda e: e[0]):
            triple = entry[1].triple
            if triple in seen:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.obj != obj:
                continue
            seen.add(triple)
            out.append(triple)
        return out

    def objects(self, subject: str, predicate: str) -> set[Value]:
        return {
            triple.obj
            for triple in self.match(subject=subject, predicate=predicate)
        }

    def _live_column_strings(self, column_name: str) -> set[str]:
        """Distinct strings of one column across live rows + memtable."""
        out: set[str] = set()
        for seg in self._segments:
            column = getattr(seg, f"col_{column_name}")
            table = getattr(seg, f"{column_name}s")
            ids = {column[row] for row in seg.live_rows(self._tomb)}
            out.update(table[i] for i in ids)
        return out

    def subjects(self) -> set[str]:
        out = self._live_column_strings("subject")
        out.update(key[0].subject for key in self._mem)
        return out

    def predicates(self, subject: str | None = None) -> set[str]:
        if subject is None:
            out = self._live_column_strings("predicate")
            out.update(key[0].predicate for key in self._mem)
            return out
        merged = self._fold(
            lambda seg: seg.subject_rows(subject),
            lambda key: key[0].subject == subject,
        )
        return {entry[1].triple.predicate for entry in merged.values()}

    def sources(self) -> set[str]:
        out = self._live_column_strings("source")
        out.update(key[1].source_id for key in self._mem)
        return out

    def extractors(self) -> set[str]:
        out = self._live_column_strings("extractor")
        out.update(key[1].extractor_id for key in self._mem)
        return out

    # -- bulk ----------------------------------------------------------
    def copy(self) -> "SegmentBackend":
        """A staged sibling sharing the immutable segment readers.

        The memtable, tombstones and counters are copied; the segment
        readers (and the directory) are shared — segments are
        immutable, so both lineages read them safely.  Whichever
        lineage flushes last owns the on-disk manifest; the incremental
        engine's stage-then-commit flow keeps exactly one lineage
        mutating at a time.
        """
        clone = SegmentBackend.__new__(SegmentBackend)
        clone.directory = self.directory
        clone.memtable_limit = self.memtable_limit
        clone.compact_threshold = self.compact_threshold
        clone.metrics = self.metrics
        clone.fault_plan = self.fault_plan
        clone._segments = list(self._segments)
        clone._names = list(self._names)
        clone._mem = {
            key: [entry[0], entry[1]] for key, entry in self._mem.items()
        }
        clone._mem_tombs = list(self._mem_tombs)
        clone._tomb = dict(self._tomb)
        clone._key_filter = set(self._key_filter)
        clone._seq = self._seq
        clone._live = self._live
        return clone
