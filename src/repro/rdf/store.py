"""An indexed in-memory triple store.

The store keeps three hash indexes (SPO, POS, OSP) so that any lookup
with at least one bound position runs in time proportional to the size
of its answer, mirroring the classic triple-table layout of RDF
databases.  Scored extractions are stored alongside their provenance so
that fusion can retrieve every claim about a data item.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import StoreError
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value


class TripleStore:
    """In-memory RDF store with SPO/POS/OSP indexes.

    The store deduplicates on the full ``(triple, provenance)`` pair:
    the same triple asserted by two different sources is kept twice
    (fusion needs both claims), while re-adding an identical claim is a
    no-op that refreshes its confidence to the maximum seen.
    """

    def __init__(self) -> None:
        # (triple, provenance) -> ScoredTriple
        self._claims: dict[tuple[Triple, Provenance], ScoredTriple] = {}
        # subject -> predicate -> set of object values
        self._spo: dict[str, dict[str, set[Value]]] = {}
        # predicate -> object -> set of subjects
        self._pos: dict[str, dict[Value, set[str]]] = {}
        # object -> subject -> set of predicates
        self._osp: dict[Value, dict[str, set[str]]] = {}

    def __len__(self) -> int:
        """Number of stored claims (triple/provenance pairs)."""
        return len(self._claims)

    def __iter__(self) -> Iterator[ScoredTriple]:
        return iter(list(self._claims.values()))

    def __contains__(self, triple: Triple) -> bool:
        by_predicate = self._spo.get(triple.subject)
        if by_predicate is None:
            return False
        objects = by_predicate.get(triple.predicate)
        return objects is not None and triple.obj in objects

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, scored: ScoredTriple) -> None:
        """Add one claim; keeps the max confidence on duplicates."""
        key = (scored.triple, scored.provenance)
        existing = self._claims.get(key)
        if existing is not None and existing.confidence >= scored.confidence:
            return
        self._claims[key] = scored
        triple = scored.triple
        self._spo.setdefault(triple.subject, {}).setdefault(
            triple.predicate, set()
        ).add(triple.obj)
        self._pos.setdefault(triple.predicate, {}).setdefault(
            triple.obj, set()
        ).add(triple.subject)
        self._osp.setdefault(triple.obj, {}).setdefault(
            triple.subject, set()
        ).add(triple.predicate)

    def add_all(self, scored: Iterable[ScoredTriple]) -> None:
        """Add many claims."""
        for one in scored:
            self.add(one)

    def remove(self, triple: Triple) -> int:
        """Remove every claim of ``triple``; returns how many were removed.

        The SPO/POS/OSP indexes are pruned all the way up: emptied
        inner sets and dicts are deleted, so ``subjects()``,
        ``predicates()`` and the match paths never report ghost
        entries for fully-removed triples.  (The index entry for the
        exact ``(s, p, o)`` can always be dropped — removal covers
        every provenance of the triple, so nothing survives that
        could still need it.)
        """
        keys = [key for key in self._claims if key[0] == triple]
        for key in keys:
            del self._claims[key]
        if keys:
            self._discard_pruning(
                self._spo, triple.subject, triple.predicate, triple.obj
            )
            self._discard_pruning(
                self._pos, triple.predicate, triple.obj, triple.subject
            )
            self._discard_pruning(
                self._osp, triple.obj, triple.subject, triple.predicate
            )
        return len(keys)

    @staticmethod
    def _discard_pruning(index: dict, first, second, leaf) -> None:
        """Drop ``leaf`` from ``index[first][second]``, pruning empties."""
        by_second = index.get(first)
        if by_second is None:
            return
        leaves = by_second.get(second)
        if leaves is None:
            return
        leaves.discard(leaf)
        if not leaves:
            del by_second[second]
        if not by_second:
            del index[first]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: Value | None = None,
    ) -> list[Triple]:
        """Return distinct triples matching a pattern with ``None`` wildcards.

        Uses the most selective available index; a fully unbound pattern
        enumerates the store.
        """
        if subject is not None:
            by_predicate = self._spo.get(subject, {})
            predicates = (
                [predicate] if predicate is not None else list(by_predicate)
            )
            result = []
            for pred in predicates:
                for value in by_predicate.get(pred, ()):
                    if obj is None or value == obj:
                        result.append(Triple(subject, pred, value))
            return result
        if predicate is not None:
            by_object = self._pos.get(predicate, {})
            objects = [obj] if obj is not None else list(by_object)
            return [
                Triple(subj, predicate, value)
                for value in objects
                for subj in by_object.get(value, ())
            ]
        if obj is not None:
            by_subject = self._osp.get(obj, {})
            return [
                Triple(subj, pred, obj)
                for subj, preds in by_subject.items()
                for pred in preds
            ]
        seen: set[Triple] = set()
        out: list[Triple] = []
        for scored in self._claims.values():
            if scored.triple not in seen:
                seen.add(scored.triple)
                out.append(scored.triple)
        return out

    def claims(self, triple: Triple | None = None) -> list[ScoredTriple]:
        """All claims, or all claims of one specific triple."""
        if triple is None:
            return list(self._claims.values())
        return [
            scored
            for (stored, _prov), scored in self._claims.items()
            if stored == triple
        ]

    def claims_for_item(self, subject: str, predicate: str) -> list[ScoredTriple]:
        """Every claim about the data item ``(subject, predicate)``."""
        return [
            scored
            for scored in self._claims.values()
            if scored.triple.subject == subject
            and scored.triple.predicate == predicate
        ]

    def objects(self, subject: str, predicate: str) -> set[Value]:
        """Distinct object values claimed for a data item."""
        return set(self._spo.get(subject, {}).get(predicate, set()))

    def subjects(self) -> set[str]:
        """All subjects appearing in the store."""
        return set(self._spo)

    def predicates(self, subject: str | None = None) -> set[str]:
        """All predicates, optionally restricted to one subject."""
        if subject is None:
            return set(self._pos)
        return set(self._spo.get(subject, {}))

    def sources(self) -> set[str]:
        """Distinct provenance source ids across all claims."""
        return {scored.provenance.source_id for scored in self._claims.values()}

    def extractors(self) -> set[str]:
        """Distinct provenance extractor ids across all claims."""
        return {
            scored.provenance.extractor_id for scored in self._claims.values()
        }

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def merge(self, other: "TripleStore") -> None:
        """Add every claim of ``other`` into this store."""
        if other is self:
            raise StoreError("cannot merge a store into itself")
        self.add_all(other.claims())

    def copy(self) -> "TripleStore":
        """A shallow copy holding the same (immutable) claims."""
        clone = TripleStore()
        clone.add_all(self.claims())
        return clone
