"""An indexed triple store over a pluggable storage backend.

The store keeps three indexes (SPO, POS, OSP) so that any lookup with
at least one bound position runs in time proportional to the size of
its answer, mirroring the classic triple-table layout of RDF
databases.  Scored extractions are stored alongside their provenance
so that fusion can retrieve every claim about a data item.

*Where* claims live is delegated to a :class:`StorageBackend`
(:mod:`repro.rdf.backend`): the default :class:`MemoryBackend` keeps
the original pure-dict layout; the
:class:`~repro.rdf.segments.SegmentBackend` spills to mmapped segment
files so the corpus is disk-bound instead of RAM-bound.  Every backend
preserves the same claim-iteration order, so fusion verdicts do not
depend on the backend choice.

Iteration is **zero-copy**: ``iter(store)`` streams the backend's live
claims without materializing a list.  Callers that mutate the store
while iterating must use :meth:`TripleStore.snapshot` instead.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import StoreError
from repro.rdf.backend import MemoryBackend, StorageBackend
from repro.rdf.triple import ScoredTriple, Triple, Value


class TripleStore:
    """RDF claim store with SPO/POS/OSP lookups.

    The store deduplicates on the full ``(triple, provenance)`` pair:
    the same triple asserted by two different sources is kept twice
    (fusion needs both claims), while re-adding an identical claim is a
    no-op that refreshes its confidence to the maximum seen.

    ``backend`` defaults to a fresh in-memory :class:`MemoryBackend`;
    pass a :class:`~repro.rdf.segments.SegmentBackend` for
    disk-resident storage.
    """

    def __init__(self, backend: StorageBackend | None = None) -> None:
        self._backend = backend if backend is not None else MemoryBackend()

    @property
    def backend(self) -> StorageBackend:
        """The storage backend this store delegates to."""
        return self._backend

    def __len__(self) -> int:
        """Number of stored claims (triple/provenance pairs)."""
        return len(self._backend)

    def __iter__(self) -> Iterator[ScoredTriple]:
        """Stream claims lazily; see :meth:`snapshot` for mutation-safe
        iteration."""
        return self._backend.iter_claims()

    def __contains__(self, triple: Triple) -> bool:
        return self._backend.contains_triple(triple)

    def snapshot(self) -> list[ScoredTriple]:
        """A materialized copy of the current claims.

        Safe to iterate while mutating the store; plain ``iter(store)``
        is zero-copy and follows the backend's live state.
        """
        return list(self._backend.iter_claims())

    def pin(self) -> "StoreSnapshot":
        """An immutable, index-preserving snapshot of the current state.

        Unlike :meth:`snapshot` (a flat claim list), the pinned
        snapshot keeps the SPO/POS/OSP lookup surface: ``match``,
        ``claims_for_item``, ``objects`` and friends all answer from
        the state at pin time, no matter how the live store mutates
        afterwards.  Backed by :meth:`StorageBackend.copy`, which the
        segment backend implements as a cheap reader-sharing clone
        (segments are immutable files), so pinning a disk-resident
        store does not duplicate the corpus.

        This is the invariant the serving layer's snapshot-isolated
        reads stand on.
        """
        return StoreSnapshot(self._backend.copy())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, scored: ScoredTriple) -> None:
        """Add one claim; keeps the max confidence on duplicates."""
        self._backend.add(scored)

    def add_all(self, scored: Iterable[ScoredTriple]) -> None:
        """Add many claims in one backend-level batch."""
        self._backend.add_all(scored)

    def remove(self, triple: Triple) -> int:
        """Remove every claim of ``triple``; returns how many were removed.

        Fully-removed triples never ghost in ``subjects()``,
        ``predicates()`` or the match paths.
        """
        return self._backend.remove(triple)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: Value | None = None,
    ) -> list[Triple]:
        """Return distinct triples matching a pattern with ``None`` wildcards.

        Uses the most selective available index; a fully unbound pattern
        enumerates the store.
        """
        return self._backend.match(subject, predicate, obj)

    def claims(self, triple: Triple | None = None) -> list[ScoredTriple]:
        """All claims, or all claims of one specific triple."""
        return self._backend.claims(triple)

    def claims_for_item(self, subject: str, predicate: str) -> list[ScoredTriple]:
        """Every claim about the data item ``(subject, predicate)``."""
        return self._backend.claims_for_item(subject, predicate)

    def objects(self, subject: str, predicate: str) -> set[Value]:
        """Distinct object values claimed for a data item."""
        return self._backend.objects(subject, predicate)

    def subjects(self) -> set[str]:
        """All subjects appearing in the store."""
        return self._backend.subjects()

    def predicates(self, subject: str | None = None) -> set[str]:
        """All predicates, optionally restricted to one subject."""
        return self._backend.predicates(subject)

    def sources(self) -> set[str]:
        """Distinct provenance source ids across all claims."""
        return self._backend.sources()

    def extractors(self) -> set[str]:
        """Distinct provenance extractor ids across all claims."""
        return self._backend.extractors()

    # ------------------------------------------------------------------
    # Lifecycle (no-ops on in-memory backends)
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Persist pending mutations (durability point for disk backends)."""
        self._backend.flush()

    def compact(self) -> None:
        """Merge the backend's persistent structures."""
        self._backend.compact()

    def close(self) -> None:
        """Release backend OS resources (mmaps, file handles)."""
        self._backend.close()

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def merge(self, other: "TripleStore") -> None:
        """Add every claim of ``other`` into this store."""
        if other is self:
            raise StoreError("cannot merge a store into itself")
        self.add_all(other.claims())

    def copy(self) -> "TripleStore":
        """A shallow copy holding the same (immutable) claims."""
        return TripleStore(self._backend.copy())


class StoreSnapshot:
    """Read-only view of a :class:`TripleStore` state at pin time.

    Exposes the store's whole lookup surface (iteration plus the
    SPO/POS/OSP index paths) and none of its mutators, so holding a
    snapshot can never tear a concurrent writer and a concurrent
    writer can never change what the snapshot answers.  Built by
    :meth:`TripleStore.pin` over a private backend copy.
    """

    __slots__ = ("_backend",)

    def __init__(self, backend: StorageBackend) -> None:
        self._backend = backend

    def __len__(self) -> int:
        return len(self._backend)

    def __iter__(self) -> Iterator[ScoredTriple]:
        return self._backend.iter_claims()

    def __contains__(self, triple: Triple) -> bool:
        return self._backend.contains_triple(triple)

    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: Value | None = None,
    ) -> list[Triple]:
        """Pattern match against the pinned state (``None`` wildcards)."""
        return self._backend.match(subject, predicate, obj)

    def claims(self, triple: Triple | None = None) -> list[ScoredTriple]:
        """All pinned claims, or all claims of one specific triple."""
        return self._backend.claims(triple)

    def claims_for_item(self, subject: str, predicate: str) -> list[ScoredTriple]:
        """Every pinned claim about the data item ``(subject, predicate)``."""
        return self._backend.claims_for_item(subject, predicate)

    def objects(self, subject: str, predicate: str) -> set[Value]:
        """Distinct object values claimed for a data item at pin time."""
        return self._backend.objects(subject, predicate)

    def subjects(self) -> set[str]:
        """All subjects appearing in the pinned state."""
        return self._backend.subjects()

    def predicates(self, subject: str | None = None) -> set[str]:
        """All predicates, optionally restricted to one subject."""
        return self._backend.predicates(subject)

    def sources(self) -> set[str]:
        """Distinct provenance source ids at pin time."""
        return self._backend.sources()

    def extractors(self) -> set[str]:
        """Distinct provenance extractor ids at pin time."""
        return self._backend.extractors()
