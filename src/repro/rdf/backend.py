"""Pluggable storage backends behind the :class:`TripleStore` facade.

The store's public API (add/remove/match/claims/...) is fixed by the
rest of the pipeline; *where the claims live* is not.  This module
defines the :class:`StorageBackend` contract and the reference
:class:`MemoryBackend` — the original pure-dict implementation of
:class:`repro.rdf.store.TripleStore`, extracted verbatim.  The
disk-resident :class:`~repro.rdf.segments.SegmentBackend` implements
the same contract over mmapped segment files.

Contract notes that matter for byte-identical fusion:

* ``iter_claims()`` / ``claims()`` enumerate live claims in **first
  insertion order** of their ``(triple, provenance)`` key — dict
  semantics: a confidence refresh keeps the key's position, a
  ``remove`` followed by a re-add moves it to the end.  Fusion float
  accumulation order follows claim order, so every backend must
  reproduce this order exactly.
* A claim that was installed by the most recent ``add`` must be
  returned *by identity* from ``claims(triple)`` until the next
  mutation — the delta journal distinguishes confidence refreshes
  from dedup no-ops via ``existing is scored``.
* ``add`` keeps the maximum confidence per key and is a no-op when the
  stored confidence is already >= the incoming one.
* ``remove(triple)`` drops every provenance of the triple and returns
  how many claim keys went away; fully-removed triples never ghost in
  ``subjects()``/``predicates()``/match paths.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Iterator

from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value

__all__ = ["MemoryBackend", "StorageBackend"]


class StorageBackend(abc.ABC):
    """Storage contract of the :class:`~repro.rdf.store.TripleStore`.

    Implementations own claim persistence and the index structures;
    the store facade owns nothing but delegation.  ``flush``,
    ``compact`` and ``close`` are lifecycle no-ops for purely
    in-memory backends.
    """

    #: Short name used by config/CLI wiring ("memory", "segment").
    name = "backend"

    # -- mutation ------------------------------------------------------
    @abc.abstractmethod
    def add(self, scored: ScoredTriple) -> None:
        """Add one claim; keeps the max confidence on duplicates."""

    def add_all(self, scored: Iterable[ScoredTriple]) -> None:
        """Bulk insert; backends override with a batched single pass."""
        for one in scored:
            self.add(one)

    @abc.abstractmethod
    def remove(self, triple: Triple) -> int:
        """Remove every claim of ``triple``; returns how many existed."""

    # -- size / iteration ----------------------------------------------
    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of live claims (triple/provenance keys)."""

    @abc.abstractmethod
    def iter_claims(self) -> Iterator[ScoredTriple]:
        """Live claims in first-insertion order, without copying.

        Callers that mutate while iterating must take a
        ``snapshot()`` at the store level instead.
        """

    @abc.abstractmethod
    def contains_triple(self, triple: Triple) -> bool:
        """True if any live claim asserts ``triple``."""

    # -- lookup --------------------------------------------------------
    @abc.abstractmethod
    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: Value | None = None,
    ) -> list[Triple]:
        """Distinct triples matching a pattern with ``None`` wildcards."""

    @abc.abstractmethod
    def claims(self, triple: Triple | None = None) -> list[ScoredTriple]:
        """All claims, or all claims of one specific triple."""

    @abc.abstractmethod
    def claims_for_item(
        self, subject: str, predicate: str
    ) -> list[ScoredTriple]:
        """Every claim about the data item ``(subject, predicate)``."""

    @abc.abstractmethod
    def objects(self, subject: str, predicate: str) -> set[Value]:
        """Distinct object values claimed for a data item."""

    @abc.abstractmethod
    def subjects(self) -> set[str]:
        """All subjects appearing in live claims."""

    @abc.abstractmethod
    def predicates(self, subject: str | None = None) -> set[str]:
        """All predicates, optionally restricted to one subject."""

    @abc.abstractmethod
    def sources(self) -> set[str]:
        """Distinct provenance source ids across live claims."""

    @abc.abstractmethod
    def extractors(self) -> set[str]:
        """Distinct provenance extractor ids across live claims."""

    # -- bulk / lifecycle ----------------------------------------------
    @abc.abstractmethod
    def copy(self) -> "StorageBackend":
        """An independently-mutable backend holding the same claims."""

    def flush(self) -> None:
        """Persist pending mutations (no-op for in-memory backends)."""

    def compact(self) -> None:
        """Merge persistent structures (no-op for in-memory backends)."""

    def close(self) -> None:
        """Release OS resources (no-op for in-memory backends)."""


class MemoryBackend(StorageBackend):
    """The original in-memory dict store with SPO/POS/OSP indexes.

    Deduplicates on the full ``(triple, provenance)`` pair: the same
    triple asserted by two different sources is kept twice (fusion
    needs both claims), while re-adding an identical claim is a no-op
    that refreshes its confidence to the maximum seen.
    """

    name = "memory"

    def __init__(self) -> None:
        # (triple, provenance) -> ScoredTriple
        self._claims: dict[tuple[Triple, Provenance], ScoredTriple] = {}
        # subject -> predicate -> set of object values
        self._spo: dict[str, dict[str, set[Value]]] = {}
        # predicate -> object -> set of subjects
        self._pos: dict[str, dict[Value, set[str]]] = {}
        # object -> subject -> set of predicates
        self._osp: dict[Value, dict[str, set[str]]] = {}

    def __len__(self) -> int:
        return len(self._claims)

    def iter_claims(self) -> Iterator[ScoredTriple]:
        return iter(self._claims.values())

    def contains_triple(self, triple: Triple) -> bool:
        by_predicate = self._spo.get(triple.subject)
        if by_predicate is None:
            return False
        objects = by_predicate.get(triple.predicate)
        return objects is not None and triple.obj in objects

    # -- mutation ------------------------------------------------------
    def add(self, scored: ScoredTriple) -> None:
        key = (scored.triple, scored.provenance)
        existing = self._claims.get(key)
        if existing is not None and existing.confidence >= scored.confidence:
            return
        self._claims[key] = scored
        if existing is None:
            self._index(scored.triple)

    def add_all(self, scored: Iterable[ScoredTriple]) -> None:
        """Single-pass bulk insert over an iterable (streams fine).

        Equivalent to repeated :meth:`add` but cheaper per claim: the
        claim dict and index roots are bound once outside the loop,
        and ``dict.setdefault`` installs a fresh key with a *single*
        key hash where the get-then-assign in :meth:`add` pays two —
        and hashing a ``(triple, provenance)`` tuple recursively
        hashes every field, so it dominates the insert.  Insertion
        order — and therefore fusion float accumulation order — is
        identical to the loop.
        """
        claims_setdefault = self._claims.setdefault
        claims = self._claims
        spo, pos, osp = self._spo, self._pos, self._osp
        for one in scored:
            key = (one.triple, one.provenance)
            existing = claims_setdefault(key, one)
            if existing is not one:
                if existing.confidence < one.confidence:
                    claims[key] = one
                continue
            triple = one.triple
            subject, predicate = triple.subject, triple.predicate
            obj = triple.obj
            spo.setdefault(subject, {}).setdefault(
                predicate, set()
            ).add(obj)
            pos.setdefault(predicate, {}).setdefault(
                obj, set()
            ).add(subject)
            osp.setdefault(obj, {}).setdefault(
                subject, set()
            ).add(predicate)

    def _index(self, triple: Triple) -> None:
        self._spo.setdefault(triple.subject, {}).setdefault(
            triple.predicate, set()
        ).add(triple.obj)
        self._pos.setdefault(triple.predicate, {}).setdefault(
            triple.obj, set()
        ).add(triple.subject)
        self._osp.setdefault(triple.obj, {}).setdefault(
            triple.subject, set()
        ).add(triple.predicate)

    def remove(self, triple: Triple) -> int:
        keys = [key for key in self._claims if key[0] == triple]
        for key in keys:
            del self._claims[key]
        if keys:
            self._discard_pruning(
                self._spo, triple.subject, triple.predicate, triple.obj
            )
            self._discard_pruning(
                self._pos, triple.predicate, triple.obj, triple.subject
            )
            self._discard_pruning(
                self._osp, triple.obj, triple.subject, triple.predicate
            )
        return len(keys)

    @staticmethod
    def _discard_pruning(index: dict, first, second, leaf) -> None:
        """Drop ``leaf`` from ``index[first][second]``, pruning empties."""
        by_second = index.get(first)
        if by_second is None:
            return
        leaves = by_second.get(second)
        if leaves is None:
            return
        leaves.discard(leaf)
        if not leaves:
            del by_second[second]
        if not by_second:
            del index[first]

    # -- lookup --------------------------------------------------------
    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: Value | None = None,
    ) -> list[Triple]:
        if subject is not None:
            by_predicate = self._spo.get(subject, {})
            predicates = (
                [predicate] if predicate is not None else list(by_predicate)
            )
            result = []
            for pred in predicates:
                for value in by_predicate.get(pred, ()):
                    if obj is None or value == obj:
                        result.append(Triple(subject, pred, value))
            return result
        if predicate is not None:
            by_object = self._pos.get(predicate, {})
            objects = [obj] if obj is not None else list(by_object)
            return [
                Triple(subj, predicate, value)
                for value in objects
                for subj in by_object.get(value, ())
            ]
        if obj is not None:
            by_subject = self._osp.get(obj, {})
            return [
                Triple(subj, pred, obj)
                for subj, preds in by_subject.items()
                for pred in preds
            ]
        seen: set[Triple] = set()
        out: list[Triple] = []
        for scored in self._claims.values():
            if scored.triple not in seen:
                seen.add(scored.triple)
                out.append(scored.triple)
        return out

    def claims(self, triple: Triple | None = None) -> list[ScoredTriple]:
        if triple is None:
            return list(self._claims.values())
        return [
            scored
            for (stored, _prov), scored in self._claims.items()
            if stored == triple
        ]

    def claims_for_item(
        self, subject: str, predicate: str
    ) -> list[ScoredTriple]:
        return [
            scored
            for scored in self._claims.values()
            if scored.triple.subject == subject
            and scored.triple.predicate == predicate
        ]

    def objects(self, subject: str, predicate: str) -> set[Value]:
        return set(self._spo.get(subject, {}).get(predicate, set()))

    def subjects(self) -> set[str]:
        return set(self._spo)

    def predicates(self, subject: str | None = None) -> set[str]:
        if subject is None:
            return set(self._pos)
        return set(self._spo.get(subject, {}))

    def sources(self) -> set[str]:
        return {
            scored.provenance.source_id for scored in self._claims.values()
        }

    def extractors(self) -> set[str]:
        return {
            scored.provenance.extractor_id
            for scored in self._claims.values()
        }

    def copy(self) -> "MemoryBackend":
        clone = MemoryBackend()
        clone.add_all(self._claims.values())
        return clone
