"""Core RDF data model: values, triples, provenance and scored extractions.

The paper represents actionable knowledge as RDF triples
``(subject, predicate, object)`` and attaches a confidence score plus
provenance (which source, which extractor, which page) to every
extracted triple.  This module defines those records.

Design notes
------------
* Triples are immutable and hashable so they can key dictionaries and
  live in sets during fusion.
* Values are lightweight typed literals.  The paper's value hierarchy
  (e.g. ``Adelaide -> South Australia -> Australia``) is modelled
  separately in :mod:`repro.rdf.hierarchy`; a :class:`Value` only knows
  its lexical form and kind.
* ``Provenance`` distinguishes the *Web source* (site or KB that stated
  the fact) from the *extractor* (the program that read it), because the
  paper's fusion phase reasons about correlations among both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class ValueKind(enum.Enum):
    """Coarse type of a triple object."""

    STRING = "string"
    NUMBER = "number"
    DATE = "date"
    ENTITY = "entity"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Value:
    """A typed literal appearing as the object of a triple.

    Parameters
    ----------
    lexical:
        The surface form, already whitespace-normalised.
    kind:
        Coarse type used by fusion when grouping comparable values.
    """

    lexical: str
    kind: ValueKind = ValueKind.STRING

    def __post_init__(self) -> None:
        if not self.lexical:
            raise ValueError("Value.lexical must be a non-empty string")

    def __str__(self) -> str:
        return self.lexical

    @staticmethod
    def string(lexical: str) -> "Value":
        """Convenience constructor for a plain string literal."""
        return Value(lexical, ValueKind.STRING)

    @staticmethod
    def number(number: float | int) -> "Value":
        """Convenience constructor for a numeric literal."""
        return Value(repr(number), ValueKind.NUMBER)

    @staticmethod
    def entity(entity_id: str) -> "Value":
        """Convenience constructor for an entity reference."""
        return Value(entity_id, ValueKind.ENTITY)


@dataclass(frozen=True, slots=True)
class Triple:
    """An RDF triple ``(subject, predicate, object)``.

    Subjects and predicates are identifiers (entity ids and attribute
    names); the object is a typed :class:`Value`.
    """

    subject: str
    predicate: str
    obj: Value

    def __post_init__(self) -> None:
        if not self.subject:
            raise ValueError("Triple.subject must be non-empty")
        if not self.predicate:
            raise ValueError("Triple.predicate must be non-empty")

    @property
    def item(self) -> tuple[str, str]:
        """The *data item* this triple claims a value for.

        Fusion groups claims by data item: the pair
        ``(subject, predicate)``, e.g. ``("Barack Obama", "profession")``.
        """
        return (self.subject, self.predicate)

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.obj.lexical})"


@dataclass(frozen=True, slots=True)
class Provenance:
    """Where an extraction came from.

    Parameters
    ----------
    source_id:
        The Web source or KB that asserted the fact (e.g. a website
        hostname, ``"freebase"``).
    extractor_id:
        The extractor program that produced the triple (e.g.
        ``"dom"``, ``"querystream"``).
    locator:
        Finer-granularity provenance: a page URL, query-record id, or
        KB key.  Optional; empty string when unknown.
    """

    source_id: str
    extractor_id: str
    locator: str = ""

    def __post_init__(self) -> None:
        if not self.source_id:
            raise ValueError("Provenance.source_id must be non-empty")
        if not self.extractor_id:
            raise ValueError("Provenance.extractor_id must be non-empty")


@dataclass(frozen=True, slots=True)
class ScoredTriple:
    """A triple plus its provenance and extraction confidence.

    The confidence score in ``[0, 1]`` follows the paper's "unified
    criterion" (Sec. 3.1); it is computed by
    :class:`repro.core.confidence.ConfidenceScorer` and consumed by the
    confidence-aware fusion methods.
    """

    triple: Triple
    provenance: Provenance
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"confidence must be within [0, 1], got {self.confidence!r}"
            )

    def with_confidence(self, confidence: float) -> "ScoredTriple":
        """Return a copy carrying a new confidence score."""
        return ScoredTriple(self.triple, self.provenance, confidence)


def group_by_item(
    extractions: Iterable[ScoredTriple],
) -> dict[tuple[str, str], list[ScoredTriple]]:
    """Group scored triples by their data item ``(subject, predicate)``.

    This is the canonical pre-processing step of every fusion method.
    """
    grouped: dict[tuple[str, str], list[ScoredTriple]] = {}
    for extraction in extractions:
        grouped.setdefault(extraction.triple.item, []).append(extraction)
    return grouped


def distinct_triples(extractions: Iterable[ScoredTriple]) -> set[Triple]:
    """Return the set of distinct triples among scored extractions."""
    return {extraction.triple for extraction in extractions}
