"""RDF substrate: triples, stores, ontologies and value hierarchies."""

from repro.rdf.backend import MemoryBackend, StorageBackend
from repro.rdf.hierarchy import ValueHierarchy
from repro.rdf.io import dump_claims_tsv, dump_ntriples, load_claims_tsv
from repro.rdf.ontology import Attribute, Entity, Ontology, OntologyClass
from repro.rdf.query import GraphQuery, TriplePattern, Var, select
from repro.rdf.segments import SegmentBackend, SegmentReader
from repro.rdf.store import StoreSnapshot, TripleStore
from repro.rdf.triple import (
    Provenance,
    ScoredTriple,
    Triple,
    Value,
    ValueKind,
    distinct_triples,
    group_by_item,
)

__all__ = [
    "Attribute",
    "GraphQuery",
    "TriplePattern",
    "Var",
    "dump_claims_tsv",
    "dump_ntriples",
    "load_claims_tsv",
    "select",
    "Entity",
    "MemoryBackend",
    "Ontology",
    "OntologyClass",
    "Provenance",
    "ScoredTriple",
    "SegmentBackend",
    "SegmentReader",
    "StorageBackend",
    "StoreSnapshot",
    "Triple",
    "TripleStore",
    "Value",
    "ValueHierarchy",
    "ValueKind",
    "distinct_triples",
    "group_by_item",
]
