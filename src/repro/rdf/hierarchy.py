"""Hierarchical value spaces.

The paper observes that values can be hierarchically structured —
``Adelaide -> South Australia -> Australia`` forms a chain in the
location hierarchy — so even a *functional* attribute (birth place) can
have multiple simultaneously-true values at different abstraction
levels.  Fusion must treat such values as mutually supporting, not
conflicting (Sec. 3.2, bullet 2).

A :class:`ValueHierarchy` is a forest over lexical value strings: each
value has at most one parent (its direct generalisation).  The class
answers ancestor/descendant queries, finds chains, and computes a
support coefficient between two values used by hierarchical fusion.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import HierarchyError


class ValueHierarchy:
    """A forest of value generalisations.

    Edges point from child (more specific) to parent (more general):
    ``add_edge("Adelaide", "South Australia")``.
    """

    def __init__(self, edges: Iterable[tuple[str, str]] = ()) -> None:
        self._parent: dict[str, str] = {}
        self._children: dict[str, set[str]] = {}
        for child, parent in edges:
            self.add_edge(child, parent)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, child: str, parent: str) -> None:
        """Declare ``parent`` as the direct generalisation of ``child``.

        Raises :class:`HierarchyError` on re-parenting conflicts or on
        edges that would create a cycle.
        """
        if not child or not parent:
            raise HierarchyError("hierarchy values must be non-empty strings")
        if child == parent:
            raise HierarchyError(f"self-loop on {child!r}")
        existing = self._parent.get(child)
        if existing is not None and existing != parent:
            raise HierarchyError(
                f"{child!r} already has parent {existing!r}; "
                f"cannot re-parent to {parent!r}"
            )
        if child in self.ancestors(parent):
            raise HierarchyError(
                f"edge {child!r} -> {parent!r} would create a cycle"
            )
        self._parent[child] = parent
        self._children.setdefault(parent, set()).add(child)

    def add_chain(self, chain: Iterable[str]) -> None:
        """Declare a most-specific-first chain, e.g.
        ``["Adelaide", "South Australia", "Australia"]``."""
        nodes = list(chain)
        for child, parent in zip(nodes, nodes[1:]):
            self.add_edge(child, parent)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, value: str) -> bool:
        return value in self._parent or value in self._children

    def parent(self, value: str) -> str | None:
        """Direct generalisation, or None for roots / unknown values."""
        return self._parent.get(value)

    def children(self, value: str) -> set[str]:
        """Direct specialisations."""
        return set(self._children.get(value, set()))

    def ancestors(self, value: str) -> list[str]:
        """Proper ancestors from nearest to farthest."""
        out: list[str] = []
        current = self._parent.get(value)
        while current is not None:
            out.append(current)
            current = self._parent.get(current)
        return out

    def descendants(self, value: str) -> set[str]:
        """All proper descendants."""
        out: set[str] = set()
        frontier = list(self._children.get(value, set()))
        while frontier:
            node = frontier.pop()
            if node in out:
                continue
            out.add(node)
            frontier.extend(self._children.get(node, set()))
        return out

    def chain(self, value: str) -> list[str]:
        """The value followed by all its ancestors (specific → general)."""
        return [value, *self.ancestors(value)]

    def roots(self) -> set[str]:
        """Values that have children but no parent."""
        return {value for value in self._children if value not in self._parent}

    def depth(self, value: str) -> int:
        """Distance to the root of the value's tree (root = 0)."""
        return len(self.ancestors(value))

    def __iter__(self) -> Iterator[str]:
        seen = set(self._parent) | set(self._children)
        return iter(seen)

    def __len__(self) -> int:
        return len(set(self._parent) | set(self._children))

    # ------------------------------------------------------------------
    # Fusion support
    # ------------------------------------------------------------------
    def related(self, value_a: str, value_b: str) -> bool:
        """True when one value generalises the other (or they are equal).

        Related values are *mutually supporting* during fusion: the
        claims ``birth place = China`` and ``birth place = Wuhan`` are
        both true, not conflicting.
        """
        if value_a == value_b:
            return True
        return value_a in self.ancestors(value_b) or value_b in self.ancestors(
            value_a
        )

    def support(self, claimed: str, candidate: str) -> float:
        """How strongly a claim of ``claimed`` supports truth of ``candidate``.

        Returns 1.0 for equality, and a value decaying with the
        hierarchy distance when the two lie on one chain:

        * a *specific* claim fully implies its generalisations
          (``Wuhan`` ⇒ ``China``), so support is 1.0 upward;
        * a *general* claim only partially supports a specialisation
          (``China`` weakly supports ``Wuhan``), so support decays as
          ``1 / (1 + distance)`` downward;
        * unrelated values give 0.0.
        """
        if claimed == candidate:
            return 1.0
        ancestors_of_claimed = self.ancestors(claimed)
        if candidate in ancestors_of_claimed:
            return 1.0
        ancestors_of_candidate = self.ancestors(candidate)
        if claimed in ancestors_of_candidate:
            distance = ancestors_of_candidate.index(claimed) + 1
            return 1.0 / (1.0 + distance)
        return 0.0

    def lowest_common_ancestor(self, value_a: str, value_b: str) -> str | None:
        """LCA of two values, or None when they share no tree."""
        chain_a = self.chain(value_a)
        chain_b_set = set(self.chain(value_b))
        for node in chain_a:
            if node in chain_b_set:
                return node
        return None
