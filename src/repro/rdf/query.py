"""A small conjunctive query engine over the triple store.

KBs are consumed downstream by knowledge-driven applications; a store
that cannot be queried is not "actionable".  This module provides basic
graph-pattern matching in the SPARQL spirit, sized for this library:

* a :class:`TriplePattern` has constants or variables (``Var("x")``)
  in any position;
* a :class:`GraphQuery` is a conjunction of patterns plus optional
  per-variable filters; solving returns bindings (dicts) produced by
  an order-optimised nested-loop join (most selective pattern first).

Example::

    query = GraphQuery([
        TriplePattern(Var("uni"), "location", Var("city")),
        TriplePattern(Var("uni"), "founded", "1874-01-01"),
    ])
    for binding in query.solve(store):
        print(binding["uni"], binding["city"])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Union

from repro.errors import StoreError
from repro.rdf.store import TripleStore
from repro.rdf.triple import Triple, Value


@dataclass(frozen=True, slots=True)
class Var:
    """A query variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise StoreError("variable name must be non-empty")


Term = Union[str, Value, Var]
Binding = dict[str, str]


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """One pattern: subject/predicate are str-or-Var, object is
    Value-or-str-or-Var (a plain string object is wrapped as a string
    Value)."""

    subject: Term
    predicate: Term
    obj: Term

    def variables(self) -> set[str]:
        return {
            term.name
            for term in (self.subject, self.predicate, self.obj)
            if isinstance(term, Var)
        }


class GraphQuery:
    """A conjunctive query (basic graph pattern) with optional filters."""

    def __init__(
        self,
        patterns: Iterable[TriplePattern],
        filters: dict[str, Callable[[str], bool]] | None = None,
    ) -> None:
        self.patterns = list(patterns)
        if not self.patterns:
            raise StoreError("a query needs at least one pattern")
        self.filters = dict(filters or {})
        unknown = set(self.filters) - self.variables()
        if unknown:
            raise StoreError(f"filters on unbound variables: {unknown}")

    def variables(self) -> set[str]:
        names: set[str] = set()
        for pattern in self.patterns:
            names |= pattern.variables()
        return names

    # ------------------------------------------------------------------
    def solve(self, store: TripleStore) -> list[Binding]:
        """All bindings satisfying every pattern and filter."""
        return list(self.iter_solutions(store))

    def iter_solutions(self, store: TripleStore) -> Iterator[Binding]:
        ordered = sorted(self.patterns, key=lambda p: _selectivity(p))
        yield from self._solve(store, ordered, {})

    def _solve(
        self,
        store: TripleStore,
        patterns: list[TriplePattern],
        binding: Binding,
    ) -> Iterator[Binding]:
        if not patterns:
            if all(
                predicate(binding[name])
                for name, predicate in self.filters.items()
            ):
                yield dict(binding)
            return
        pattern, rest = patterns[0], patterns[1:]
        subject = _resolve(pattern.subject, binding)
        predicate = _resolve(pattern.predicate, binding)
        obj = _resolve(pattern.obj, binding)
        matches = store.match(
            subject=subject,
            predicate=predicate,
            obj=Value(obj) if obj is not None else None,
        )
        # Object equality must be value-kind-agnostic for plain strings:
        # retry the object index by lexical when the typed probe missed.
        if obj is not None and not matches:
            matches = [
                triple
                for triple in store.match(subject=subject, predicate=predicate)
                if triple.obj.lexical == obj
            ]
        for triple in matches:
            extended = _extend(binding, pattern, triple)
            if extended is not None:
                yield from self._solve(store, rest, extended)


def _selectivity(pattern: TriplePattern) -> int:
    """Fewer variables first (cheap heuristic join order)."""
    return len(pattern.variables())


def _resolve(term: Term, binding: Binding) -> str | None:
    if isinstance(term, Var):
        return binding.get(term.name)
    if isinstance(term, Value):
        return term.lexical
    return term


def _extend(
    binding: Binding, pattern: TriplePattern, triple: Triple
) -> Binding | None:
    """Bind the pattern's variables against a concrete triple."""
    extended = dict(binding)
    for term, actual in (
        (pattern.subject, triple.subject),
        (pattern.predicate, triple.predicate),
        (pattern.obj, triple.obj.lexical),
    ):
        if isinstance(term, Var):
            bound = extended.get(term.name)
            if bound is None:
                extended[term.name] = actual
            elif bound != actual:
                return None
    return extended


def select(
    store: TripleStore,
    subject: Term = Var("s"),
    predicate: Term = Var("p"),
    obj: Term = Var("o"),
) -> list[Binding]:
    """One-pattern convenience query."""
    return GraphQuery([TriplePattern(subject, predicate, obj)]).solve(store)
