"""Ontology model: classes (types), attributes (properties) and entities.

The paper follows Freebase vocabulary, where classes are called *types*
and attributes *properties*.  Key modelling points taken from the paper:

* Attributes are **functional** (single-truth: a birth date) or
  **non-functional** (multi-truth: children of a person); the fusion
  phase must treat the two differently (Sec. 3.2).
* Each class carries an entity set used by the extractors for entity
  recognition ("each class is specified as a set of representative
  entities of Freebase", Sec. 4).
* Ontology *augmentation* adds newly discovered attributes to a class;
  Table 2 counts exactly these additions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import OntologyError
from repro.rdf.triple import ValueKind


@dataclass(frozen=True, slots=True)
class Attribute:
    """An attribute (Freebase *property*) of a class.

    Parameters
    ----------
    name:
        Canonical attribute name, lower-case with spaces
        (e.g. ``"birth place"``).
    functional:
        ``True`` when the attribute admits exactly one truth per entity
        *per hierarchy chain* (the paper notes that even functional
        attributes can have several true values along a value
        hierarchy).
    value_kind:
        Coarse type of the attribute's values.
    hierarchical:
        ``True`` when values live in a value hierarchy (e.g. locations).
    """

    name: str
    functional: bool = True
    value_kind: ValueKind = ValueKind.STRING
    hierarchical: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Attribute.name must be non-empty")


@dataclass(slots=True)
class Entity:
    """A named entity belonging to a class.

    ``aliases`` hold alternative surface forms (used by entity
    recognition over query streams and DOM text nodes).
    """

    entity_id: str
    name: str
    class_name: str
    aliases: tuple[str, ...] = ()

    def surface_forms(self) -> tuple[str, ...]:
        """The canonical name followed by all aliases."""
        return (self.name, *self.aliases)


class OntologyClass:
    """A class (Freebase *type*): named attributes plus an entity set."""

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute] = (),
        entities: Iterable[Entity] = (),
    ) -> None:
        if not name:
            raise OntologyError("class name must be non-empty")
        self.name = name
        self._attributes: dict[str, Attribute] = {}
        self._entities: dict[str, Entity] = {}
        for attribute in attributes:
            self.add_attribute(attribute)
        for entity in entities:
            self.add_entity(entity)

    # -- attributes -----------------------------------------------------
    def add_attribute(self, attribute: Attribute) -> bool:
        """Add an attribute; returns False if the name already exists."""
        if attribute.name in self._attributes:
            return False
        self._attributes[attribute.name] = attribute
        return True

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attributes[name]
        except KeyError:
            raise OntologyError(
                f"class {self.name!r} has no attribute {name!r}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return tuple(self._attributes.values())

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self._attributes)

    # -- entities -------------------------------------------------------
    def add_entity(self, entity: Entity) -> None:
        if entity.class_name != self.name:
            raise OntologyError(
                f"entity {entity.entity_id!r} belongs to class "
                f"{entity.class_name!r}, not {self.name!r}"
            )
        self._entities[entity.entity_id] = entity

    def entity(self, entity_id: str) -> Entity:
        try:
            return self._entities[entity_id]
        except KeyError:
            raise OntologyError(
                f"class {self.name!r} has no entity {entity_id!r}"
            ) from None

    @property
    def entities(self) -> tuple[Entity, ...]:
        return tuple(self._entities.values())

    def __len__(self) -> int:
        return len(self._entities)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OntologyClass({self.name!r}, {len(self._attributes)} attrs, "
            f"{len(self._entities)} entities)"
        )


class Ontology:
    """A collection of classes; the schema side of a knowledge base."""

    def __init__(self, classes: Iterable[OntologyClass] = ()) -> None:
        self._classes: dict[str, OntologyClass] = {}
        for cls in classes:
            self.add_class(cls)

    def add_class(self, cls: OntologyClass) -> None:
        if cls.name in self._classes:
            raise OntologyError(f"duplicate class {cls.name!r}")
        self._classes[cls.name] = cls

    def cls(self, name: str) -> OntologyClass:
        try:
            return self._classes[name]
        except KeyError:
            raise OntologyError(f"unknown class {name!r}") from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._classes)

    def __iter__(self) -> Iterator[OntologyClass]:
        return iter(self._classes.values())

    def __len__(self) -> int:
        return len(self._classes)

    def entity_count(self) -> int:
        """Total entities across classes."""
        return sum(len(cls) for cls in self)

    def attribute_count(self) -> int:
        """Total distinct attribute names across classes."""
        names = {attr.name for cls in self for attr in cls.attributes}
        return len(names)

    def find_entity(self, entity_id: str) -> Entity | None:
        """Locate an entity by id across all classes."""
        for cls in self:
            try:
                return cls.entity(entity_id)
            except OntologyError:
                continue
        return None

    def entity_index(self) -> dict[str, Entity]:
        """Map from every surface form (lower-cased) to its entity.

        Later classes do not override earlier ones on collision; the
        first registration wins, mirroring how a fixed reference KB
        resolves ambiguous names deterministically.
        """
        index: dict[str, Entity] = {}
        for cls in self:
            for entity in cls.entities:
                for form in entity.surface_forms():
                    index.setdefault(form.lower(), entity)
        return index
