"""Persistence for triple stores.

Two interchange formats:

* **claims TSV** — the lossless native format: one claim per line with
  subject, predicate, object lexical, object kind, source, extractor,
  locator and confidence (tab-separated, header line, escaped
  tabs/newlines);
* **N-Triples-like** — a lossy export of the distinct triples for
  interoperability (``<subject> <predicate> "object" .``).
"""

from __future__ import annotations

import io
import pathlib

from repro.errors import StoreError
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value, ValueKind

_TSV_HEADER = (
    "subject\tpredicate\tobject\tkind\tsource\textractor\tlocator\tconfidence"
)


def _escape(field: str) -> str:
    return (
        field.replace("\\", "\\\\")
        .replace("\t", "\\t")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
    )


def _unescape(field: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(field):
        char = field[index]
        if char == "\\" and index + 1 < len(field):
            nxt = field[index + 1]
            mapped = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}.get(nxt)
            if mapped is not None:
                out.append(mapped)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def dump_claims_tsv(store: TripleStore, path: str | pathlib.Path) -> int:
    """Write every claim to a TSV file; returns the claim count."""
    lines = [_TSV_HEADER]
    claims = sorted(
        store.claims(),
        key=lambda s: (
            s.triple.subject, s.triple.predicate, s.triple.obj.lexical,
            s.provenance.source_id, s.provenance.extractor_id,
        ),
    )
    for scored in claims:
        triple = scored.triple
        provenance = scored.provenance
        lines.append(
            "\t".join(
                [
                    _escape(triple.subject),
                    _escape(triple.predicate),
                    _escape(triple.obj.lexical),
                    triple.obj.kind.value,
                    _escape(provenance.source_id),
                    _escape(provenance.extractor_id),
                    _escape(provenance.locator),
                    repr(scored.confidence),
                ]
            )
        )
    pathlib.Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(claims)


def load_claims_tsv(path: str | pathlib.Path) -> TripleStore:
    """Read a claims TSV file back into a store."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    if not lines or lines[0] != _TSV_HEADER:
        raise StoreError(f"{path}: not a claims TSV file (bad header)")
    store = TripleStore()
    for number, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        fields = line.split("\t")
        if len(fields) != 8:
            raise StoreError(f"{path}:{number}: expected 8 fields")
        subject, predicate, lexical, kind, source, extractor, locator, conf = (
            fields
        )
        try:
            value_kind = ValueKind(kind)
        except ValueError as exc:
            raise StoreError(f"{path}:{number}: unknown kind {kind!r}") from exc
        try:
            confidence = float(conf)
        except ValueError as exc:
            raise StoreError(f"{path}:{number}: bad confidence") from exc
        store.add(
            ScoredTriple(
                Triple(
                    _unescape(subject),
                    _unescape(predicate),
                    Value(_unescape(lexical), value_kind),
                ),
                Provenance(
                    _unescape(source), _unescape(extractor), _unescape(locator)
                ),
                confidence,
            )
        )
    return store


def dump_ntriples(store: TripleStore, path: str | pathlib.Path) -> int:
    """Export distinct triples in an N-Triples-like format."""
    buffer = io.StringIO()
    triples = sorted(
        store.match(),
        key=lambda t: (t.subject, t.predicate, t.obj.lexical),
    )
    for triple in triples:
        escaped = triple.obj.lexical.replace("\\", "\\\\").replace('"', '\\"')
        buffer.write(
            f"<{triple.subject}> <{triple.predicate}> \"{escaped}\" .\n"
        )
    pathlib.Path(path).write_text(buffer.getvalue(), encoding="utf-8")
    return len(triples)
